// Common scaffolding for the experiment (bench) binaries: shared flags,
// result emission (aligned table or CSV), and run headers.

#ifndef PREFCOVER_EVAL_EXPERIMENT_H_
#define PREFCOVER_EVAL_EXPERIMENT_H_

#include <string>

#include "util/flags.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace prefcover {

/// \brief Flags every experiment binary shares:
///   --csv        emit CSV instead of the aligned table
///   --seed       RNG seed (default 42)
///   --scale      dataset scale factor in (0, 1] (default experiment-
///                specific; 1.0 == the paper's full size)
///   --full       shorthand for --scale=1.0
///   --threads    worker threads where applicable
struct ExperimentEnv {
  bool csv = false;
  uint64_t seed = 42;
  double scale = 0.0;  // 0 = use the experiment's default
  size_t threads = 1;
  FlagParser flags;

  explicit ExperimentEnv(const std::string& description);

  /// Parses argv. Returns OutOfRange after printing --help (callers exit
  /// 0), other errors for bad flags (callers exit 1).
  Status Parse(int argc, const char* const* argv);

  /// Resolved scale: --full beats --scale beats `default_scale`.
  double ScaleOr(double default_scale) const;

  /// Prints `table` as CSV or aligned text per --csv, preceded by `title`
  /// in text mode.
  void Emit(const TablePrinter& table, const std::string& title) const;
};

/// \brief Prints an experiment banner (text mode only).
void PrintExperimentHeader(const ExperimentEnv& env, const std::string& id,
                           const std::string& what);

}  // namespace prefcover

#endif  // PREFCOVER_EVAL_EXPERIMENT_H_
