#include "eval/simulation.h"

#include <cmath>

#include "core/cover_function.h"
#include "util/bitset.h"

namespace prefcover {

double SimulationResult::StandardError() const {
  if (requests == 0) return 0.0;
  double p = MatchRate();
  return std::sqrt(p * (1.0 - p) / static_cast<double>(requests));
}

Result<SimulationResult> SimulateMatchRate(
    const PreferenceGraph& graph, const std::vector<NodeId>& retained,
    Variant variant, uint64_t num_requests, Rng* rng) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, 0, variant));
  Bitset retained_set(graph.NumNodes());
  for (NodeId v : retained) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("retained item out of range");
    }
    if (retained_set.Test(v)) {
      return Status::InvalidArgument("duplicate retained item");
    }
    retained_set.Set(v);
  }

  std::vector<double> weights(graph.NodeWeights().begin(),
                              graph.NodeWeights().end());
  AliasSampler popularity(weights);

  SimulationResult result;
  result.requests = num_requests;
  for (uint64_t r = 0; r < num_requests; ++r) {
    NodeId desired = popularity.Sample(rng);
    if (retained_set.Test(desired)) {
      ++result.matched;
      ++result.matched_directly;
      continue;
    }
    AdjacencyView out = graph.OutNeighbors(desired);
    bool matched = false;
    switch (variant) {
      case Variant::kIndependent:
        for (size_t i = 0; i < out.size() && !matched; ++i) {
          if (retained_set.Test(out.nodes[i]) &&
              rng->NextBernoulli(out.weights[i])) {
            matched = true;
          }
        }
        break;
      case Variant::kNormalized: {
        // One draw over the edge distribution; the residual mass means no
        // alternative satisfies this consumer.
        double u = rng->NextDouble();
        double acc = 0.0;
        for (size_t i = 0; i < out.size(); ++i) {
          acc += out.weights[i];
          if (u < acc) {
            matched = retained_set.Test(out.nodes[i]);
            break;
          }
        }
        break;
      }
    }
    if (matched) ++result.matched;
  }
  return result;
}

}  // namespace prefcover
