// Monte-Carlo validation of the cover semantics: simulate individual
// consumer sessions against a reduced inventory and measure the empirical
// match rate. Under each variant's behavioral model the empirical rate
// converges to the analytical C(S) — this bridges Definitions 2.1/2.2 and
// the behavior they claim to summarize, a check the paper argues only
// informally.

#ifndef PREFCOVER_EVAL_SIMULATION_H_
#define PREFCOVER_EVAL_SIMULATION_H_

#include <cstdint>
#include <vector>

#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace prefcover {

/// \brief Outcome of a simulation run.
struct SimulationResult {
  uint64_t requests = 0;
  uint64_t matched = 0;          // request served by a retained item
  uint64_t matched_directly = 0; // the requested item itself was retained

  double MatchRate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(matched) / static_cast<double>(requests);
  }

  /// Binomial standard error of MatchRate().
  double StandardError() const;
};

/// \brief Simulates `num_requests` consumer sessions.
///
/// Each session draws a desired item from the node-weight distribution.
/// If retained, the request matches. Otherwise the consumer behaves per
/// the variant:
///   - Independent: accepts each retained alternative independently with
///     its edge probability; the request matches if any is accepted;
///   - Normalized: samples at most one acceptable alternative from the
///     edge distribution (residual mass = none); the request matches if
///     that alternative is retained.
///
/// `retained` must be distinct, in-range node ids. The Normalized
/// behavior requires an admissible graph (checked).
Result<SimulationResult> SimulateMatchRate(
    const PreferenceGraph& graph, const std::vector<NodeId>& retained,
    Variant variant, uint64_t num_requests, Rng* rng);

}  // namespace prefcover

#endif  // PREFCOVER_EVAL_SIMULATION_H_
