// End-to-end run reports: the output contract of the paper's Figure 2 —
// the retained list plus metadata (C(S), per-item coverage implied by the
// I array) — rendered for humans and machines.

#ifndef PREFCOVER_EVAL_REPORT_H_
#define PREFCOVER_EVAL_REPORT_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/solution.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief A digested view of one solver run over one graph.
struct SolutionReport {
  struct ItemLine {
    NodeId item;
    std::string name;
    double weight;     // request probability
    double coverage;   // cover of this item by S (1 for retained)
    bool retained;
  };

  /// Summary block.
  std::string algorithm;
  Variant variant = Variant::kIndependent;
  size_t catalog_size = 0;
  size_t retained_size = 0;
  double cover = 0.0;
  double retained_weight = 0.0;   // demand served directly
  double covered_via_alternatives = 0.0;  // cover minus retained weight
  double solve_seconds = 0.0;

  /// Retained items, in selection order.
  std::vector<ItemLine> retained;

  /// The non-retained items with the largest *unserved* demand
  /// (weight x (1 - coverage)) — the report's risk section.
  std::vector<ItemLine> top_unserved;

  /// Mean coverage of non-retained items, demand-weighted.
  double mean_unretained_coverage = 0.0;
};

/// \brief Builds the report. `max_unserved` bounds the risk section.
Result<SolutionReport> BuildSolutionReport(const PreferenceGraph& graph,
                                           const Solution& solution,
                                           size_t max_unserved = 10);

/// \brief Human-readable rendering (summary, retained head, risk section).
/// `max_retained_lines` bounds the retained listing (0 = all).
void PrintSolutionReport(const SolutionReport& report, std::ostream* out,
                         size_t max_retained_lines = 20);

/// \brief Machine-readable rendering: one CSV row per catalog item with
/// its retained flag and coverage — the file an operations team would
/// ingest.
Status WriteCoverageCsv(const PreferenceGraph& graph,
                        const Solution& solution, std::ostream* out);

}  // namespace prefcover

#endif  // PREFCOVER_EVAL_REPORT_H_
