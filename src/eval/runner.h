// Shared experiment-harness pieces: running a suite of solvers over one
// instance and collecting comparable rows. Used by every bench binary.

#ifndef PREFCOVER_EVAL_RUNNER_H_
#define PREFCOVER_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "core/constrained_solver.h"
#include "core/greedy_solver.h"
#include "core/solution.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace prefcover {

/// \brief Solver identifiers for suite runs; mirrors the paper's
/// competitor list (Section 5.3).
enum class Algorithm {
  kGreedy,              // plain Algorithm 1
  kGreedyLazy,          // CELF execution of Algorithm 1 (same output)
  kGreedyParallel,      // thread-pooled execution of Algorithm 1 (same output)
  kGreedyLazyParallel,  // batched CELF on a thread pool (same output)
  kConstrainedGreedy,   // cost-ratio greedy under a ConstraintSpec
  kBruteForce,
  kTopKWeight,
  kTopKCoverage,
  kRandom,          // best of 10 draws, as the paper reports
};

/// "Greedy", "BF", "TopK-W", "TopK-C", "Random", ... (paper naming).
std::string AlgorithmDisplayName(Algorithm algorithm);

/// \brief One solver's outcome on one instance.
struct SuiteEntry {
  Algorithm algorithm;
  Solution solution;
};

/// \brief Runs `algorithm` on the instance. `rng` is used by Random only;
/// `num_threads` by the parallel greedy executions only.
///
/// Every run is wrapped in an `eval.run_algorithm` trace span (category
/// `eval`), so traces of CLI/bench solves show the experiment phase above
/// the solver's own spans.
Result<Solution> RunAlgorithm(Algorithm algorithm,
                              const PreferenceGraph& graph, size_t k,
                              Variant variant, Rng* rng,
                              size_t num_threads = 1);

/// \brief As above, but with full greedy options (stop_at_cover,
/// force_include, batch_size, ...) for the greedy family; `options.variant`
/// is used for every algorithm. This is the entry point the CLI uses so
/// traced solves carry the eval phase span.
Result<Solution> RunAlgorithm(Algorithm algorithm,
                              const PreferenceGraph& graph, size_t k,
                              const GreedyOptions& options, Rng* rng,
                              size_t num_threads = 1);

/// \brief As above with a ConstraintSpec (budget / costs / quotas),
/// honored by kConstrainedGreedy only — the CLI's entry point for
/// `solve --budget/--costs/--quota`. Other algorithms reject a
/// non-default spec (they cannot honor it), and kConstrainedGreedy
/// rejects greedy-only options (force lists, stop_at_cover, resume).
/// With a default spec, kConstrainedGreedy is plain greedy in
/// constrained clothing — byte-identical to SolveGreedy.
Result<Solution> RunAlgorithm(Algorithm algorithm,
                              const PreferenceGraph& graph, size_t k,
                              const GreedyOptions& options,
                              const ConstraintSpec& spec, Rng* rng,
                              size_t num_threads = 1);

/// \brief Runs each algorithm on the same instance.
///
/// `cancel` is threaded into the greedy family (their solves become
/// anytime) and checked between algorithms: once it trips, remaining
/// algorithms are skipped and the entries finished so far are returned —
/// like a truncated solve, a cancelled suite is a valid prefix, not an
/// error. (If the token trips before the first algorithm completes, that
/// first — possibly truncated — entry is still produced.)
Result<std::vector<SuiteEntry>> RunSuite(
    const std::vector<Algorithm>& algorithms, const PreferenceGraph& graph,
    size_t k, Variant variant, Rng* rng, size_t num_threads = 1,
    const CancelToken* cancel = nullptr);

}  // namespace prefcover

#endif  // PREFCOVER_EVAL_RUNNER_H_
