#include "eval/experiment.h"

#include <iostream>

namespace prefcover {

ExperimentEnv::ExperimentEnv(const std::string& description)
    : flags(description) {
  flags.AddBool("csv", false, "emit CSV instead of an aligned table");
  flags.AddInt("seed", 42, "RNG seed");
  flags.AddDouble("scale", 0.0,
                  "dataset scale factor in (0,1]; 0 = experiment default; "
                  "1.0 = the paper's full size");
  flags.AddBool("full", false, "run at the paper's full scale (scale=1.0)");
  flags.AddInt("threads", 1, "worker threads where applicable");
}

Status ExperimentEnv::Parse(int argc, const char* const* argv) {
  PREFCOVER_RETURN_NOT_OK(flags.Parse(argc, argv));
  csv = flags.GetBool("csv");
  seed = static_cast<uint64_t>(flags.GetInt("seed"));
  scale = flags.GetDouble("scale");
  if (flags.GetBool("full")) scale = 1.0;
  int64_t t = flags.GetInt("threads");
  if (t < 1) return Status::InvalidArgument("--threads must be >= 1");
  threads = static_cast<size_t>(t);
  if (scale < 0.0 || scale > 1.0) {
    return Status::InvalidArgument("--scale must be in (0, 1]");
  }
  return Status::OK();
}

double ExperimentEnv::ScaleOr(double default_scale) const {
  return scale > 0.0 ? scale : default_scale;
}

void ExperimentEnv::Emit(const TablePrinter& table,
                         const std::string& title) const {
  if (csv) {
    table.PrintCsv(&std::cout);
  } else {
    std::cout << '\n';
    table.Print(&std::cout, title);
  }
}

void PrintExperimentHeader(const ExperimentEnv& env, const std::string& id,
                           const std::string& what) {
  if (env.csv) return;
  std::cout << "=== " << id << ": " << what << " ===\n";
}

}  // namespace prefcover
