// Comparison metrics between retained sets / solutions — the measurement
// vocabulary the ablation studies and operational dashboards share.

#ifndef PREFCOVER_EVAL_METRICS_H_
#define PREFCOVER_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/solution.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief |A ∩ B| / |A ∪ B| over two item sets (1.0 when both empty).
double JaccardSimilarity(const std::vector<NodeId>& a,
                         const std::vector<NodeId>& b);

/// \brief Share of `a`'s first k items also among `b`'s first k
/// (overlap@k, order-insensitive within the prefixes). k is capped at
/// both sizes; returns 1.0 when the capped k is 0.
double PrefixOverlap(const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b, size_t k);

/// \brief Total node weight of the items in `a` but not in `b` — the
/// demand whose direct retention the transition from b to a would add.
double RetainedWeightDelta(const PreferenceGraph& graph,
                           const std::vector<NodeId>& a,
                           const std::vector<NodeId>& b);

/// \brief Per-item coverage differences between two solutions on the same
/// graph (a minus b), summarizing how the choice shifts which consumers
/// are served.
struct CoverageShift {
  double mean_abs_difference = 0.0;  // mean |coverage_a(v) - coverage_b(v)|
  double max_abs_difference = 0.0;
  size_t items_better_in_a = 0;  // strictly better covered under a
  size_t items_better_in_b = 0;
};

/// Solutions must carry item_contributions for `graph` (same size).
Result<CoverageShift> ComputeCoverageShift(const PreferenceGraph& graph,
                                           const Solution& a,
                                           const Solution& b);

/// \brief Kendall tau-a rank correlation between two selection orders over
/// their common items (1 = same order, -1 = reversed, 0 = unrelated).
/// Returns 0 when fewer than 2 common items.
double SelectionOrderCorrelation(const std::vector<NodeId>& a,
                                 const std::vector<NodeId>& b);

}  // namespace prefcover

#endif  // PREFCOVER_EVAL_METRICS_H_
