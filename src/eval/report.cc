#include "eval/report.h"

#include <algorithm>
#include <ostream>

#include "util/bitset.h"
#include "util/csv.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace prefcover {

Result<SolutionReport> BuildSolutionReport(const PreferenceGraph& graph,
                                           const Solution& solution,
                                           size_t max_unserved) {
  PREFCOVER_RETURN_NOT_OK(solution.Validate(graph));

  SolutionReport report;
  report.algorithm = solution.algorithm;
  report.variant = solution.variant;
  report.catalog_size = graph.NumNodes();
  report.retained_size = solution.items.size();
  report.cover = solution.cover;
  report.solve_seconds = solution.solve_seconds;

  Bitset retained(graph.NumNodes());
  for (NodeId v : solution.items) retained.Set(v);

  report.retained.reserve(solution.items.size());
  for (NodeId v : solution.items) {
    report.retained.push_back(
        {v, graph.DisplayName(v), graph.NodeWeight(v), 1.0, true});
    report.retained_weight += graph.NodeWeight(v);
  }
  report.covered_via_alternatives = report.cover - report.retained_weight;

  // Risk section: largest unserved demand among non-retained items.
  std::vector<SolutionReport::ItemLine> unretained;
  double unretained_weight = 0.0;
  double unretained_covered = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (retained.Test(v)) continue;
    double coverage = solution.ItemCoverage(graph, v);
    unretained.push_back(
        {v, graph.DisplayName(v), graph.NodeWeight(v), coverage, false});
    unretained_weight += graph.NodeWeight(v);
    unretained_covered += graph.NodeWeight(v) * coverage;
  }
  if (unretained_weight > 0.0) {
    report.mean_unretained_coverage =
        unretained_covered / unretained_weight;
  }
  std::sort(unretained.begin(), unretained.end(),
            [](const SolutionReport::ItemLine& a,
               const SolutionReport::ItemLine& b) {
              double ua = a.weight * (1.0 - a.coverage);
              double ub = b.weight * (1.0 - b.coverage);
              if (ua != ub) return ua > ub;
              return a.item < b.item;
            });
  if (unretained.size() > max_unserved) unretained.resize(max_unserved);
  report.top_unserved = std::move(unretained);
  return report;
}

void PrintSolutionReport(const SolutionReport& report, std::ostream* out,
                         size_t max_retained_lines) {
  *out << "=== Preference Cover report ===\n"
       << "algorithm: " << report.algorithm << " ("
       << VariantName(report.variant) << " variant)\n"
       << "retained " << report.retained_size << " of "
       << report.catalog_size << " items in "
       << FormatDuration(report.solve_seconds) << "\n"
       << "cover C(S): " << TablePrinter::Percent(report.cover, 2)
       << "  (direct " << TablePrinter::Percent(report.retained_weight, 2)
       << " + via alternatives "
       << TablePrinter::Percent(report.covered_via_alternatives, 2)
       << ")\n"
       << "demand-weighted coverage of non-retained items: "
       << TablePrinter::Percent(report.mean_unretained_coverage, 2)
       << "\n\n";

  TablePrinter retained_table({"rank", "item", "weight"});
  size_t limit = max_retained_lines == 0
                     ? report.retained.size()
                     : std::min(max_retained_lines, report.retained.size());
  for (size_t i = 0; i < limit; ++i) {
    const auto& line = report.retained[i];
    retained_table.AddRow({std::to_string(i + 1), line.name,
                           TablePrinter::Percent(line.weight, 3)});
  }
  retained_table.Print(out, "Retained (selection order, first " +
                                std::to_string(limit) + ")");
  if (limit < report.retained.size()) {
    *out << "... " << report.retained.size() - limit << " more\n";
  }

  if (!report.top_unserved.empty()) {
    *out << '\n';
    TablePrinter risk({"item", "demand", "coverage", "unserved demand"});
    for (const auto& line : report.top_unserved) {
      risk.AddRow({line.name, TablePrinter::Percent(line.weight, 3),
                   TablePrinter::Percent(line.coverage, 1),
                   TablePrinter::Percent(
                       line.weight * (1.0 - line.coverage), 3)});
    }
    risk.Print(out, "Largest unserved demand among non-retained items");
  }
}

Status WriteCoverageCsv(const PreferenceGraph& graph,
                        const Solution& solution, std::ostream* out) {
  PREFCOVER_RETURN_NOT_OK(solution.Validate(graph));
  Bitset retained(graph.NumNodes());
  for (NodeId v : solution.items) retained.Set(v);
  CsvWriter writer(out);
  writer.WriteRecord({"item_id", "label", "weight", "retained", "coverage"});
  char weight[32], coverage[32];
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    std::snprintf(weight, sizeof(weight), "%.10g", graph.NodeWeight(v));
    std::snprintf(coverage, sizeof(coverage), "%.10g",
                  solution.ItemCoverage(graph, v));
    writer.WriteRecord({std::to_string(v), graph.DisplayName(v), weight,
                        retained.Test(v) ? "1" : "0", coverage});
  }
  if (!out->good()) return Status::IOError("failed writing coverage CSV");
  return Status::OK();
}

}  // namespace prefcover
