#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace prefcover {

double JaccardSimilarity(const std::vector<NodeId>& a,
                         const std::vector<NodeId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<NodeId> set_a(a.begin(), a.end());
  size_t intersection = 0;
  std::unordered_set<NodeId> set_b;
  for (NodeId v : b) {
    if (set_b.insert(v).second && set_a.count(v) > 0) ++intersection;
  }
  size_t union_size = set_a.size() + set_b.size() - intersection;
  return union_size == 0
             ? 1.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

double PrefixOverlap(const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b, size_t k) {
  k = std::min({k, a.size(), b.size()});
  if (k == 0) return 1.0;
  std::unordered_set<NodeId> prefix_b(b.begin(),
                                      b.begin() + static_cast<ptrdiff_t>(k));
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) {
    if (prefix_b.count(a[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RetainedWeightDelta(const PreferenceGraph& graph,
                           const std::vector<NodeId>& a,
                           const std::vector<NodeId>& b) {
  std::unordered_set<NodeId> set_b(b.begin(), b.end());
  std::unordered_set<NodeId> seen;
  double delta = 0.0;
  for (NodeId v : a) {
    if (!seen.insert(v).second) continue;
    if (set_b.count(v) == 0) delta += graph.NodeWeight(v);
  }
  return delta;
}

Result<CoverageShift> ComputeCoverageShift(const PreferenceGraph& graph,
                                           const Solution& a,
                                           const Solution& b) {
  if (a.item_contributions.size() != graph.NumNodes() ||
      b.item_contributions.size() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "solutions must carry item contributions for this graph");
  }
  CoverageShift shift;
  double sum_abs = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    double cov_a = a.ItemCoverage(graph, v);
    double cov_b = b.ItemCoverage(graph, v);
    double diff = cov_a - cov_b;
    sum_abs += std::fabs(diff);
    shift.max_abs_difference =
        std::max(shift.max_abs_difference, std::fabs(diff));
    if (diff > 1e-12) ++shift.items_better_in_a;
    if (diff < -1e-12) ++shift.items_better_in_b;
  }
  if (graph.NumNodes() > 0) {
    shift.mean_abs_difference =
        sum_abs / static_cast<double>(graph.NumNodes());
  }
  return shift;
}

double SelectionOrderCorrelation(const std::vector<NodeId>& a,
                                 const std::vector<NodeId>& b) {
  // Ranks of the common items in each order.
  std::unordered_map<NodeId, size_t> rank_a, rank_b;
  for (size_t i = 0; i < a.size(); ++i) rank_a.emplace(a[i], i);
  for (size_t i = 0; i < b.size(); ++i) rank_b.emplace(b[i], i);
  std::vector<std::pair<size_t, size_t>> common;  // (rank in a, rank in b)
  for (const auto& [item, ra] : rank_a) {
    auto it = rank_b.find(item);
    if (it != rank_b.end()) common.push_back({ra, it->second});
  }
  const size_t n = common.size();
  if (n < 2) return 0.0;
  std::sort(common.begin(), common.end());
  // Kendall tau-a: concordant minus discordant pairs over all pairs.
  // O(n^2) is fine for retained-set sizes.
  long long concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (common[j].second > common[i].second) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

}  // namespace prefcover
