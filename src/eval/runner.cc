#include "eval/runner.h"

#include "core/baseline_solvers.h"
#include "core/brute_force_solver.h"
#include "core/greedy_solver.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace prefcover {

std::string AlgorithmDisplayName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kGreedyLazy:
      return "Greedy(lazy)";
    case Algorithm::kGreedyParallel:
      return "Greedy(parallel)";
    case Algorithm::kGreedyLazyParallel:
      return "Greedy(lazy-parallel)";
    case Algorithm::kConstrainedGreedy:
      return "Constrained";
    case Algorithm::kBruteForce:
      return "BF";
    case Algorithm::kTopKWeight:
      return "TopK-W";
    case Algorithm::kTopKCoverage:
      return "TopK-C";
    case Algorithm::kRandom:
      return "Random";
  }
  return "?";
}

Result<Solution> RunAlgorithm(Algorithm algorithm,
                              const PreferenceGraph& graph, size_t k,
                              Variant variant, Rng* rng,
                              size_t num_threads) {
  GreedyOptions greedy_options;
  greedy_options.variant = variant;
  return RunAlgorithm(algorithm, graph, k, greedy_options, rng,
                      num_threads);
}

Result<Solution> RunAlgorithm(Algorithm algorithm,
                              const PreferenceGraph& graph, size_t k,
                              const GreedyOptions& options, Rng* rng,
                              size_t num_threads) {
  return RunAlgorithm(algorithm, graph, k, options, ConstraintSpec(), rng,
                      num_threads);
}

namespace {

// True when the spec constrains anything — a default spec routes
// kConstrainedGreedy through the same solver but any other algorithm can
// honor it too (by ignoring it), so only a non-default one is an error
// for them.
bool IsConstraining(const ConstraintSpec& spec) {
  return !spec.costs.empty() || spec.HasBudget() || spec.HasQuotas();
}

}  // namespace

Result<Solution> RunAlgorithm(Algorithm algorithm,
                              const PreferenceGraph& graph, size_t k,
                              const GreedyOptions& options,
                              const ConstraintSpec& spec, Rng* rng,
                              size_t num_threads) {
  const Variant variant = options.variant;
  obs::Span phase_span("eval.run_algorithm", "eval");
  phase_span.Arg("algorithm", AlgorithmDisplayName(algorithm).c_str());
  phase_span.Arg("k", static_cast<uint64_t>(k));
  phase_span.Arg("n", static_cast<uint64_t>(graph.NumNodes()));
  if (algorithm == Algorithm::kConstrainedGreedy) {
    if (!options.force_include.empty() || !options.force_exclude.empty() ||
        options.stop_at_cover <= 1.0 ||
        !options.checkpoint.resume_prefix.empty()) {
      return Status::InvalidArgument(
          "the constrained solver does not support force lists, "
          "stop_at_cover or resume");
    }
    // k == 0 means an empty solution here (matching the greedy family),
    // not the constrained solver's "no cardinality bound".
    if (k == 0) {
      PREFCOVER_RETURN_NOT_OK(ValidateConstraintSpec(graph, spec));
      Solution empty;
      empty.variant = variant;
      empty.algorithm = "constrained-greedy";
      empty.item_contributions.assign(graph.NumNodes(), 0.0);
      return empty;
    }
    ConstrainedCoverOptions constrained_options;
    constrained_options.variant = variant;
    constrained_options.max_items = k;
    PREFCOVER_ASSIGN_OR_RETURN(
        ConstrainedSolution solved,
        SolveConstrainedCover(graph, spec, constrained_options));
    return std::move(solved.solution);
  }
  if (IsConstraining(spec)) {
    return Status::InvalidArgument(
        "algorithm " + AlgorithmDisplayName(algorithm) +
        " cannot honor a constraint spec; use the constrained solver");
  }
  switch (algorithm) {
    case Algorithm::kGreedy:
      return SolveGreedy(graph, k, options);
    case Algorithm::kGreedyLazy:
      return SolveGreedyLazy(graph, k, options);
    case Algorithm::kGreedyParallel: {
      ThreadPool pool(num_threads);
      return SolveGreedyParallel(graph, k, &pool, options);
    }
    case Algorithm::kGreedyLazyParallel: {
      ThreadPool pool(num_threads);
      return SolveGreedyLazyParallel(graph, k, &pool, options);
    }
    case Algorithm::kConstrainedGreedy:
      return Status::Internal("unreachable");  // dispatched above
    case Algorithm::kBruteForce: {
      BruteForceOptions bf_options;
      bf_options.variant = variant;
      return SolveBruteForce(graph, k, bf_options);
    }
    case Algorithm::kTopKWeight:
      return SolveTopKWeight(graph, k, variant);
    case Algorithm::kTopKCoverage:
      return SolveTopKCoverage(graph, k, variant);
    case Algorithm::kRandom:
      return SolveRandomBestOf(graph, k, variant, rng, /*trials=*/10);
  }
  return Status::Internal("unreachable");
}

Result<std::vector<SuiteEntry>> RunSuite(
    const std::vector<Algorithm>& algorithms, const PreferenceGraph& graph,
    size_t k, Variant variant, Rng* rng, size_t num_threads,
    const CancelToken* cancel) {
  obs::Span suite_span("eval.suite", "eval");
  suite_span.Arg("algorithms", static_cast<uint64_t>(algorithms.size()));
  suite_span.Arg("k", static_cast<uint64_t>(k));
  GreedyOptions greedy_options;
  greedy_options.variant = variant;
  greedy_options.cancel = cancel;
  std::vector<SuiteEntry> entries;
  entries.reserve(algorithms.size());
  for (Algorithm algorithm : algorithms) {
    // Between-algorithm boundary: a tripped token ends the suite with the
    // prefix of entries already finished (never mid-entry).
    if (cancel != nullptr && cancel->IsCancelled() && !entries.empty()) {
      break;
    }
    PREFCOVER_ASSIGN_OR_RETURN(
        Solution solution,
        RunAlgorithm(algorithm, graph, k, greedy_options, rng,
                     num_threads));
    entries.push_back({algorithm, std::move(solution)});
  }
  return entries;
}

}  // namespace prefcover
