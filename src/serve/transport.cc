#include "serve/transport.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace prefcover {
namespace serve {

void LineChunker::Append(std::string_view data) {
  while (!data.empty()) {
    const size_t eol = data.find('\n');
    const std::string_view segment =
        eol == std::string_view::npos ? data : data.substr(0, eol);
    if (!segment.empty()) {
      const size_t room = max_line_bytes_ > partial_.size()
                              ? max_line_bytes_ - partial_.size()
                              : 0;
      if (segment.size() > room) partial_overlong_ = true;
      partial_.append(segment.substr(0, std::min(room, segment.size())));
    }
    if (eol == std::string_view::npos) return;
    Line line;
    line.text = std::move(partial_);
    line.overlong = partial_overlong_;
    ready_.push_back(std::move(line));
    partial_.clear();
    partial_overlong_ = false;
    data.remove_prefix(eol + 1);
  }
}

bool LineChunker::Next(Line* line) {
  if (ready_.empty()) return false;
  *line = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

std::string FormatTaggedLine(uint64_t id, std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 24);
  out += '@';
  out += std::to_string(id);
  out += ' ';
  out += payload;
  return out;
}

bool ParseTaggedLine(std::string_view line, uint64_t* id,
                     std::string_view* payload) {
  if (line.size() < 3 || line[0] != '@') return false;
  size_t pos = 1;
  uint64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    const uint64_t digit = static_cast<uint64_t>(line[pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
    ++pos;
  }
  if (pos == 1 || pos >= line.size() || line[pos] != ' ') return false;
  *id = value;
  *payload = line.substr(pos + 1);
  return true;
}

}  // namespace serve
}  // namespace prefcover

#if defined(__unix__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "util/net_failpoint.h"

namespace prefcover {
namespace serve {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Accept failures a healthy server must ride out: the aborted handshake
// family plus momentary resource exhaustion. Everything else (EBADF,
// EINVAL, ENOTSOCK, EOPNOTSUPP, EFAULT) is a programming error.
bool IsTransientAcceptErrno(int err) {
  return err == ECONNABORTED || err == EPROTO || err == EMFILE ||
         err == ENFILE || err == ENOBUFS || err == ENOMEM ||
         err == EAGAIN || err == EWOULDBLOCK;
}

}  // namespace

void IgnoreSigpipe() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &action, nullptr);
}

Result<int> ListenTcp(uint16_t port, int backlog) {
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return ErrnoStatus("socket()");
  int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, backlog) < 0) {
    Status st = ErrnoStatus("cannot listen on 127.0.0.1:" +
                            std::to_string(port));
    ::close(listener);
    return st;
  }
  return listener;
}

Result<uint16_t> LocalPort(int listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return ErrnoStatus("getsockname()");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> AcceptClient(int listener) {
  static obs::Counter* transient =
      obs::MetricsRegistry::Global().GetCounter("serve.accept_transient");
  for (;;) {
    int fd = net::FaultyAccept(listener, nullptr, nullptr);
    if (fd >= 0) {
      // Replies are small request-response lines; Nagle would hold them
      // hostage to the peer's delayed ACKs (the connect side already
      // opts out — see ConnectTcp).
      int nodelay = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                   sizeof(nodelay));
      return fd;
    }
    if (errno == EINTR) continue;
    if (IsTransientAcceptErrno(errno)) {
      transient->Increment();
      // An injected persistent fault returns instantly; without a pause
      // the loop would hot-spin a core while "riding out" the outage.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    return ErrnoStatus("accept()");
  }
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("ConnectTcp: not a numeric IPv4 host: " +
                                   host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket()");
  // Nonblocking connect + poll bounds the handshake; the fd reverts to
  // blocking afterwards so the line loops stay simple.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = net::FaultyConnect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    Status st = ErrnoStatus("connect to " + host + ":" +
                            std::to_string(port));
    ::close(fd);
    return st;
  }
  if (rc < 0) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (rc > 0) {
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    }
    if (rc <= 0 || so_error != 0) {
      errno = rc == 0 ? ETIMEDOUT : (so_error != 0 ? so_error : errno);
      Status st = ErrnoStatus("connect to " + host + ":" +
                              std::to_string(port));
      ::close(fd);
      return st;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return fd;
}

Result<size_t> ReadSome(int fd, char* buffer, size_t capacity) {
  for (;;) {
    ssize_t got = net::FaultyRead(fd, buffer, capacity);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno == EINTR) continue;
    return ErrnoStatus("read()");
  }
}

Status WriteFully(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t wrote = net::FaultyWrite(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write()");
    }
    data += wrote;
    size -= static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Result<bool> PollReadable(int fd, int timeout_ms) {
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("poll()");
  return rc > 0;
}

Result<uint64_t> MultiplexedConnection::Send(const std::string& payload) {
  const uint64_t id = next_id_++;
  std::string line = FormatTaggedLine(id, payload);
  line.push_back('\n');
  PREFCOVER_RETURN_NOT_OK(WriteFully(fd_, line.data(), line.size()));
  outstanding_.insert(id);
  return id;
}

Result<std::string> MultiplexedConnection::Await(uint64_t id,
                                                 int timeout_ms) {
  const auto take_parked = [&]() -> std::string {
    auto it = parked_.find(id);
    std::string text = std::move(it->second);
    parked_.erase(it);
    outstanding_.erase(id);
    return text;
  };
  if (parked_.count(id) != 0) return take_parked();
  if (outstanding_.count(id) == 0) {
    return Status::NotFound("Await(" + std::to_string(id) +
                            "): id never sent or already awaited");
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  char chunk[4096];
  for (;;) {
    // Drain buffered lines before touching the socket.
    LineChunker::Line line;
    while (chunker_.Next(&line)) {
      if (line.overlong) {
        return Status::Corruption("overlong response line");
      }
      uint64_t got_id = 0;
      std::string_view payload;
      if (!ParseTaggedLine(line.text, &got_id, &payload)) {
        return Status::Corruption(
            "untagged response on a multiplexed connection: " + line.text);
      }
      parked_[got_id] = std::string(payload);
      if (got_id == id) return take_parked();
    }
    int remaining_ms = -1;
    if (timeout_ms >= 0) {
      remaining_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count());
      if (remaining_ms <= 0) {
        return Status::IOError("Await(" + std::to_string(id) +
                               "): response timeout");
      }
    }
    PREFCOVER_ASSIGN_OR_RETURN(bool readable,
                               PollReadable(fd_, remaining_ms));
    if (!readable) {
      return Status::IOError("Await(" + std::to_string(id) +
                             "): response timeout");
    }
    PREFCOVER_ASSIGN_OR_RETURN(size_t got,
                               ReadSome(fd_, chunk, sizeof(chunk)));
    if (got == 0) {
      return Status::IOError("Await(" + std::to_string(id) +
                             "): connection closed by peer");
    }
    chunker_.Append(std::string_view(chunk, got));
  }
}

Result<std::string> MultiplexedConnection::Call(const std::string& payload,
                                                int timeout_ms) {
  PREFCOVER_ASSIGN_OR_RETURN(uint64_t id, Send(payload));
  return Await(id, timeout_ms);
}

}  // namespace serve
}  // namespace prefcover

#endif  // __unix__ || __APPLE__
