#include "serve/client.h"

#if defined(__unix__) || defined(__APPLE__)

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/string_util.h"

namespace prefcover {
namespace serve {

namespace {

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string_view FirstToken(std::string_view line) {
  line = TrimWhitespace(line);
  const size_t space = line.find_first_of(" \t");
  return space == std::string_view::npos ? line : line.substr(0, space);
}

}  // namespace

ResilientClient::ResilientClient(ResilientClientOptions options)
    : options_(std::move(options)),
      rng_state_(options_.jitter_seed ? options_.jitter_seed : 1) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  auto& registry = obs::MetricsRegistry::Global();
  m_requests_ = registry.GetCounter("client.requests");
  m_retries_ = registry.GetCounter("client.retries");
  m_reconnects_ = registry.GetCounter("client.reconnects");
  m_timeouts_ = registry.GetCounter("client.timeouts");
  m_failures_ = registry.GetCounter("client.failures");
  m_breaker_opens_ = registry.GetCounter("client.breaker_opens");
  m_breaker_probes_ = registry.GetCounter("client.breaker_probes");
}

ResilientClient::~ResilientClient() { Disconnect(); }

bool ResilientClient::IsIdempotent(const std::string& request_line) {
  const std::string_view verb = FirstToken(request_line);
  // Queries recompute the same answer; stats/metrics only read. The
  // mutating control verbs are the closed list below — unknown verbs are
  // treated as idempotent so the server's own ERR InvalidArgument reply
  // (a *successful* exchange) comes back instead of a client-side guess.
  return verb != "reload" && verb != "quit" && verb != "shutdown";
}

bool ResilientClient::breaker_open() const {
  return breaker_ == BreakerState::kOpen;
}

void ResilientClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A torn connection may leave half a response buffered; it must not
  // be mistaken for the next request's reply.
  chunker_ = LineChunker();
}

void ResilientClient::SleepMs(int ms) {
  if (ms <= 0) return;
  if (options_.sleep_ms_fn) {
    options_.sleep_ms_fn(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

int64_t ResilientClient::NowMs() const {
  if (options_.now_ms_fn) return options_.now_ms_fn();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ResilientClient::BackoffMs(int retry_index) {
  // Full jitter: uniform in [0, min(cap, initial << (retry-1))].
  int64_t ceiling = options_.backoff_initial_ms;
  for (int i = 1; i < retry_index && ceiling < options_.backoff_max_ms;
       ++i) {
    ceiling *= 2;
  }
  ceiling = std::min<int64_t>(ceiling, options_.backoff_max_ms);
  if (ceiling <= 0) return 0;
  return static_cast<int>(SplitMix64Next(&rng_state_) %
                          static_cast<uint64_t>(ceiling + 1));
}

void ResilientClient::OnOutcome(bool success) {
  if (success) {
    consecutive_failures_ = 0;
    breaker_ = BreakerState::kClosed;
    return;
  }
  ++consecutive_failures_;
  if (options_.breaker_threshold <= 0) return;
  const bool trip =
      breaker_ == BreakerState::kHalfOpen ||
      consecutive_failures_ >= options_.breaker_threshold;
  if (trip && breaker_ != BreakerState::kOpen) {
    breaker_ = BreakerState::kOpen;
    breaker_opened_ms_ = NowMs();
    ++counters_.breaker_opens;
    m_breaker_opens_->Increment();
  }
}

Status ResilientClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  auto fd = ConnectTcp(options_.host, options_.port,
                       options_.connect_timeout_ms);
  PREFCOVER_RETURN_NOT_OK(fd.status());
  fd_ = *fd;
  chunker_ = LineChunker();
  ++counters_.reconnects;
  m_reconnects_->Increment();
  return Status::OK();
}

Result<std::string> ResilientClient::CallOnce(
    const std::string& request_line, bool is_metrics) {
  PREFCOVER_RETURN_NOT_OK(EnsureConnected());
  const std::string wire = request_line + "\n";
  PREFCOVER_RETURN_NOT_OK(WriteFully(fd_, wire.data(), wire.size()));

  const int64_t deadline_ms = NowMs() + options_.request_timeout_ms;
  std::string response;
  char chunk[4096];
  for (;;) {
    LineChunker::Line line;
    while (chunker_.Next(&line)) {
      if (!is_metrics) return std::move(line.text);
      response.append(line.text);
      response.push_back('\n');
      if (TrimWhitespace(line.text) == "# EOF") return response;
    }
    const int64_t remaining_ms = deadline_ms - NowMs();
    if (remaining_ms <= 0) {
      ++counters_.timeouts;
      m_timeouts_->Increment();
      return Status::Cancelled(
          "request timed out after " +
          std::to_string(options_.request_timeout_ms) + "ms");
    }
    auto readable =
        PollReadable(fd_, static_cast<int>(std::min<int64_t>(
                              remaining_ms, 1 << 30)));
    PREFCOVER_RETURN_NOT_OK(readable.status());
    if (!*readable) continue;  // re-check the deadline, then poll again
    auto got = ReadSome(fd_, chunk, sizeof(chunk));
    PREFCOVER_RETURN_NOT_OK(got.status());
    if (*got == 0) {
      return Status::IOError("connection closed mid-response");
    }
    chunker_.Append(std::string_view(chunk, *got));
  }
}

Result<std::string> ResilientClient::Call(
    const std::string& request_line) {
  ++counters_.requests;
  m_requests_->Increment();

  if (breaker_ == BreakerState::kOpen) {
    if (NowMs() - breaker_opened_ms_ < options_.breaker_cooldown_ms) {
      ++counters_.breaker_fastfails;
      return Status::FailedPrecondition(
          "circuit breaker open (cooling down)");
    }
    // Cooldown elapsed: admit exactly one probe.
    breaker_ = BreakerState::kHalfOpen;
    ++counters_.breaker_probes;
    m_breaker_probes_->Increment();
  }

  const bool idempotent = IsIdempotent(request_line);
  const bool is_metrics =
      TrimWhitespace(std::string_view(request_line)) == "metrics";
  const int max_attempts = idempotent ? options_.max_attempts : 1;
  // Half-open allows one wire attempt only — the probe.
  const int attempts_allowed =
      breaker_ == BreakerState::kHalfOpen ? 1 : max_attempts;

  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts_allowed; ++attempt) {
    if (attempt > 1) {
      ++counters_.retries;
      m_retries_->Increment();
      SleepMs(BackoffMs(attempt - 1));
    }
    ++counters_.attempts;
    auto result = CallOnce(request_line, is_metrics);
    if (result.ok()) {
      OnOutcome(true);
      return result;
    }
    last = result.status();
    Disconnect();
    OnOutcome(false);
    if (breaker_ == BreakerState::kOpen) break;  // stop hammering
  }
  ++counters_.failures;
  m_failures_->Increment();
  return last;
}

}  // namespace serve
}  // namespace prefcover

#endif  // __unix__ || __APPLE__
