// The immutable query-serving artifact built from a solved prefix and its
// preference graph.
//
// A solve answers "which k items to keep"; production traffic asks the
// inverse question per request: "is item v covered by the reduced
// inventory S, and which substitute do I show?" The ServingIndex
// precomputes everything those queries need so answering is an O(1) CSR
// probe, independent of the original graph:
//
//   - per-node retained flag (v in S);
//   - per-node exact coverage probability, identical to
//     CoverOfItem(graph, S, v, variant) — computed from the FULL
//     adjacency, never from the truncated substitute list;
//   - per-node substitute list: v's retained out-neighbors sorted by
//     descending edge weight (ties to the smaller id), truncated to the
//     top m (retained nodes store an empty list — they are their own
//     substitute);
//   - coverage-at-k prefix sums over the greedy selection order, so
//     "what would a budget of k' buy" is a single array read.
//
// The index is immutable after Build/Load; all read accessors are
// thread-safe. It serializes to the PCSIDX01 binary format (see
// SERVING.md for the layout diagram) with a CRC-32 footer, written via
// util::WriteFileAtomic, so a serving process restarted after a crash
// reloads the artifact without re-solving. Emission is byte-deterministic
// for a given (graph, solution, options) — locked by a golden test.

#ifndef PREFCOVER_SERVE_SERVING_INDEX_H_
#define PREFCOVER_SERVE_SERVING_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/solution.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/bitset.h"
#include "util/status.h"

namespace prefcover {
namespace serve {

/// \brief Build-time knobs of the serving artifact.
struct ServingIndexOptions {
  /// Substitutes retained per node (top-m by edge weight). Queries can ask
  /// for fewer; asking for more is capped here at build time.
  size_t top_m = 8;
};

/// \brief Immutable, memory-compact substitute-query artifact.
class ServingIndex {
 public:
  /// \brief Builds the index from a solver output. The solution's items
  /// must be distinct and within the graph; `cover_after_prefix` must
  /// parallel `items` (every greedy-family Solution satisfies both).
  static Result<ServingIndex> Build(
      const PreferenceGraph& graph, const Solution& solution,
      const ServingIndexOptions& options = ServingIndexOptions());

  /// \brief Builds from an unordered retained set (e.g. the
  /// InventoryMaintainer's): coverage-at-k prefix sums are computed by
  /// replaying AddNode over `retained` in the given order.
  static Result<ServingIndex> BuildFromRetained(
      const PreferenceGraph& graph, const std::vector<NodeId>& retained,
      Variant variant,
      const ServingIndexOptions& options = ServingIndexOptions());

  /// \name Shape.
  /// @{
  size_t NumNodes() const { return item_coverage_.size(); }
  size_t NumRetained() const { return items_.size(); }
  Variant variant() const { return variant_; }
  size_t top_m() const { return top_m_; }
  /// GraphDigest of the instance the index was built from; lets a loader
  /// refuse to serve a mismatched graph.
  uint64_t graph_digest() const { return graph_digest_; }
  /// @}

  /// \name Queries. All O(1) (SubstitutesOf returns a view, no copy).
  /// @{

  /// True if v is in the retained set S.
  bool Retained(NodeId v) const { return retained_.Test(v); }

  /// True if a request for v can be matched at all: v is retained, or at
  /// least one retained substitute exists.
  bool Covered(NodeId v) const {
    return retained_.Test(v) || SubDegree(v) > 0;
  }

  /// Exact match probability of a request for v, identical to
  /// CoverOfItem(graph, S, v, variant): 1 for retained v, the
  /// variant-specific combination of ALL retained alternatives otherwise.
  double CoverageOf(NodeId v) const { return item_coverage_[v]; }

  /// v's retained substitutes, strongest first (weight desc, id asc),
  /// truncated to top_m at build time. Empty for retained v.
  AdjacencyView SubstitutesOf(NodeId v) const {
    size_t b = sub_offsets_[v], e = sub_offsets_[v + 1];
    return {std::span(sub_targets_).subspan(b, e - b),
            std::span(sub_weights_).subspan(b, e - b)};
  }

  /// C(first k items of the selection order); k <= NumRetained().
  /// CoverageAtK(0) == 0.
  double CoverageAtK(size_t k) const { return cover_at_k_[k]; }

  /// The retained items in selection order.
  std::span<const NodeId> items() const { return items_; }
  /// @}

  /// Bytes held by the index payload arrays (capacity not counted).
  size_t MemoryBytes() const;

  /// \name PCSIDX01 serialization.
  /// @{

  /// Byte-deterministic binary emission (magic, version, payload, CRC-32
  /// footer).
  std::string Serialize() const;

  /// Atomically replaces `path` with Serialize() via WriteFileAtomic.
  Status Save(const std::string& path) const;

  /// Parses and integrity-checks a serialized index. Corruption on any
  /// mismatch (magic, version, CRC, internal consistency).
  static Result<ServingIndex> Deserialize(std::string_view bytes);

  /// Load from a file. Failpoint `serve.index_load` fires before the
  /// read. `expected_graph_digest`, when nonzero, must match the stored
  /// digest (FailedPrecondition otherwise) — pass GraphDigest(graph) when
  /// the graph is at hand to refuse serving a stale artifact.
  static Result<ServingIndex> Load(const std::string& path,
                                   uint64_t expected_graph_digest = 0);
  /// @}

 private:
  ServingIndex() = default;

  size_t SubDegree(NodeId v) const {
    return sub_offsets_[v + 1] - sub_offsets_[v];
  }

  /// Validation shared by Build and Deserialize; rebuilds `retained_`.
  Status FinishAndValidate();

  Variant variant_ = Variant::kIndependent;
  size_t top_m_ = 0;
  uint64_t graph_digest_ = 0;
  std::vector<NodeId> items_;         // selection order
  std::vector<double> cover_at_k_;    // items_.size() + 1 prefix covers
  std::vector<double> item_coverage_; // size n, exact CoverOfItem
  std::vector<uint64_t> sub_offsets_; // size n + 1
  std::vector<NodeId> sub_targets_;
  std::vector<double> sub_weights_;
  Bitset retained_;                   // rebuilt from items_, not serialized
};

}  // namespace serve
}  // namespace prefcover

#endif  // PREFCOVER_SERVE_SERVING_INDEX_H_
