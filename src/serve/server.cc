#include "serve/server.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <cstdio>
#include <memory>
#include <utility>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/serving_index.h"
#include "serve/transport.h"
#include "util/string_util.h"

namespace prefcover {
namespace serve {

std::string HandleServeLine(QueryEngine* engine, const std::string& line,
                            bool* quit) {
  std::string_view trimmed = TrimWhitespace(line);
  if (trimmed == "quit") {
    *quit = true;
    return "OK bye";
  }
  if (trimmed == "metrics") {
    std::string text = obs::RenderPrometheusText(
        obs::MetricsRegistry::Global().Snapshot());
    // Both transports append the protocol newline; the exposition already
    // ends with one after "# EOF".
    if (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }
  if (trimmed == "stats") {
    QueryEngineStats stats = engine->Stats();
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "OK stats requests=%llu batches=%llu cache_hits=%llu "
                  "cache_misses=%llu shed=%llu deadline_expired=%llu "
                  "deadline_shed=%llu brownout=%llu reloads=%llu",
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.batches),
                  static_cast<unsigned long long>(stats.cache_hits),
                  static_cast<unsigned long long>(stats.cache_misses),
                  static_cast<unsigned long long>(stats.admission_rejected),
                  static_cast<unsigned long long>(stats.deadline_expired),
                  static_cast<unsigned long long>(stats.deadline_shed),
                  static_cast<unsigned long long>(stats.brownouts),
                  static_cast<unsigned long long>(stats.index_reloads));
    return buffer;
  }
  if (trimmed.rfind("reload ", 0) == 0) {
    std::string path(TrimWhitespace(trimmed.substr(7)));
    auto index = ServingIndex::Load(path);
    if (!index.ok()) return FormatErrorLine(index.status());
    auto shared = std::make_shared<const ServingIndex>(std::move(*index));
    size_t retained = shared->NumRetained();
    Status st = engine->SwapIndex(std::move(shared));
    if (!st.ok()) return FormatErrorLine(st);
    return "OK reload " + std::to_string(retained);
  }
  auto request = ParseRequest(trimmed);
  if (!request.ok()) return FormatErrorLine(request.status());
  return engine->SubmitAndWait(std::move(*request)).line;
}

#if defined(__unix__) || defined(__APPLE__)

bool ServeLineSessionLoop(int fd, const LineHandler& handler) {
  static obs::Counter* read_errors =
      obs::MetricsRegistry::Global().GetCounter("serve.net.read_errors");
  static obs::Counter* write_errors =
      obs::MetricsRegistry::Global().GetCounter("serve.net.write_errors");
  static obs::Counter* overlong_lines =
      obs::MetricsRegistry::Global().GetCounter("serve.overlong_lines");

  LineChunker chunker;
  char chunk[4096];
  bool keep_serving = true;
  for (;;) {
    auto got = ReadSome(fd, chunk, sizeof(chunk));
    if (!got.ok()) {
      // This client's socket died (possibly by injection); the server
      // rides on.
      read_errors->Increment();
      break;
    }
    if (*got == 0) break;  // clean EOF
    chunker.Append(std::string_view(chunk, *got));
    LineChunker::Line line;
    while (chunker.Next(&line)) {
      if (line.overlong) {
        overlong_lines->Increment();
        std::string reply =
            FormatErrorLine(Status::InvalidArgument(
                "request line exceeds " +
                std::to_string(kMaxRequestLineBytes) + " bytes")) +
            "\n";
        if (!WriteFully(fd, reply.data(), reply.size()).ok()) {
          write_errors->Increment();
          ::close(fd);
          return keep_serving;
        }
        continue;
      }
      // Multiplex framing: untag before the handler, re-tag the reply.
      uint64_t tag = 0;
      std::string_view payload;
      const bool tagged = ParseTaggedLine(line.text, &tag, &payload);
      const std::string request =
          tagged ? std::string(payload) : line.text;
      bool stop_session = false;
      bool stop_server = false;
      std::string response = handler(request, &stop_session, &stop_server);
      if (stop_server) keep_serving = false;
      if (tagged) response = FormatTaggedLine(tag, response);
      response.push_back('\n');
      if (!WriteFully(fd, response.data(), response.size()).ok()) {
        write_errors->Increment();
        stop_session = true;
      }
      if (stop_session) {
        ::close(fd);
        return keep_serving;
      }
    }
  }
  ::close(fd);
  return keep_serving;
}

bool ServeConnectionLoop(QueryEngine* engine, int fd) {
  return ServeLineSessionLoop(
      fd, [engine](const std::string& line, bool* stop_session,
                   bool* stop_server) -> std::string {
        if (TrimWhitespace(line) == "shutdown") {
          *stop_session = true;
          *stop_server = true;
          return "OK bye";
        }
        bool quit = false;
        std::string response = HandleServeLine(engine, line, &quit);
        if (quit) *stop_session = true;
        return response;
      });
}

#endif  // __unix__ || __APPLE__

}  // namespace serve
}  // namespace prefcover
