// The serve-side protocol session: one function that answers a protocol
// line (shared by the stdin and TCP transports) and the per-connection
// TCP loop built on serve/transport.
//
// Extracted from tools/prefcover_cli.cpp so the framing behaviour is
// library code the tests can drive directly over a socketpair — the
// adversarial-framing property tests (partial reads, pathologically
// split writes, oversized lines, interleaved control verbs) live in
// tests/serve/transport_test.cc.

#ifndef PREFCOVER_SERVE_SERVER_H_
#define PREFCOVER_SERVE_SERVER_H_

#include <functional>
#include <string>

#include "serve/query_engine.h"

namespace prefcover {
namespace serve {

/// \brief Handles one protocol line: control verbs first (stats /
/// metrics / reload <path> / quit), then query parsing + the engine.
/// Returns the response text; sets *quit when the session should end.
/// Every response is single-line except `metrics`, whose multi-line
/// Prometheus exposition is terminated by its `# EOF` line — scrapers
/// read until they see it.
std::string HandleServeLine(QueryEngine* engine, const std::string& line,
                            bool* quit);

/// \brief Answers one session line. Returns the response text (the loop
/// appends the protocol newline). Set *stop_session to close the
/// connection after replying; *stop_server additionally tells the accept
/// loop to stop (both start false).
using LineHandler = std::function<std::string(
    const std::string& line, bool* stop_session, bool* stop_server)>;

#if defined(__unix__) || defined(__APPLE__)

/// \brief The generic per-connection line session over the
/// fault-injectable transport, shared by the query server and the
/// distributed-solve worker: newline-delimited requests in, handler
/// responses out. Over-long request lines get a well-formed
/// `ERR InvalidArgument ...` reply (memory stays bounded; the connection
/// survives). Requests tagged `@<id> ` (serve/transport.h multiplexing)
/// are untagged before the handler sees them and their responses echo
/// the tag, so handlers are tag-oblivious. A read or write error closes
/// just this connection, never the server. Closes `fd`. Returns false
/// when the server should stop accepting.
bool ServeLineSessionLoop(int fd, const LineHandler& handler);

/// \brief Serves one accepted query-protocol connection:
/// ServeLineSessionLoop over HandleServeLine plus the `shutdown` verb
/// (ends the session AND the server). Closes `fd`. Returns false when
/// the server should stop accepting.
bool ServeConnectionLoop(QueryEngine* engine, int fd);

#endif  // __unix__ || __APPLE__

}  // namespace serve
}  // namespace prefcover

#endif  // PREFCOVER_SERVE_SERVER_H_
