#include "serve/query_engine.h"

#include <cassert>
#include <chrono>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "util/failpoint.h"

namespace prefcover {
namespace serve {

namespace {

/// serve.latency_us buckets: 1-2-5 decades from 1us to 1s; slower
/// requests land in the overflow bucket.
std::vector<double> LatencyBucketsMicros() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 100000.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(1000000.0);
  return bounds;
}

Response MakeErrorResponse(Status status, int64_t done_ns) {
  Response response;
  response.line = FormatErrorLine(status);
  response.status = std::move(status);
  response.done_ns = done_ns;
  return response;
}

/// Cache key of a substitutes query: the only cached kind. The id and the
/// requested depth both shape the response line, so both are in the key.
uint64_t SubsCacheKey(NodeId v, uint32_t top_j) {
  return (static_cast<uint64_t>(v) << 32) | static_cast<uint64_t>(top_j);
}

}  // namespace

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

QueryEngine::QueryEngine(std::shared_ptr<const ServingIndex> index,
                         QueryEngineOptions options)
    : options_(options) {
  assert(index != nullptr && "QueryEngine needs an index");
  if (options_.batch_limit == 0) options_.batch_limit = 1;
  auto& registry = obs::MetricsRegistry::Global();
  requests_total_ = registry.GetCounter("serve.requests");
  batches_total_ = registry.GetCounter("serve.batches");
  cache_hit_ = registry.GetCounter("serve.cache.hit");
  cache_miss_ = registry.GetCounter("serve.cache.miss");
  admission_rejected_ = registry.GetCounter("serve.admission_rejected");
  deadline_expired_ = registry.GetCounter("serve.deadline_expired");
  deadline_shed_ = registry.GetCounter("serve.deadline_shed");
  brownout_ = registry.GetCounter("serve.brownout");
  index_reloads_ = registry.GetCounter("serve.index_reloads");
  batch_size_hist_ = registry.GetHistogram(
      "serve.batch_size",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  latency_us_hist_ =
      registry.GetHistogram("serve.latency_us", LatencyBucketsMicros());
  qps_gauge_ = registry.GetGauge("serve.qps");

  auto state = std::make_shared<State>();
  state->index = std::move(index);
  state->cache = std::make_shared<LruCache>(options_.cache_capacity);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = std::move(state);
  }

  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryEngine::~QueryEngine() { Shutdown(); }

void QueryEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  // Serialize the join itself: a second caller (e.g. the destructor
  // racing an explicit Shutdown) blocks here until the first finishes,
  // then sees joinable() == false. Joining the same thread from two
  // threads concurrently would be UB.
  std::lock_guard<std::mutex> join_lock(shutdown_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<Response> QueryEngine::Submit(Request request) {
  const int64_t now_ns = SteadyNowNanos();
  if (request.deadline_ns == 0 && options_.default_deadline_us > 0) {
    request.deadline_ns = now_ns + options_.default_deadline_us * 1000;
  }
  Pending pending;
  pending.request = std::move(request);
  pending.enqueue_ns = now_ns;
  std::future<Response> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      pending.promise.set_value(MakeErrorResponse(
          Status::Cancelled("engine is shut down"), now_ns));
      return future;
    }
    if (queue_.size() >= options_.max_queue) {
      admission_rejected_->Increment();
      n_admission_rejected_.fetch_add(1, std::memory_order_relaxed);
      pending.promise.set_value(MakeErrorResponse(
          Status::OutOfRange(
              "queue full (" + std::to_string(queue_.size()) +
              " requests pending), try again"),
          now_ns));
      return future;
    }
    if (options_.deadline_shed && pending.request.deadline_ns > 0) {
      // Deadline-aware shed: reject at the door a request that has
      // already expired, or that the backlog × recent service time says
      // cannot be reached in time. Not counted in serve.requests
      // (symmetric with admission_rejected: the engine never worked on
      // it).
      const int64_t ewma =
          ewma_service_ns_.load(std::memory_order_relaxed);
      const int64_t eta_ns =
          now_ns +
          (ewma > 0 ? static_cast<int64_t>(queue_.size()) * ewma : 0);
      if (now_ns >= pending.request.deadline_ns ||
          eta_ns > pending.request.deadline_ns) {
        deadline_shed_->Increment();
        n_deadline_shed_.fetch_add(1, std::memory_order_relaxed);
        pending.promise.set_value(MakeErrorResponse(
            Status::Cancelled("deadline unreachable, shed at admission"),
            now_ns));
        return future;
      }
    }
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

Response QueryEngine::SubmitAndWait(Request request) {
  return Submit(std::move(request)).get();
}

Status QueryEngine::SwapIndex(std::shared_ptr<const ServingIndex> index) {
  if (index == nullptr) {
    return Status::InvalidArgument("SwapIndex: index must not be null");
  }
  PREFCOVER_FAILPOINT_STATUS("serve.reload_swap");
  obs::Span span("serve.reload_swap", "serve");
  span.Arg("retained", static_cast<uint64_t>(index->NumRetained()));
  auto state = std::make_shared<State>();
  state->index = std::move(index);
  state->cache = std::make_shared<LruCache>(options_.cache_capacity);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = std::move(state);
  }
  index_reloads_->Increment();
  n_index_reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::shared_ptr<const QueryEngine::State> QueryEngine::LoadState() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

std::shared_ptr<const ServingIndex> QueryEngine::index() const {
  return LoadState()->index;
}

QueryEngineStats QueryEngine::Stats() const {
  QueryEngineStats stats;
  stats.requests = n_requests_.load(std::memory_order_relaxed);
  stats.batches = n_batches_.load(std::memory_order_relaxed);
  stats.cache_hits = n_cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = n_cache_misses_.load(std::memory_order_relaxed);
  stats.admission_rejected =
      n_admission_rejected_.load(std::memory_order_relaxed);
  stats.deadline_expired =
      n_deadline_expired_.load(std::memory_order_relaxed);
  stats.deadline_shed = n_deadline_shed_.load(std::memory_order_relaxed);
  stats.brownouts = n_brownouts_.load(std::memory_order_relaxed);
  stats.index_reloads = n_index_reloads_.load(std::memory_order_relaxed);
  return stats;
}

void QueryEngine::SetPaused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
}

void QueryEngine::AnswerOne(const State& state, Pending* pending,
                            bool brownout) {
  Request& request = pending->request;
  if (request.deadline_ns > 0 && SteadyNowNanos() > request.deadline_ns) {
    deadline_expired_->Increment();
    n_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    // Expired requests still count as requests, so cache_hits +
    // cache_misses + deadline_expired reconciles against requests.
    requests_total_->Increment();
    n_requests_.fetch_add(1, std::memory_order_relaxed);
    const int64_t done_ns = SteadyNowNanos();
    latency_us_hist_->Record(
        static_cast<double>(done_ns - pending->enqueue_ns) / 1000.0);
    pending->promise.set_value(MakeErrorResponse(
        Status::Cancelled("deadline exceeded while queued"), done_ns));
    return;
  }

  Response response;
  bool answered = false;
  if (request.type == QueryType::kSubstitutes) {
    if (brownout) {
      // Degraded answer: top-1 substitutes, zero cache traffic. Neither
      // looked up (a full-depth cached line would be the wrong shape)
      // nor filled (a top-1 line must not shadow full answers after the
      // queue drains).
      if (request.top_j > 1) request.top_j = 1;
      brownout_->Increment();
      n_brownouts_.fetch_add(1, std::memory_order_relaxed);
      response = AnswerOnIndex(*state.index, request);
      answered = true;
    } else if (state.cache->enabled()) {
      const uint64_t key = SubsCacheKey(request.v, request.top_j);
      if (state.cache->Get(key, &response.line)) {
        cache_hit_->Increment();
        n_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        answered = true;
      } else {
        cache_miss_->Increment();
        n_cache_misses_.fetch_add(1, std::memory_order_relaxed);
        response = AnswerOnIndex(*state.index, request);
        if (response.status.ok()) state.cache->Put(key, response.line);
        answered = true;
      }
    }
  }
  if (!answered) response = AnswerOnIndex(*state.index, request);

  response.done_ns = SteadyNowNanos();
  requests_total_->Increment();
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  latency_us_hist_->Record(
      static_cast<double>(response.done_ns - pending->enqueue_ns) / 1000.0);
  pending->promise.set_value(std::move(response));
}

void QueryEngine::DispatcherLoop() {
  // One-second tumbling window behind the serve.qps gauge.
  int64_t qps_window_start_ns = SteadyNowNanos();
  uint64_t qps_window_count = 0;

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] {
      return shutting_down_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    // Let the batch fill, bounded by the admission window. On shutdown
    // drain immediately — latency no longer matters, emptiness does.
    if (!shutting_down_ && options_.batch_window_us > 0 &&
        queue_.size() < options_.batch_limit) {
      const auto fill_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.batch_window_us);
      queue_cv_.wait_until(lock, fill_deadline, [this] {
        return shutting_down_ || queue_.size() >= options_.batch_limit;
      });
    }

    std::vector<Pending> batch;
    const size_t take = std::min(queue_.size(), options_.batch_limit);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    // Brownout is decided per batch on the backlog LEFT BEHIND: a full
    // batch with an empty queue is healthy saturation, not overload.
    const bool brownout =
        options_.brownout_watermark > 0 &&
        queue_.size() >= options_.brownout_watermark;
    lock.unlock();

    const int64_t service_start_ns = SteadyNowNanos();

    {
      obs::Span span("serve.batch", "serve");
      span.Arg("size", static_cast<uint64_t>(batch.size()));
      // One consistent snapshot for the whole batch: a concurrent
      // SwapIndex affects only later batches.
      std::shared_ptr<const State> state = LoadState();
      batches_total_->Increment();
      n_batches_.fetch_add(1, std::memory_order_relaxed);
      batch_size_hist_->Record(static_cast<double>(batch.size()));

      if (options_.pool != nullptr &&
          batch.size() >= options_.pool_fanout_threshold &&
          options_.pool->num_threads() > 1) {
        const size_t chunks = options_.pool->num_threads();
        const size_t chunk_size = (batch.size() + chunks - 1) / chunks;
        std::atomic<size_t> remaining{0};
        std::promise<void> all_done;
        size_t launched = 0;
        for (size_t begin = 0; begin < batch.size(); begin += chunk_size) {
          ++launched;
        }
        remaining.store(launched, std::memory_order_relaxed);
        for (size_t begin = 0; begin < batch.size(); begin += chunk_size) {
          const size_t end = std::min(begin + chunk_size, batch.size());
          options_.pool->Submit(
              [this, &state, &batch, &remaining, &all_done, brownout,
               begin, end] {
                for (size_t i = begin; i < end; ++i) {
                  AnswerOne(*state, &batch[i], brownout);
                }
                if (remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                    1) {
                  all_done.set_value();
                }
              });
        }
        // The batch, the snapshot and the latch live on this frame, so
        // the dispatcher must not outrun the workers.
        all_done.get_future().wait();
      } else {
        for (Pending& pending : batch) {
          AnswerOne(*state, &pending, brownout);
        }
      }
    }

    qps_window_count += batch.size();
    const int64_t now_ns = SteadyNowNanos();
    {
      // EWMA (alpha = 1/8) of per-request service time, feeding the
      // deadline-aware shed estimate in Submit.
      const int64_t per_req_ns =
          (now_ns - service_start_ns) / static_cast<int64_t>(batch.size());
      const int64_t prev =
          ewma_service_ns_.load(std::memory_order_relaxed);
      const int64_t next =
          prev == 0 ? per_req_ns : prev + (per_req_ns - prev) / 8;
      ewma_service_ns_.store(next, std::memory_order_relaxed);
    }
    if (now_ns - qps_window_start_ns >= 1000000000) {
      const double seconds =
          static_cast<double>(now_ns - qps_window_start_ns) / 1e9;
      qps_gauge_->Set(static_cast<int64_t>(
          static_cast<double>(qps_window_count) / seconds));
      qps_window_start_ns = now_ns;
      qps_window_count = 0;
    }

    lock.lock();
    if (shutting_down_ && queue_.empty()) return;
  }
}

}  // namespace serve
}  // namespace prefcover
