// Concurrent query engine: micro-batching, caching, admission control and
// hot reload on top of a ServingIndex.
//
// Shape (the same skeleton an inference server uses):
//
//   Submit(Request) -> future<Response>
//        |                        requests queue (bounded: admission control)
//        v
//   dispatcher thread: drains up to `batch_limit` requests every
//   `batch_window_us` microseconds (or immediately when a full batch is
//   waiting), answers them against one consistent {index, cache} snapshot,
//   optionally fanning chunks out to a ThreadPool, and fulfills the
//   promises with the engine-side completion timestamp.
//
// Micro-batching amortizes the queue handoff and snapshot load across
// many requests and gives every batch a single consistent view of the
// index — a reload can never split one batch across two indexes.
//
// Hot reload: SwapIndex publishes a new State{index, fresh cache} by
// swapping a mutex-guarded shared_ptr (the critical section is a pointer
// copy, so readers never wait meaningfully). In-flight batches keep the
// snapshot
// they started with; new batches see the new one. The cache travels WITH
// the index (a fresh cache per swap), so a cached response can never
// outlive the index it was computed from.
//
// Deadlines: a request carries an absolute steady-clock deadline
// (defaulted from QueryEngineOptions::default_deadline_us at admission).
// The dispatcher rejects requests whose deadline passed while queued with
// Status::Cancelled instead of doing work nobody is waiting for.
//
// Admission: when the queue holds max_queue requests, Submit resolves the
// future immediately with Status::OutOfRange ("queue full") — shedding
// load at the door keeps queueing delay bounded under overload.
//
// Deadline-aware shedding: Submit also rejects (Status::Cancelled) a
// request whose deadline has already passed, or that the dispatcher
// cannot plausibly reach in time — estimated as queue_depth × an EWMA of
// recent per-request service time. Doing the math at the door instead of
// after dequeue means an overloaded engine spends zero work on requests
// nobody will wait for (serve.deadline_shed).
//
// Brownout: past `brownout_watermark` of post-batch queue backlog, the
// engine serves degraded answers — substitutes truncated to top-1 and
// the cache bypassed entirely (no fill, no lookup) — so each answer gets
// cheaper exactly when the queue is deepest, trading answer richness for
// queue drain rate instead of failing closed (serve.brownout counts the
// degraded answers). Off by default; 0 disables.
//
// Observability (all in MetricsRegistry::Global; catalog in
// OBSERVABILITY.md): serve.requests, serve.batches, serve.batch_size
// histogram, serve.latency_us histogram (queue + service time),
// serve.cache.hit / serve.cache.miss, serve.admission_rejected,
// serve.deadline_expired, serve.index_reloads, serve.qps gauge (updated
// once a second by the dispatcher), plus a "serve.batch" span per batch.
// Failpoint: `serve.reload_swap` fires inside SwapIndex before the swap.

#ifndef PREFCOVER_SERVE_QUERY_ENGINE_H_
#define PREFCOVER_SERVE_QUERY_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "serve/lru_cache.h"
#include "serve/protocol.h"
#include "serve/serving_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace serve {

/// \brief Engine knobs; every one maps to a `prefcover_cli serve` flag.
struct QueryEngineOptions {
  /// Max requests answered per batch.
  size_t batch_limit = 64;
  /// Max microseconds the dispatcher waits for a batch to fill once the
  /// first request arrives. 0 = drain whatever is queued immediately.
  int64_t batch_window_us = 100;
  /// Total entries in the substitute-response cache; 0 disables caching.
  size_t cache_capacity = 65536;
  /// Queued-request bound; Submit sheds load beyond it.
  size_t max_queue = 8192;
  /// Default per-request deadline applied at admission when the request
  /// has none; 0 = no deadline.
  int64_t default_deadline_us = 0;
  /// Optional worker pool for intra-batch fan-out. nullptr = the
  /// dispatcher thread answers the whole batch itself (right for small
  /// batches and single-core hosts; also makes cache traffic
  /// deterministic, which the micro-bench relies on).
  ThreadPool* pool = nullptr;
  /// Batch size at or above which the pool (when given) is engaged.
  size_t pool_fanout_threshold = 32;
  /// Queue backlog (requests still waiting after a batch is taken) at or
  /// above which the engine serves brownout answers: `subs` truncated to
  /// top-1, cache bypassed. 0 disables brownout.
  size_t brownout_watermark = 0;
  /// Reject requests at admission that would certainly miss their
  /// deadline (already expired, or backlog × EWMA service time says so)
  /// instead of queueing work nobody will wait for.
  bool deadline_shed = true;
};

/// \brief Point-in-time engine counters (for the `stats` control verb).
struct QueryEngineStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t admission_rejected = 0;
  uint64_t deadline_expired = 0;
  /// Requests rejected at admission because the deadline was unreachable.
  uint64_t deadline_shed = 0;
  /// Degraded (brownout) answers served.
  uint64_t brownouts = 0;
  uint64_t index_reloads = 0;
};

/// \brief Concurrent serving engine over an atomically swappable index.
class QueryEngine {
 public:
  QueryEngine(std::shared_ptr<const ServingIndex> index,
              QueryEngineOptions options = QueryEngineOptions());

  /// Drains the queue (every pending future is fulfilled) and joins the
  /// dispatcher.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Enqueues a request. The future always becomes ready — with the
  /// answer, a deadline/shutdown Cancelled error, or an immediate
  /// queue-full OutOfRange error.
  std::future<Response> Submit(Request request);

  /// Submit + wait, for callers without pipelining.
  Response SubmitAndWait(Request request);

  /// Atomically replaces the served index (and starts a fresh cache).
  /// In-flight batches finish on the snapshot they started with.
  /// Failpoint `serve.reload_swap` can inject an error before the swap.
  Status SwapIndex(std::shared_ptr<const ServingIndex> index);

  /// The currently served index snapshot.
  std::shared_ptr<const ServingIndex> index() const;

  /// Counters since construction (reads the engine's own tallies, not the
  /// global registry, so concurrent engines don't bleed together).
  QueryEngineStats Stats() const;

  /// Stops accepting requests, answers everything queued, joins the
  /// dispatcher. Idempotent; the destructor calls it.
  void Shutdown();

  /// Pauses (true) or resumes (false) the dispatcher between batches.
  /// Submissions still queue while paused. Exists so tests can build a
  /// deterministic backlog and observe brownout/shed behaviour without
  /// racing the dispatcher.
  void SetPaused(bool paused);

  const QueryEngineOptions& options() const { return options_; }

 private:
  /// One index snapshot plus the cache scoped to it.
  struct State {
    std::shared_ptr<const ServingIndex> index;
    std::shared_ptr<LruCache> cache;
  };

  struct Pending {
    Request request;
    std::promise<Response> promise;
    /// Admission timestamp; serve.latency_us measures from here, so the
    /// histogram includes queueing delay, not just service time.
    int64_t enqueue_ns = 0;
  };

  void DispatcherLoop();
  /// Answers `pending` against `state`, fulfilling its promise. Under
  /// `brownout`, substitutes are truncated to top-1 and the cache is
  /// bypassed entirely.
  void AnswerOne(const State& state, Pending* pending, bool brownout);

  QueryEngineOptions options_;

  // Global instruments, resolved once (names in OBSERVABILITY.md).
  obs::Counter* requests_total_;
  obs::Counter* batches_total_;
  obs::Counter* cache_hit_;
  obs::Counter* cache_miss_;
  obs::Counter* admission_rejected_;
  obs::Counter* deadline_expired_;
  obs::Counter* deadline_shed_;
  obs::Counter* brownout_;
  obs::Counter* index_reloads_;
  obs::Histogram* batch_size_hist_;
  obs::Histogram* latency_us_hist_;
  obs::Gauge* qps_gauge_;

  // Engine-local tallies behind Stats(); the dispatcher and Submit
  // maintain them with relaxed atomics.
  std::atomic<uint64_t> n_requests_{0};
  std::atomic<uint64_t> n_batches_{0};
  std::atomic<uint64_t> n_cache_hits_{0};
  std::atomic<uint64_t> n_cache_misses_{0};
  std::atomic<uint64_t> n_admission_rejected_{0};
  std::atomic<uint64_t> n_deadline_expired_{0};
  std::atomic<uint64_t> n_deadline_shed_{0};
  std::atomic<uint64_t> n_brownouts_{0};
  std::atomic<uint64_t> n_index_reloads_{0};

  // EWMA of per-request service time (ns), maintained by the dispatcher
  // after each batch; Submit reads it for deadline-aware shedding.
  std::atomic<int64_t> ewma_service_ns_{0};

  std::shared_ptr<const State> LoadState() const;

  // Published {index, cache} snapshot. Guarded by its own mutex rather
  // than std::atomic<shared_ptr>: the critical section is a pointer
  // copy, and libstdc++ 12's _Sp_atomic unlocks its spinlock with
  // relaxed ordering, which TSan (correctly, per the memory model)
  // reports as a race between store() and load().
  mutable std::mutex state_mu_;
  std::shared_ptr<const State> state_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool shutting_down_ = false;
  bool paused_ = false;  // guarded by mu_; see SetPaused

  // Held across the dispatcher join so concurrent Shutdown callers
  // (e.g. explicit Shutdown racing the destructor) never join twice.
  std::mutex shutdown_mu_;

  std::thread dispatcher_;
};

/// \brief Absolute steady-clock "now" in nanoseconds — the clock domain
/// of Request::deadline_ns and Response::done_ns.
int64_t SteadyNowNanos();

}  // namespace serve
}  // namespace prefcover

#endif  // PREFCOVER_SERVE_QUERY_ENGINE_H_
