// Resilient line-protocol client for the serve TCP transport.
//
// The CLI's original client was `nc`. That is fine on a healthy
// loopback and useless against a real network, where connections die
// mid-response, servers restart, and overload turns into timeouts. This
// client wraps one logical connection with the standard reliability
// stack:
//
//   - per-request timeout (poll-bounded reads; a stuck server costs
//     `request_timeout_ms`, not forever),
//   - reconnect + retry with exponential backoff and FULL jitter
//     (deterministically seeded, so chaos runs replay),
//   - retries restricted to idempotent verbs — `reload`/`quit`/
//     `shutdown` are never resent, because "did it apply?" is unknowable
//     after a mid-request connection loss,
//   - a consecutive-failure circuit breaker: after `breaker_threshold`
//     straight failures the client fast-fails (FailedPrecondition)
//     without touching the network for `breaker_cooldown_ms`, then lets
//     ONE half-open probe through; success closes the breaker, failure
//     re-opens it.
//
// Breaker state machine:
//
//       closed --(threshold consecutive failures)--> open
//       open   --(cooldown elapsed)-->                half-open
//       half-open --(probe succeeds)-->               closed
//       half-open --(probe fails)-->                  open
//
// Every decision is observable: per-client ClientCounters plus global
// `client.*` metrics (catalog in OBSERVABILITY.md).
//
// POSIX-only, like the rest of the TCP transport.

#ifndef PREFCOVER_SERVE_CLIENT_H_
#define PREFCOVER_SERVE_CLIENT_H_

#if defined(__unix__) || defined(__APPLE__)

#include <cstdint>
#include <functional>
#include <string>

#include "obs/metrics.h"
#include "serve/transport.h"
#include "util/status.h"

namespace prefcover {
namespace serve {

/// \brief Client knobs. The defaults suit a loopback chaos soak: quick
/// retries, bounded patience.
struct ResilientClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// TCP connect timeout per attempt.
  int connect_timeout_ms = 1000;
  /// Budget per attempt for the full response (first byte to last line).
  int request_timeout_ms = 2000;
  /// Total tries per Call (first attempt + retries). Non-idempotent
  /// requests get exactly one try regardless.
  int max_attempts = 5;
  /// Backoff before retry k (1-based) is uniform in
  /// [0, min(backoff_max_ms, backoff_initial_ms << (k-1))] — "full
  /// jitter", which desynchronizes a thundering herd of retriers.
  int backoff_initial_ms = 10;
  int backoff_max_ms = 1000;
  /// Seed for the jitter RNG; same seed + same outcome sequence = same
  /// sleeps.
  uint64_t jitter_seed = 1;
  /// Consecutive failures that trip the breaker open. 0 disables the
  /// breaker.
  int breaker_threshold = 8;
  /// How long the breaker stays open before admitting one probe.
  int breaker_cooldown_ms = 500;
  /// Test seam: replaces real sleeping (backoff + cooldown waits).
  /// nullptr = std::this_thread::sleep_for.
  std::function<void(int)> sleep_ms_fn;
  /// Test seam: replaces the monotonic-ms clock behind breaker cooldown
  /// bookkeeping. nullptr = steady_clock.
  std::function<int64_t()> now_ms_fn;
};

/// \brief Per-client tallies (also mirrored into global `client.*`
/// counters).
struct ClientCounters {
  uint64_t requests = 0;        ///< Call() invocations.
  uint64_t attempts = 0;        ///< Wire attempts (>= requests).
  uint64_t retries = 0;         ///< Attempts after the first.
  uint64_t reconnects = 0;      ///< Successful (re)connects.
  uint64_t timeouts = 0;        ///< Attempts lost to the request timeout.
  uint64_t failures = 0;        ///< Calls that ultimately failed.
  uint64_t breaker_opens = 0;   ///< closed/half-open -> open transitions.
  uint64_t breaker_probes = 0;  ///< Half-open probes admitted.
  uint64_t breaker_fastfails = 0;  ///< Calls rejected while open.
};

/// \brief One logical connection with timeouts, retry/backoff, reconnect
/// and a circuit breaker. Not thread-safe: one client per thread (each
/// gets its own breaker and backoff state, which is what you want in a
/// load generator anyway).
class ResilientClient {
 public:
  explicit ResilientClient(ResilientClientOptions options);
  ~ResilientClient();

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Sends `request_line` (no trailing newline) and returns the response.
  /// Single-line responses come back without the newline; `metrics`
  /// returns the full multi-line exposition through `# EOF`. Retries —
  /// idempotent verbs only — hide transient faults; the returned error is
  /// the last attempt's (or FailedPrecondition when the breaker is open).
  Result<std::string> Call(const std::string& request_line);

  /// True when a mid-request connection loss makes the request safe to
  /// resend: queries and read-only control verbs. `reload`, `quit` and
  /// `shutdown` mutate server state and are never retried.
  static bool IsIdempotent(const std::string& request_line);

  const ClientCounters& counters() const { return counters_; }

  /// Breaker introspection for tests and harness assertions.
  bool breaker_open() const;

  /// Drops the current connection (next Call reconnects). Idempotent.
  void Disconnect();

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  Result<std::string> CallOnce(const std::string& request_line,
                               bool is_metrics);
  Status EnsureConnected();
  void SleepMs(int ms);
  int64_t NowMs() const;
  int BackoffMs(int retry_index);
  void OnOutcome(bool success);

  ResilientClientOptions options_;
  int fd_ = -1;
  LineChunker chunker_;
  uint64_t rng_state_;

  BreakerState breaker_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int64_t breaker_opened_ms_ = 0;

  ClientCounters counters_;

  // Global instruments (names in OBSERVABILITY.md).
  obs::Counter* m_requests_;
  obs::Counter* m_retries_;
  obs::Counter* m_reconnects_;
  obs::Counter* m_timeouts_;
  obs::Counter* m_failures_;
  obs::Counter* m_breaker_opens_;
  obs::Counter* m_breaker_probes_;
};

}  // namespace serve
}  // namespace prefcover

#endif  // __unix__ || __APPLE__

#endif  // PREFCOVER_SERVE_CLIENT_H_
