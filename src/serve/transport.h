// Byte-level TCP transport for the serve line protocol.
//
// Extracted from the ad-hoc read/WriteFully code that used to live in
// tools/prefcover_cli.cpp so that (a) the server loop, the resilient
// client and the chaos harness all share one implementation, and (b)
// every socket syscall routes through util/net_failpoint, making the
// whole stack fault-injectable from PREFCOVER_FAILPOINTS.
//
// Three layers, smallest first:
//
//   LineChunker     incremental newline framing over arbitrary chunk
//                   boundaries, with a hard per-line byte bound: an
//                   over-long line is truncated and flagged (the caller
//                   answers with a protocol error) while memory stays
//                   bounded no matter what the peer sends.
//   ReadSome / WriteFully / PollReadable
//                   EINTR-retrying syscall wrappers (fault-injected).
//   ListenTcp / AcceptClient / ConnectTcp
//                   loopback listener setup, a transient-tolerant accept
//                   (EINTR and ECONNABORTED-class errors are retried, not
//                   treated as fatal), and a timeout-bounded connect.
//
// All of it is POSIX-only, like the CLI's --port transport.

#ifndef PREFCOVER_SERVE_TRANSPORT_H_
#define PREFCOVER_SERVE_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "util/status.h"

namespace prefcover {
namespace serve {

/// \brief Default per-line byte bound of the serve protocol. A `batch`
/// query over the full 1M-node catalog fits comfortably; an adversarial
/// never-ending line does not.
inline constexpr size_t kMaxRequestLineBytes = 1 << 20;

/// \brief Incremental newline framing with a per-line byte bound.
///
/// Append() bytes as they arrive from the socket (any chunking — one
/// byte at a time, everything at once, arbitrary splits — yields the
/// identical line sequence); Next() pops completed lines. A line longer
/// than the bound is kept only up to the bound, the rest is discarded,
/// and the line is delivered with `overlong` set once its terminating
/// newline arrives — buffered memory never exceeds the bound plus one
/// socket read.
class LineChunker {
 public:
  struct Line {
    std::string text;
    /// True when the line exceeded the byte bound; `text` holds the
    /// retained prefix.
    bool overlong = false;
  };

  explicit LineChunker(size_t max_line_bytes = kMaxRequestLineBytes)
      : max_line_bytes_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

  /// Buffers `data`, completing any lines it terminates.
  void Append(std::string_view data);

  /// Pops the next completed line; false when none is buffered.
  bool Next(Line* line);

  /// Bytes held for the in-progress (not yet newline-terminated) line.
  size_t partial_bytes() const { return partial_.size(); }

 private:
  size_t max_line_bytes_;
  std::string partial_;
  bool partial_overlong_ = false;
  std::deque<Line> ready_;
};

// --- Request-id multiplexing ---------------------------------------------
//
// A plain line-protocol connection carries ONE request/response exchange
// at a time: responses carry no identity, so matching is purely
// positional, and two logical requesters sharing a connection would
// interleave-corrupt each other. ResilientClient respects this by
// construction (one Call at a time per client), and the distributed
// coordinator gives every worker its own connection — but the constraint
// used to be implicit. It is now explicit, tested
// (tests/serve/transport_test.cc), and escapable: requests prefixed with
// a `@<id> ` tag are answered with the same tag (ServeLineSessionLoop
// strips the tag before handling and echoes it on the response line), so
// multiple in-flight requests on one connection can be matched by id
// rather than by position. Tagged exchanges must expect single-line
// responses (the multi-line `metrics` exposition has no per-line tag).

/// \brief Formats `payload` as a tagged request line (no newline).
std::string FormatTaggedLine(uint64_t id, std::string_view payload);

/// \brief Splits a `@<id> <payload>` tagged line. Returns false (leaving
/// the outputs untouched) when `line` carries no well-formed tag — such a
/// line is a plain positional-protocol line, not an error.
bool ParseTaggedLine(std::string_view line, uint64_t* id,
                     std::string_view* payload);

#if defined(__unix__) || defined(__APPLE__)

/// \brief Multiple in-flight request/response exchanges over one
/// connection, matched by request id instead of position.
///
/// Send() assigns a fresh id and writes the tagged line; Await() blocks
/// until the response with that id arrives, parking any other responses
/// it reads for their own Await calls — so responses may be awaited in
/// any order relative to sends. Not thread-safe: one owner drives the
/// connection (the point is pipelining, not shared-socket concurrency).
/// Borrows `fd`; the caller closes it.
class MultiplexedConnection {
 public:
  explicit MultiplexedConnection(int fd,
                                 size_t max_line_bytes = kMaxRequestLineBytes)
      : fd_(fd), chunker_(max_line_bytes) {}

  /// Writes `payload` tagged with a fresh id; returns the id to Await.
  Result<uint64_t> Send(const std::string& payload);

  /// The response tagged `id`. Reads (parking other ids) until it
  /// arrives; IOError on timeout, Corruption on an untagged or overlong
  /// response line, NotFound for an id never issued (or already awaited).
  Result<std::string> Await(uint64_t id, int timeout_ms);

  /// Send + Await: a serial call through the tagged framing.
  Result<std::string> Call(const std::string& payload, int timeout_ms);

  /// Responses read but not yet awaited.
  size_t parked() const { return parked_.size(); }

 private:
  int fd_;
  LineChunker chunker_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::string> parked_;
  std::unordered_set<uint64_t> outstanding_;  // sent, not yet awaited
};

/// \brief Installs SIG_IGN for SIGPIPE (idempotent). A client vanishing
/// mid-write then surfaces as an EPIPE write error instead of killing
/// the process — every server entry point calls this before serving.
void IgnoreSigpipe();

/// \brief Opens a loopback listener on `port` (0 picks an ephemeral
/// port; read it back with LocalPort). SO_REUSEADDR is set so chaos
/// restarts can rebind immediately.
Result<int> ListenTcp(uint16_t port, int backlog = 16);

/// \brief The port a listener is bound to (for ListenTcp(0)).
Result<uint16_t> LocalPort(int listener);

/// \brief Blocking accept that retries EINTR and transient failures
/// (ECONNABORTED, EMFILE/ENFILE, ENOBUFS/ENOMEM — and injected
/// `net.accept` faults, which surface as ECONNABORTED). Transient
/// retries are counted in `serve.accept_transient` and backed off 1ms so
/// a persistent fault cannot hot-spin the loop. Returns an error only
/// for programming-error errnos (EBADF, EINVAL, ENOTSOCK, ...), on
/// which the serve loop should exit rather than spin.
Result<int> AcceptClient(int listener);

/// \brief Timeout-bounded connect to `host:port` (numeric IPv4 only —
/// the serving stack is loopback/LAN plumbing, not a resolver).
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms);

/// \brief Reads up to `capacity` bytes, retrying EINTR. 0 = clean EOF.
/// Fault-injected via `net.read` / `net.read.short` / `net.conn_kill`.
Result<size_t> ReadSome(int fd, char* buffer, size_t capacity);

/// \brief Writes the whole buffer, retrying EINTR and short writes. A
/// short write on a TCP socket is routine under backpressure; dropping
/// the tail would desynchronize the line protocol. Fault-injected via
/// `net.write` / `net.write.short` / `net.conn_kill`.
Status WriteFully(int fd, const char* data, size_t size);

/// \brief Waits until `fd` is readable (or hung up). False on timeout;
/// an error Status on poll failure. timeout_ms < 0 waits forever.
Result<bool> PollReadable(int fd, int timeout_ms);

#endif  // __unix__ || __APPLE__

}  // namespace serve
}  // namespace prefcover

#endif  // PREFCOVER_SERVE_TRANSPORT_H_
