#include "serve/protocol.h"

#include <cstdio>

#include "util/string_util.h"

namespace prefcover {
namespace serve {

namespace {

Response ErrorResponse(Status status) {
  Response response;
  response.line = FormatErrorLine(status);
  response.status = std::move(status);
  return response;
}

}  // namespace

std::string_view QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kCovered:
      return "covered";
    case QueryType::kSubstitutes:
      return "subs";
    case QueryType::kCoverageAtK:
      return "coverk";
    case QueryType::kBatchCovered:
      return "batch";
  }
  return "unknown";
}

std::string FormatProbability(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatErrorLine(const Status& status) {
  return std::string("ERR ") +
         std::string(StatusCodeToString(status.code())) + " " +
         status.message();
}

Result<Request> ParseRequest(std::string_view line) {
  std::string_view trimmed = TrimWhitespace(line);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty request");
  }
  std::vector<std::string> fields = SplitString(trimmed, ' ');
  // SplitString keeps empty fields from repeated separators; the grammar
  // is single-space, so any empty field is a malformed request.
  for (const std::string& field : fields) {
    if (field.empty()) {
      return Status::InvalidArgument("malformed request (empty field)");
    }
  }
  const std::string& verb = fields[0];
  Request request;
  if (verb == "covered") {
    if (fields.size() != 2) {
      return Status::InvalidArgument("usage: covered <id>");
    }
    request.type = QueryType::kCovered;
    PREFCOVER_ASSIGN_OR_RETURN(request.v, ParseUint32(fields[1]));
    return request;
  }
  if (verb == "subs") {
    if (fields.size() != 3) {
      return Status::InvalidArgument("usage: subs <id> <j>");
    }
    request.type = QueryType::kSubstitutes;
    PREFCOVER_ASSIGN_OR_RETURN(request.v, ParseUint32(fields[1]));
    PREFCOVER_ASSIGN_OR_RETURN(request.top_j, ParseUint32(fields[2]));
    return request;
  }
  if (verb == "coverk") {
    if (fields.size() != 2) {
      return Status::InvalidArgument("usage: coverk <k>");
    }
    request.type = QueryType::kCoverageAtK;
    PREFCOVER_ASSIGN_OR_RETURN(auto k64, ParseInt64(fields[1]));
    if (k64 < 0) {
      return Status::InvalidArgument("coverk: k must be >= 0");
    }
    request.coverage_k = static_cast<uint64_t>(k64);
    return request;
  }
  if (verb == "batch") {
    if (fields.size() < 2) {
      return Status::InvalidArgument("usage: batch <id> [<id> ...]");
    }
    request.type = QueryType::kBatchCovered;
    request.batch.reserve(fields.size() - 1);
    for (size_t i = 1; i < fields.size(); ++i) {
      PREFCOVER_ASSIGN_OR_RETURN(NodeId v, ParseUint32(fields[i]));
      request.batch.push_back(v);
    }
    return request;
  }
  return Status::InvalidArgument("unknown request verb '" + verb + "'");
}

Response AnswerOnIndex(const ServingIndex& index, const Request& request) {
  const size_t n = index.NumNodes();
  Response response;
  switch (request.type) {
    case QueryType::kCovered: {
      if (request.v >= n) {
        return ErrorResponse(Status::NotFound(
            "item " + std::to_string(request.v) + " not in the catalog"));
      }
      response.line = std::string("OK covered ") +
                      (index.Covered(request.v) ? "1" : "0") + " " +
                      FormatProbability(index.CoverageOf(request.v));
      return response;
    }
    case QueryType::kSubstitutes: {
      if (request.v >= n) {
        return ErrorResponse(Status::NotFound(
            "item " + std::to_string(request.v) + " not in the catalog"));
      }
      AdjacencyView subs = index.SubstitutesOf(request.v);
      const size_t count =
          std::min<size_t>(request.top_j, subs.size());
      response.line = "OK subs " + std::to_string(count);
      for (size_t i = 0; i < count; ++i) {
        response.line += ' ';
        response.line += std::to_string(subs.nodes[i]);
        response.line += ':';
        response.line += FormatProbability(subs.weights[i]);
      }
      return response;
    }
    case QueryType::kCoverageAtK: {
      if (request.coverage_k > index.NumRetained()) {
        return ErrorResponse(Status::OutOfRange(
            "coverk: prefix length " + std::to_string(request.coverage_k) +
            " exceeds the retained-set size " +
            std::to_string(index.NumRetained())));
      }
      response.line =
          "OK coverk " +
          FormatProbability(
              index.CoverageAtK(static_cast<size_t>(request.coverage_k)));
      return response;
    }
    case QueryType::kBatchCovered: {
      for (NodeId v : request.batch) {
        if (v >= n) {
          return ErrorResponse(Status::NotFound(
              "item " + std::to_string(v) + " not in the catalog"));
        }
      }
      response.line = "OK batch " + std::to_string(request.batch.size()) + " ";
      for (NodeId v : request.batch) {
        response.line += index.Covered(v) ? '1' : '0';
      }
      return response;
    }
  }
  return ErrorResponse(Status::Internal("unhandled query type"));
}

}  // namespace serve
}  // namespace prefcover
