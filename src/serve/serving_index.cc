#include "serve/serving_index.h"

#include <algorithm>
#include <cstring>

#include "core/checkpoint.h"
#include "core/cover_function.h"
#include "core/cover_state.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace prefcover {
namespace serve {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'S', 'I', 'D', 'X', '0', '1'};
constexpr uint32_t kVersion = 1;
// magic + version + variant + top_m + graph digest + n + k.
constexpr size_t kHeaderSize = 8 + 4 + 1 + 4 + 8 + 8 + 8;
constexpr size_t kFooterSize = 4;  // CRC-32

void AppendBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void Append(std::string* out, T value) {
  AppendBytes(out, &value, sizeof(T));
}

template <typename T>
void AppendVector(std::string* out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (!values.empty()) {
    AppendBytes(out, values.data(), values.size() * sizeof(T));
  }
}

template <typename T>
T ReadScalarAt(std::string_view data, size_t offset) {
  T value;
  std::memcpy(&value, data.data() + offset, sizeof(T));
  return value;
}

template <typename T>
void ReadVectorAt(std::string_view data, size_t offset, size_t count,
                  std::vector<T>* out) {
  out->resize(count);
  if (count != 0) {
    std::memcpy(out->data(), data.data() + offset, count * sizeof(T));
  }
}

}  // namespace

Result<ServingIndex> ServingIndex::Build(const PreferenceGraph& graph,
                                         const Solution& solution,
                                         const ServingIndexOptions& options) {
  if (solution.cover_after_prefix.size() != solution.items.size()) {
    return Status::InvalidArgument(
        "solution cover_after_prefix does not parallel items; cannot "
        "derive coverage-at-k prefix sums");
  }
  obs::Span span("serve.index_build", "serve");
  span.Arg("n", static_cast<uint64_t>(graph.NumNodes()));
  span.Arg("k", static_cast<uint64_t>(solution.items.size()));

  ServingIndex index;
  index.variant_ = solution.variant;
  index.top_m_ = options.top_m;
  index.graph_digest_ = GraphDigest(graph);
  index.items_ = solution.items;
  index.cover_at_k_.reserve(solution.items.size() + 1);
  index.cover_at_k_.push_back(0.0);
  index.cover_at_k_.insert(index.cover_at_k_.end(),
                           solution.cover_after_prefix.begin(),
                           solution.cover_after_prefix.end());

  const size_t n = graph.NumNodes();
  Bitset retained(n);
  for (NodeId v : index.items_) {
    if (v >= n) {
      return Status::InvalidArgument("solution item out of range: " +
                                     std::to_string(v));
    }
    if (retained.Test(v)) {
      return Status::InvalidArgument("solution item duplicated: " +
                                     std::to_string(v));
    }
    retained.Set(v);
  }

  // Exact per-item coverage from the full adjacency — the serving answer
  // for CoverageOf must be byte-identical to a direct CoverOfItem call.
  index.item_coverage_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    index.item_coverage_[v] = CoverOfItem(graph, retained, v,
                                          solution.variant);
  }

  // Substitute CSR: retained out-neighbors, strongest first, top-m.
  index.sub_offsets_.assign(n + 1, 0);
  std::vector<std::pair<double, NodeId>> candidates;
  for (NodeId v = 0; v < n; ++v) {
    index.sub_offsets_[v] = index.sub_targets_.size();
    if (retained.Test(v)) continue;  // a retained item is its own match
    candidates.clear();
    AdjacencyView out = graph.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      if (retained.Test(out.nodes[i])) {
        candidates.emplace_back(out.weights[i], out.nodes[i]);
      }
    }
    // Strongest alternative first; equal weights break to the smaller id
    // so emission is deterministic.
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const size_t keep = std::min(options.top_m, candidates.size());
    for (size_t i = 0; i < keep; ++i) {
      index.sub_targets_.push_back(candidates[i].second);
      index.sub_weights_.push_back(candidates[i].first);
    }
  }
  index.sub_offsets_[n] = index.sub_targets_.size();
  PREFCOVER_RETURN_NOT_OK(index.FinishAndValidate());
  return index;
}

Result<ServingIndex> ServingIndex::BuildFromRetained(
    const PreferenceGraph& graph, const std::vector<NodeId>& retained,
    Variant variant, const ServingIndexOptions& options) {
  Solution solution;
  solution.variant = variant;
  solution.items = retained;
  solution.algorithm = "maintainer";
  CoverState state(&graph, variant);
  solution.cover_after_prefix.reserve(retained.size());
  for (NodeId v : retained) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("retained item out of range: " +
                                     std::to_string(v));
    }
    if (state.IsRetained(v)) {
      return Status::InvalidArgument("retained item duplicated: " +
                                     std::to_string(v));
    }
    state.AddNode(v);
    solution.cover_after_prefix.push_back(state.cover());
  }
  solution.cover = state.cover();
  return Build(graph, solution, options);
}

size_t ServingIndex::MemoryBytes() const {
  return items_.size() * sizeof(NodeId) +
         cover_at_k_.size() * sizeof(double) +
         item_coverage_.size() * sizeof(double) +
         sub_offsets_.size() * sizeof(uint64_t) +
         sub_targets_.size() * sizeof(NodeId) +
         sub_weights_.size() * sizeof(double) +
         (retained_.size() + 7) / 8;
}

Status ServingIndex::FinishAndValidate() {
  const size_t n = item_coverage_.size();
  if (sub_offsets_.size() != n + 1) {
    return Status::Corruption("serving index: offsets array size mismatch");
  }
  if (cover_at_k_.size() != items_.size() + 1) {
    return Status::Corruption(
        "serving index: coverage-at-k array does not parallel items");
  }
  if (items_.size() > n) {
    return Status::Corruption("serving index: more items than nodes");
  }
  if (sub_offsets_[0] != 0 || sub_offsets_[n] != sub_targets_.size() ||
      sub_targets_.size() != sub_weights_.size()) {
    return Status::Corruption("serving index: substitute CSR inconsistent");
  }
  for (size_t v = 0; v < n; ++v) {
    if (sub_offsets_[v] > sub_offsets_[v + 1]) {
      return Status::Corruption(
          "serving index: substitute offsets not monotone");
    }
    if (sub_offsets_[v + 1] - sub_offsets_[v] > top_m_) {
      return Status::Corruption(
          "serving index: substitute list longer than top_m");
    }
  }
  for (NodeId u : sub_targets_) {
    if (u >= n) {
      return Status::Corruption("serving index: substitute target " +
                                std::to_string(u) + " out of range");
    }
  }
  retained_ = Bitset(n);
  for (NodeId v : items_) {
    if (v >= n) {
      return Status::Corruption("serving index: item " + std::to_string(v) +
                                " out of range");
    }
    if (retained_.Test(v)) {
      return Status::Corruption("serving index: item " + std::to_string(v) +
                                " duplicated");
    }
    retained_.Set(v);
  }
  return Status::OK();
}

std::string ServingIndex::Serialize() const {
  const uint64_t n = item_coverage_.size();
  const uint64_t k = items_.size();
  const uint64_t m = sub_targets_.size();
  std::string payload;
  payload.reserve(kHeaderSize + k * 4 + (k + 1) * 8 + n * 8 + (n + 1) * 8 +
                  m * 12 + kFooterSize);
  payload.append(kMagic, sizeof(kMagic));
  Append<uint32_t>(&payload, kVersion);
  Append<uint8_t>(&payload, variant_ == Variant::kNormalized ? 1 : 0);
  Append<uint32_t>(&payload, static_cast<uint32_t>(top_m_));
  Append<uint64_t>(&payload, graph_digest_);
  Append<uint64_t>(&payload, n);
  Append<uint64_t>(&payload, k);
  AppendVector(&payload, items_);
  AppendVector(&payload, cover_at_k_);
  AppendVector(&payload, item_coverage_);
  AppendVector(&payload, sub_offsets_);
  AppendVector(&payload, sub_targets_);
  AppendVector(&payload, sub_weights_);
  Append<uint32_t>(&payload, Crc32(payload.data(), payload.size()));
  return payload;
}

Status ServingIndex::Save(const std::string& path) const {
  PREFCOVER_FAILPOINT_STATUS("serve.index_save");
  return WriteFileAtomic(path, Serialize());
}

Result<ServingIndex> ServingIndex::Deserialize(std::string_view data) {
  if (data.size() < kHeaderSize + kFooterSize) {
    return Status::Corruption("serving index truncated");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a prefcover serving index (bad magic)");
  }
  const size_t body_size = data.size() - kFooterSize;
  const uint32_t stored_crc = ReadScalarAt<uint32_t>(data, body_size);
  const uint32_t actual_crc = Crc32(data.data(), body_size);
  if (stored_crc != actual_crc) {
    return Status::Corruption("serving index CRC mismatch");
  }
  const uint32_t version = ReadScalarAt<uint32_t>(data, 8);
  if (version != kVersion) {
    return Status::Corruption("unsupported serving index version " +
                              std::to_string(version));
  }
  const uint8_t variant_byte = ReadScalarAt<uint8_t>(data, 12);
  if (variant_byte > 1) {
    return Status::Corruption("serving index variant byte invalid: " +
                              std::to_string(variant_byte));
  }
  ServingIndex index;
  index.variant_ =
      variant_byte == 1 ? Variant::kNormalized : Variant::kIndependent;
  index.top_m_ = ReadScalarAt<uint32_t>(data, 13);
  index.graph_digest_ = ReadScalarAt<uint64_t>(data, 17);
  const uint64_t n = ReadScalarAt<uint64_t>(data, 25);
  const uint64_t k = ReadScalarAt<uint64_t>(data, 33);
  if (k > n || n > 0xFFFFFFFFull) {
    return Status::Corruption("serving index header sizes implausible");
  }
  // The fixed-size arrays determine where the substitute CSR starts; the
  // edge count m then has to account for every remaining byte exactly.
  size_t offset = kHeaderSize;
  const size_t fixed = k * 4 + (k + 1) * 8 + n * 8 + (n + 1) * 8;
  if (body_size < kHeaderSize + fixed) {
    return Status::Corruption("serving index truncated inside arrays");
  }
  const size_t edge_bytes = body_size - kHeaderSize - fixed;
  if (edge_bytes % 12 != 0) {
    return Status::Corruption(
        "serving index edge payload not a whole number of entries");
  }
  const size_t m = edge_bytes / 12;
  ReadVectorAt(data, offset, k, &index.items_);
  offset += k * 4;
  ReadVectorAt(data, offset, k + 1, &index.cover_at_k_);
  offset += (k + 1) * 8;
  ReadVectorAt(data, offset, n, &index.item_coverage_);
  offset += n * 8;
  ReadVectorAt(data, offset, n + 1, &index.sub_offsets_);
  offset += (n + 1) * 8;
  ReadVectorAt(data, offset, m, &index.sub_targets_);
  offset += m * 4;
  ReadVectorAt(data, offset, m, &index.sub_weights_);
  PREFCOVER_RETURN_NOT_OK(index.FinishAndValidate());
  return index;
}

Result<ServingIndex> ServingIndex::Load(const std::string& path,
                                        uint64_t expected_graph_digest) {
  PREFCOVER_FAILPOINT_STATUS("serve.index_load");
  obs::Span span("serve.index_load", "serve");
  PREFCOVER_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  auto index = Deserialize(data);
  if (!index.ok()) {
    return Status(index.status().code(),
                  index.status().message() + ": " + path);
  }
  if (expected_graph_digest != 0 &&
      index->graph_digest() != expected_graph_digest) {
    return Status::FailedPrecondition(
        "serving index " + path +
        " was built from a different graph (digest mismatch); re-solve "
        "and rebuild the index");
  }
  return index;
}

}  // namespace serve
}  // namespace prefcover
