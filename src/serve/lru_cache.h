// Sharded, bounded LRU cache for hot substitute lookups.
//
// The serving hot path is read-mostly and Zipf-skewed: a few thousand
// head items absorb most of the traffic, so caching their formatted
// responses removes the per-request formatting cost entirely. The cache
// is sharded by key hash — each shard holds its own mutex, hash map and
// recency list — so concurrent batch workers touching different shards
// never contend. Capacity is bounded per shard (total / shards, floor 1);
// on overflow the shard's least-recently-used entry is evicted.
//
// Consistency with hot reload: the QueryEngine never clears this cache —
// it allocates a FRESH cache alongside every swapped-in ServingIndex and
// publishes {index, cache} as one RCU snapshot, so a cached line can
// never outlive the index whose answers it memoizes.

#ifndef PREFCOVER_SERVE_LRU_CACHE_H_
#define PREFCOVER_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace prefcover {
namespace serve {

/// \brief Thread-safe bounded LRU mapping uint64 keys to strings.
class LruCache {
 public:
  /// `capacity` entries total across `shards` shards. capacity == 0
  /// disables the cache (Get always misses, Put is a no-op).
  explicit LruCache(size_t capacity, size_t shards = 8);

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Copies the cached value into `*value` and marks the entry
  /// most-recently-used. False on miss.
  bool Get(uint64_t key, std::string* value);

  /// Inserts (or refreshes) the entry, evicting the shard's LRU tail when
  /// full.
  void Put(uint64_t key, std::string value);

  bool enabled() const { return !shards_.empty(); }

  /// Entries currently held (sums shard sizes under their locks).
  size_t Size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Most-recently-used at the front.
    std::list<std::pair<uint64_t, std::string>> order;
    std::unordered_map<
        uint64_t, std::list<std::pair<uint64_t, std::string>>::iterator>
        map;
  };

  Shard& ShardFor(uint64_t key) {
    // Multiplicative mix so sequential node ids spread across shards; the
    // high 32 bits are the best-mixed, and masking (shard count is a power
    // of two) stays well-defined even for a single shard, where a
    // shift-by-width would be UB.
    return shards_[((key * 0x9E3779B97F4A7C15ULL) >> 32) & shard_mask_];
  }

  size_t per_shard_capacity_ = 0;
  uint64_t shard_mask_ = 0;
  std::vector<Shard> shards_;
};

inline LruCache::LruCache(size_t capacity, size_t shards) {
  if (capacity == 0) return;
  // Round the shard count down to a power of two so ShardFor is a mask.
  size_t pow2 = 1;
  while (pow2 * 2 <= shards) pow2 *= 2;
  if (pow2 > capacity) pow2 = 1;
  shard_mask_ = pow2 - 1;
  shards_ = std::vector<Shard>(pow2);
  per_shard_capacity_ = (capacity + pow2 - 1) / pow2;
}

inline bool LruCache::Get(uint64_t key, std::string* value) {
  if (shards_.empty()) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  *value = it->second->second;
  return true;
}

inline void LruCache::Put(uint64_t key, std::string value) {
  if (shards_.empty()) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = std::move(value);
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  shard.order.emplace_front(key, std::move(value));
  shard.map[key] = shard.order.begin();
  if (shard.order.size() > per_shard_capacity_) {
    shard.map.erase(shard.order.back().first);
    shard.order.pop_back();
  }
}

inline size_t LruCache::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.order.size();
  }
  return total;
}

}  // namespace serve
}  // namespace prefcover

#endif  // PREFCOVER_SERVE_LRU_CACHE_H_
