// The line-oriented request/response protocol of the serving layer.
//
// Requests (one per line, fields separated by single spaces):
//
//   covered <id>             is item <id> covered by the reduced inventory?
//   subs <id> <j>            top-j substitutes for item <id>
//   coverk <k>               coverage of the first k selected items
//   batch <id> [<id> ...]    covered-bit per id (bulk admission probe)
//
// Responses (one line per request):
//
//   OK covered <0|1> <p>     retained-or-substitutable flag and the exact
//                            match probability (1 for retained items)
//   OK subs <c> [<id>:<w> ...]  c substitutes, strongest first
//   OK coverk <c>            C(prefix of length k)
//   OK batch <n> <bits>      n requested ids, '0'/'1' covered flags
//   ERR <Code> <message>     the request failed (parse error, id out of
//                            range, deadline exceeded, queue full, ...)
//
// Probabilities and weights are formatted with "%.17g": a double always
// round-trips, so two answers derived from the same value are
// byte-identical — the property the differential test locks between the
// serving path and a direct CoverFunction/graph lookup.
//
// ParseRequest/FormatResponse are pure; AnswerOnIndex computes a response
// from a ServingIndex without any engine machinery (the QueryEngine wraps
// it with batching, caching and deadlines; tests call it directly).

#ifndef PREFCOVER_SERVE_PROTOCOL_H_
#define PREFCOVER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/preference_graph.h"
#include "serve/serving_index.h"
#include "util/status.h"

namespace prefcover {
namespace serve {

/// \brief The four query kinds the engine serves.
enum class QueryType : uint8_t {
  kCovered,
  kSubstitutes,
  kCoverageAtK,
  kBatchCovered,
};

std::string_view QueryTypeName(QueryType type);

/// \brief One parsed request.
struct Request {
  QueryType type = QueryType::kCovered;
  /// Item id for kCovered / kSubstitutes.
  NodeId v = 0;
  /// Requested substitute count for kSubstitutes (capped at the index's
  /// top_m).
  uint32_t top_j = 0;
  /// Prefix length for kCoverageAtK.
  uint64_t coverage_k = 0;
  /// Item ids for kBatchCovered.
  std::vector<NodeId> batch;
  /// Absolute steady_clock deadline in nanoseconds; 0 = none. Filled by
  /// the engine from its default when unset.
  int64_t deadline_ns = 0;
};

/// \brief One answer: a Status plus the formatted protocol line ("OK ..."
/// on success, "ERR <Code> <message>" otherwise — the line is always
/// present so transports can reply without re-deriving the rendering).
struct Response {
  Status status;
  std::string line;
  /// steady_clock nanos at which the engine fulfilled the request (0 for
  /// responses produced outside the engine). Lets a load generator compute
  /// exact per-request latency without racing the future hand-off.
  int64_t done_ns = 0;
};

/// \brief Parses one protocol line into a Request. The engine-control
/// verbs (`stats`, `reload`, `quit`) are NOT queries and are rejected
/// here; transports handle them before parsing.
Result<Request> ParseRequest(std::string_view line);

/// \brief Renders `status` as the protocol error line
/// "ERR <Code> <message>".
std::string FormatErrorLine(const Status& status);

/// \brief Answers `request` against `index` — the single source of truth
/// for response content. Out-of-range ids and prefix lengths produce an
/// ERR response (never a crash).
Response AnswerOnIndex(const ServingIndex& index, const Request& request);

/// \brief "%.17g" rendering used for every probability/weight in the
/// protocol (exposed for the differential tests).
std::string FormatProbability(double value);

}  // namespace serve
}  // namespace prefcover

#endif  // PREFCOVER_SERVE_PROTOCOL_H_
