#include "synth/preference_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph_builder.h"

namespace prefcover {

namespace {

// Partition a category's members (in a shuffled order) into variant
// groups of size 1 + Poisson(mean - 1). Returns per-member group index
// aligned with `shuffled`.
std::vector<std::vector<uint32_t>> PartitionIntoGroups(
    std::vector<uint32_t> shuffled, double mean_size, Rng* rng) {
  std::vector<std::vector<uint32_t>> groups;
  size_t i = 0;
  while (i < shuffled.size()) {
    size_t size = 1;
    if (mean_size > 1.0) {
      size += rng->NextPoisson(mean_size - 1.0);
    }
    size = std::min(size, shuffled.size() - i);
    groups.emplace_back(shuffled.begin() + static_cast<ptrdiff_t>(i),
                        shuffled.begin() + static_cast<ptrdiff_t>(i + size));
    i += size;
  }
  return groups;
}

}  // namespace

Result<PreferenceModel> PreferenceModel::Build(
    const Catalog* catalog, const PreferenceModelParams& params, Rng* rng) {
  if (catalog == nullptr || catalog->NumItems() == 0) {
    return Status::InvalidArgument("model needs a nonempty catalog");
  }
  const uint32_t n = static_cast<uint32_t>(catalog->NumItems());
  const uint32_t num_categories = catalog->num_categories();

  GraphBuilder builder;
  builder.Reserve(n, static_cast<size_t>(
                         static_cast<double>(n) *
                         (params.mean_alternatives +
                          params.variant_group_mean_size)));
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddNode(0.0, catalog->ItemName(i));
  }

  // Category popularity factors over a random permutation.
  std::vector<uint32_t> category_ranks(num_categories);
  for (uint32_t c = 0; c < num_categories; ++c) category_ranks[c] = c;
  rng->Shuffle(&category_ranks);
  ZipfDistribution category_zipf(num_categories,
                                 params.category_popularity_skew);

  std::vector<double> weights(n, 0.0);
  std::vector<uint32_t> group_of(n, 0);
  double weight_total = 0.0;
  uint32_t next_group_id = 0;

  // Per-category: build variant groups, assign popularity, wire edges.
  std::vector<uint32_t> targets;
  std::vector<double> accepts;
  struct PendingEdge {
    uint32_t from, to;
    double weight;
  };
  std::vector<PendingEdge> edges;

  for (uint32_t c = 0; c < num_categories; ++c) {
    std::vector<uint32_t> shuffled = catalog->CategoryMembers(c);
    rng->Shuffle(&shuffled);
    auto groups =
        PartitionIntoGroups(std::move(shuffled),
                            params.variant_group_mean_size, rng);
    const double category_factor = category_zipf.Pmf(category_ranks[c]);

    // Popularity: group factor within the category, item factor within the
    // group.
    ZipfDistribution group_zipf(static_cast<uint32_t>(groups.size()),
                                params.popularity_skew);
    for (uint32_t gi = 0; gi < groups.size(); ++gi) {
      const auto& group = groups[gi];
      ZipfDistribution member_zipf(static_cast<uint32_t>(group.size()),
                                   params.within_group_skew);
      double group_factor = group_zipf.Pmf(gi);
      for (uint32_t mi = 0; mi < group.size(); ++mi) {
        double w = category_factor * group_factor * member_zipf.Pmf(mi);
        weights[group[mi]] = w;
        weight_total += w;
        group_of[group[mi]] = next_group_id;
      }
      ++next_group_id;

      // Variant edges: every ordered pair within the group.
      for (uint32_t a = 0; a < group.size(); ++a) {
        for (uint32_t b = 0; b < group.size(); ++b) {
          if (a == b) continue;
          edges.push_back({group[a], group[b],
                           rng->NextDouble(params.group_acceptance_lo,
                                           params.group_acceptance_hi)});
        }
      }
    }

    // Cross-product edges within the category (plus rare cross-category).
    const std::vector<uint32_t>& members = catalog->CategoryMembers(c);
    for (uint32_t v : members) {
      targets.clear();
      accepts.clear();
      uint32_t degree = static_cast<uint32_t>(
          rng->NextPoisson(params.mean_alternatives));
      uint32_t cross = 0;
      for (uint32_t d = 0; d < degree; ++d) {
        if (rng->NextBernoulli(params.cross_category_share)) ++cross;
      }
      uint32_t intra_avail = static_cast<uint32_t>(members.size()) - 1;
      uint32_t intra = std::min(degree - cross, intra_avail);

      if (intra > 0) {
        const Catalog::Item& self = catalog->item(v);
        std::vector<uint32_t> picks =
            rng->SampleWithoutReplacement(intra_avail, intra);
        for (uint32_t p : picks) {
          uint32_t idx = p;
          // members is ascending; skip over v's own slot.
          if (members[idx] >= v) ++idx;
          uint32_t u = members[idx];
          if (group_of[u] == group_of[v]) continue;  // already variants
          const Catalog::Item& other = catalog->item(u);
          double acceptance = rng->NextDouble(params.base_acceptance_lo,
                                              params.base_acceptance_hi);
          if (other.brand == self.brand) {
            acceptance += params.same_brand_boost;
          }
          uint32_t tier_gap = other.price_tier > self.price_tier
                                  ? other.price_tier - self.price_tier
                                  : self.price_tier - other.price_tier;
          acceptance *= std::pow(params.tier_distance_damping,
                                 static_cast<double>(tier_gap));
          acceptance = std::clamp(acceptance, 1e-6, 0.95);
          targets.push_back(u);
          accepts.push_back(acceptance);
        }
      }
      for (uint32_t x = 0; x < cross && n > members.size(); ++x) {
        uint32_t u;
        do {
          u = static_cast<uint32_t>(rng->NextBounded(n));
        } while (catalog->item(u).category == c);
        if (std::find(targets.begin(), targets.end(), u) != targets.end()) {
          continue;
        }
        targets.push_back(u);
        accepts.push_back(rng->NextDouble(params.cross_category_lo,
                                          params.cross_category_hi));
      }
      for (size_t i = 0; i < targets.size(); ++i) {
        edges.push_back({v, targets[i], accepts[i]});
      }
    }
  }

  // Node weights.
  for (uint32_t v = 0; v < n; ++v) {
    PREFCOVER_RETURN_NOT_OK(
        builder.SetNodeWeight(v, weights[v] / weight_total));
  }

  // Normalized mode: scale each node's outgoing weights to a target sum
  // drawn from [0.4, 0.95]. Group the pending edges by source first.
  if (params.normalized) {
    std::stable_sort(edges.begin(), edges.end(),
                     [](const PendingEdge& a, const PendingEdge& b) {
                       return a.from < b.from;
                     });
    size_t i = 0;
    while (i < edges.size()) {
      size_t j = i;
      double sum = 0.0;
      while (j < edges.size() && edges[j].from == edges[i].from) {
        sum += edges[j].weight;
        ++j;
      }
      double target = rng->NextDouble(0.4, 0.95);
      if (sum > target) {
        double scale = target / sum;
        for (size_t e = i; e < j; ++e) edges[e].weight *= scale;
      }
      i = j;
    }
  }
  for (const PendingEdge& e : edges) {
    PREFCOVER_RETURN_NOT_OK(builder.AddEdge(e.from, e.to, e.weight));
  }

  GraphValidationOptions options;
  options.require_normalized_out_weights = params.normalized;
  PREFCOVER_ASSIGN_OR_RETURN(PreferenceGraph graph,
                             builder.Finalize(options));
  PreferenceModel model;
  model.catalog_ = catalog;
  model.graph_ = std::move(graph);
  model.group_of_ = std::move(group_of);
  model.normalized_ = params.normalized;
  return model;
}

}  // namespace prefcover
