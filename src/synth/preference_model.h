// Ground-truth consumer preference model over a synthetic catalog.
//
// The model IS a preference graph — item popularity plus alternative
// acceptance probabilities — built from catalog structure at three levels:
//
//   - variant groups: the same product in different colors/sizes (the
//     paper's Figure 3 is literally iPhone color variants). Members are
//     near-perfect substitutes (acceptance ~0.65-0.95) with correlated
//     popularity — best sellers come in whole groups, which is exactly why
//     retaining every top seller (TopK-W) wastes budget;
//   - within-category product edges: weaker alternatives (a different TV),
//     boosted by shared brand, dampened by price-tier distance;
//   - rare cross-category edges (accessory/upgrade links).
//
// Sessions generated from the model (session_generator.h) feed the Data
// Adaptation Engine, whose reconstructed graph can be compared back
// against this ground truth — making construction accuracy testable,
// which the paper's private data could not offer.

#ifndef PREFCOVER_SYNTH_PREFERENCE_MODEL_H_
#define PREFCOVER_SYNTH_PREFERENCE_MODEL_H_

#include <cstdint>
#include <vector>

#include "graph/preference_graph.h"
#include "synth/catalog.h"
#include "util/random.h"
#include "util/status.h"

namespace prefcover {

/// \brief Model parameters.
struct PreferenceModelParams {
  /// Zipf skew of popularity across the variant groups of a category.
  double popularity_skew = 1.05;

  /// Zipf skew of popularity across categories: an item's weight is
  /// category factor x group factor x within-group factor. Correlated
  /// popularity concentrates best sellers in hot categories and hot
  /// variant groups. 0 removes the correlation.
  double category_popularity_skew = 1.0;

  /// Zipf skew among the variants of one group (mild: the silver iPhone
  /// outsells the gold one, but not by orders of magnitude).
  double within_group_skew = 0.5;

  /// Mean variant-group size (1 + Poisson(mean - 1), capped by category).
  double variant_group_mean_size = 2.5;

  /// Acceptance range between variants of the same group.
  double group_acceptance_lo = 0.65;
  double group_acceptance_hi = 0.95;

  /// Mean number of cross-product alternatives (beyond the variant group);
  /// per-item degree is Poisson and capped by category size.
  double mean_alternatives = 2.5;

  /// Share of cross-product edges that cross categories.
  double cross_category_share = 0.05;

  /// Base acceptance range for a within-category cross-product edge.
  double base_acceptance_lo = 0.1;
  double base_acceptance_hi = 0.5;

  /// Additive acceptance boost when brands match (clamped to <= 0.95).
  double same_brand_boost = 0.15;

  /// Multiplicative dampening per price-tier step of distance.
  double tier_distance_damping = 0.55;

  /// Acceptance range for cross-category edges.
  double cross_category_lo = 0.03;
  double cross_category_hi = 0.2;

  /// When true, out-weights are scaled to sum to <= 1 (a target sum drawn
  /// from [0.4, 0.95]) — the Normalized-variant world where consumers have
  /// at most one acceptable alternative in expectation.
  bool normalized = false;
};

/// \brief An immutable ground-truth model: the catalog plus its true
/// preference graph (node labels = catalog item names).
class PreferenceModel {
 public:
  /// Builds the model; deterministic in (catalog, params, rng seed).
  static Result<PreferenceModel> Build(const Catalog* catalog,
                                       const PreferenceModelParams& params,
                                       Rng* rng);

  /// The true preference graph (nodes = catalog items, in catalog order).
  const PreferenceGraph& graph() const { return graph_; }
  const Catalog& catalog() const { return *catalog_; }
  bool normalized() const { return normalized_; }

  /// Variant-group id of each item (dense, catalog-wide).
  const std::vector<uint32_t>& group_of() const { return group_of_; }

 private:
  const Catalog* catalog_ = nullptr;
  PreferenceGraph graph_;
  std::vector<uint32_t> group_of_;
  bool normalized_ = false;
};

}  // namespace prefcover

#endif  // PREFCOVER_SYNTH_PREFERENCE_MODEL_H_
