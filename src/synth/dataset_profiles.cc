#include "synth/dataset_profiles.h"

#include <algorithm>

#include "synth/preference_model.h"
#include "synth/session_generator.h"

namespace prefcover {

namespace {

// Table 2 of the paper, verbatim.
constexpr ProfileSpec kSpecs[] = {
    {"PE", 10'782'918, 10'782'918, 1'921'701, 9'250'131,
     Variant::kIndependent},
    {"PF", 8'630'541, 8'630'541, 1'681'625, 7'182'318,
     Variant::kIndependent},
    {"PM", 8'154'160, 8'154'160, 1'396'674, 5'826'429, Variant::kNormalized},
    {"YC", 9'249'729, 259'579, 52'739, 249'008, Variant::kIndependent},
};

// Deterministic per-profile catalog/model parameterization. Category count
// scales with the catalog so category sizes stay realistic.
CatalogParams MakeCatalogParams(const ProfileSpec& spec, uint32_t num_items) {
  CatalogParams params;
  params.num_items = num_items;
  params.num_categories =
      std::max<uint32_t>(1, num_items / 40);  // ~40 items per category
  params.num_brands = std::max<uint32_t>(2, num_items / 500);
  params.num_price_tiers = 5;
  params.category_size_skew = spec.natural_variant == Variant::kNormalized
                                  ? 0.5   // Motors: flatter, specialist parts
                                  : 0.9;  // head-heavy consumer categories
  return params;
}

PreferenceModelParams MakeModelParams(const ProfileSpec& spec) {
  PreferenceModelParams params;
  // Variant groups contribute ~1.8 edges per item on average; the
  // cross-product degree makes up the rest of the paper's edges/items
  // ratio.
  double ratio = static_cast<double>(spec.edges) /
                 static_cast<double>(spec.items);
  params.mean_alternatives = std::max(0.5, ratio - 1.8);
  params.normalized = spec.natural_variant == Variant::kNormalized;
  if (params.normalized) {
    // Motors: very specific parts; small variant groups (a part either
    // fits or it does not) and few acceptable cross-product alternatives.
    params.variant_group_mean_size = 1.8;
    params.base_acceptance_lo = 0.1;
    params.base_acceptance_hi = 0.4;
  }
  params.popularity_skew = 1.05;
  return params;
}

struct ScaledCounts {
  uint32_t items;
  uint64_t sessions;
};

Result<ScaledCounts> ScaleSpec(const ProfileSpec& spec, double scale_factor) {
  if (!(scale_factor > 0.0) || scale_factor > 1.0) {
    return Status::InvalidArgument("scale_factor must be in (0, 1]");
  }
  ScaledCounts out;
  out.items = static_cast<uint32_t>(
      std::max<uint64_t>(10, static_cast<uint64_t>(
                                 static_cast<double>(spec.items) *
                                 scale_factor)));
  out.sessions = std::max<uint64_t>(
      100, static_cast<uint64_t>(static_cast<double>(spec.sessions) *
                                 scale_factor));
  return out;
}

}  // namespace

const ProfileSpec& GetProfileSpec(DatasetProfile profile) {
  return kSpecs[static_cast<int>(profile)];
}

Result<DatasetProfile> ParseProfileName(const std::string& name) {
  if (name == "PE") return DatasetProfile::kPE;
  if (name == "PF") return DatasetProfile::kPF;
  if (name == "PM") return DatasetProfile::kPM;
  if (name == "YC") return DatasetProfile::kYC;
  return Status::InvalidArgument("unknown profile '" + name +
                                 "' (expected PE|PF|PM|YC)");
}

Result<Clickstream> GenerateProfileClickstream(DatasetProfile profile,
                                               double scale_factor,
                                               uint64_t seed) {
  const ProfileSpec& spec = GetProfileSpec(profile);
  PREFCOVER_ASSIGN_OR_RETURN(ScaledCounts counts,
                             ScaleSpec(spec, scale_factor));
  Rng rng(seed ^ 0xDA7A5E7ULL);

  // The catalog outlives the model and the session generation below (the
  // model holds a pointer into it).
  PREFCOVER_ASSIGN_OR_RETURN(
      Catalog catalog,
      Catalog::Generate(MakeCatalogParams(spec, counts.items), &rng));
  PREFCOVER_ASSIGN_OR_RETURN(
      PreferenceModel model,
      PreferenceModel::Build(&catalog, MakeModelParams(spec), &rng));

  SessionGeneratorParams session_params;
  session_params.num_sessions = counts.sessions;
  session_params.behavior =
      spec.natural_variant == Variant::kNormalized
          ? SessionGeneratorParams::ClickBehavior::kSingleAlternative
          : SessionGeneratorParams::ClickBehavior::kIndependent;
  if (spec.natural_variant == Variant::kIndependent) {
    // Low-intent browsing clicks give constructed graphs the weak-edge
    // tail (and edge density) real clickstreams produce.
    session_params.noise_clicks_mean = 0.8;
  }
  // YC is dominated by browse-only sessions (259,579 purchases out of
  // 9,249,729 sessions); the private sets were filtered to purchases only.
  session_params.browse_only_share =
      1.0 - static_cast<double>(spec.purchases) /
                static_cast<double>(spec.sessions);
  return GenerateSessions(model, session_params, &rng);
}

Result<PreferenceGraph> GenerateProfileGraph(DatasetProfile profile,
                                             double scale_factor,
                                             uint64_t seed) {
  const ProfileSpec& spec = GetProfileSpec(profile);
  PREFCOVER_ASSIGN_OR_RETURN(ScaledCounts counts,
                             ScaleSpec(spec, scale_factor));
  return GenerateProfileGraphWithNodes(profile, counts.items, seed);
}

Result<PreferenceGraph> GenerateProfileGraphWithNodes(DatasetProfile profile,
                                                      uint32_t num_nodes,
                                                      uint64_t seed) {
  const ProfileSpec& spec = GetProfileSpec(profile);
  if (num_nodes == 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  Rng rng(seed ^ 0x6A3A9ULL);
  PREFCOVER_ASSIGN_OR_RETURN(
      Catalog catalog,
      Catalog::Generate(MakeCatalogParams(spec, num_nodes), &rng));
  PREFCOVER_ASSIGN_OR_RETURN(
      PreferenceModel model,
      PreferenceModel::Build(&catalog, MakeModelParams(spec), &rng));
  // The graph is self-contained (owns its arrays); the catalog and model
  // can be dropped.
  return model.graph();
}

namespace {

constexpr ScaleTierSpec kScaleTiers[] = {
    {"S", 20'000, 100},
    {"M", 200'000, 100},
    {"L", 1'000'000, 100},
    {"XL", 10'000'000, 100},
};

}  // namespace

const ScaleTierSpec& GetScaleTierSpec(ScaleTier tier) {
  return kScaleTiers[static_cast<int>(tier)];
}

Result<ScaleTier> ParseScaleTierName(const std::string& name) {
  if (name == "S") return ScaleTier::kS;
  if (name == "M") return ScaleTier::kM;
  if (name == "L") return ScaleTier::kL;
  if (name == "XL") return ScaleTier::kXL;
  return Status::InvalidArgument("unknown scale tier '" + name +
                                 "' (expected S|M|L|XL)");
}

Result<PreferenceGraph> GenerateScaleTierGraph(ScaleTier tier,
                                               uint64_t seed) {
  const ScaleTierSpec& spec = GetScaleTierSpec(tier);
  return GenerateProfileGraphWithNodes(DatasetProfile::kPE, spec.num_nodes,
                                       seed);
}

}  // namespace prefcover
