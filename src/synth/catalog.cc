#include "synth/catalog.h"

#include <cstdio>

namespace prefcover {

Result<Catalog> Catalog::Generate(const CatalogParams& params, Rng* rng) {
  if (params.num_items == 0 || params.num_categories == 0 ||
      params.num_brands == 0 || params.num_price_tiers == 0) {
    return Status::InvalidArgument("catalog dimensions must be positive");
  }
  if (params.num_categories > params.num_items) {
    return Status::InvalidArgument("more categories than items");
  }

  Catalog catalog;
  catalog.num_categories_ = params.num_categories;
  catalog.items_.reserve(params.num_items);
  catalog.members_.resize(params.num_categories);

  // One item per category first, so no category is empty; the rest follow
  // the skewed category-size distribution.
  ZipfDistribution category_dist(params.num_categories,
                                 params.category_size_skew);
  for (uint32_t i = 0; i < params.num_items; ++i) {
    uint32_t category = i < params.num_categories
                            ? i
                            : category_dist.Sample(rng);
    uint32_t brand = static_cast<uint32_t>(rng->NextBounded(params.num_brands));
    uint32_t tier =
        static_cast<uint32_t>(rng->NextBounded(params.num_price_tiers));
    catalog.items_.push_back({category, brand, tier});
    catalog.members_[category].push_back(i);
  }
  return catalog;
}

std::vector<uint32_t> Catalog::CategoryAssignment() const {
  std::vector<uint32_t> assignment;
  assignment.reserve(items_.size());
  for (const Item& it : items_) assignment.push_back(it.category);
  return assignment;
}

std::string Catalog::ItemName(uint32_t id) const {
  const Item& it = items_[id];
  char buf[64];
  std::snprintf(buf, sizeof(buf), "c%u/b%u/t%u/i%05u", it.category, it.brand,
                it.price_tier, id);
  return buf;
}

}  // namespace prefcover
