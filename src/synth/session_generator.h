// Session generation from a ground-truth preference model.
//
// Each buying session draws the desired item from the model's popularity,
// purchases it (the paper's setting: in the full-catalog store everything
// is in stock, so the desired item is the purchased one), and clicks the
// alternatives the consumer would have accepted — each out-neighbor
// independently with its edge probability (Independent behavior), or at
// most one alternative chosen by the edge weights (SingleAlternative
// behavior, producing Normalized-shaped data).

#ifndef PREFCOVER_SYNTH_SESSION_GENERATOR_H_
#define PREFCOVER_SYNTH_SESSION_GENERATOR_H_

#include <cstdint>

#include "clickstream/clickstream.h"
#include "synth/preference_model.h"
#include "util/random.h"
#include "util/status.h"

namespace prefcover {

/// \brief Session generation parameters.
struct SessionGeneratorParams {
  uint64_t num_sessions = 100'000;

  /// How clicked alternatives are produced.
  enum class ClickBehavior {
    /// Click each alternative independently with its acceptance
    /// probability — Independent-variant-shaped data.
    kIndependent,
    /// Click at most one alternative, chosen with the edge probabilities
    /// (residual probability = no alternative) — Normalized-shaped data.
    kSingleAlternative,
  };
  ClickBehavior behavior = ClickBehavior::kIndependent;

  /// Share of sessions that browse without buying (clicks on popular
  /// items, no purchase). The YC dataset is dominated by such sessions.
  double browse_only_share = 0.0;

  /// Mean clicks in a browse-only session (Poisson, min 1).
  double browse_clicks_mean = 3.0;

  /// Probability the purchased item itself is also clicked before the
  /// purchase (realistic logs almost always have it; exercises the
  /// engine's purchase-click exclusion).
  double click_purchase_share = 0.8;

  /// Mean number of low-intent "noise" clicks per buying session (Poisson)
  /// on popularity-sampled items the consumer merely browsed. Real
  /// clickstreams are full of these; they become the long tail of weak
  /// edges that gives constructed graphs their paper-like edge density.
  /// Must be 0 for SingleAlternative behavior (it would break the <= 1
  /// alternative shape that defines Normalized-fitting data).
  double noise_clicks_mean = 0.0;

  /// When true, every click carries a dwell time: accepted alternatives
  /// dwell long (Exp, mean 30 s), the purchased item longer (mean 45 s),
  /// and low-intent noise clicks briefly (mean 4 s) — the behavioral
  /// signal the dwell correction of Section 5.2 exploits.
  bool emit_dwell_times = false;
};

/// \brief Generates a clickstream from the model. The clickstream's
/// ItemIds coincide with the model's NodeIds (every catalog item is
/// interned up front, in catalog order), so the reconstructed graph is
/// directly comparable to the ground truth.
Result<Clickstream> GenerateSessions(const PreferenceModel& model,
                                     const SessionGeneratorParams& params,
                                     Rng* rng);

}  // namespace prefcover

#endif  // PREFCOVER_SYNTH_SESSION_GENERATOR_H_
