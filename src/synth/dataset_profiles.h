// Synthetic stand-ins for the paper's evaluation corpora (Table 2).
//
// The paper uses three private eBay datasets — Electronics (PE), Fashion
// (PF), Motors (PM) — and the public YooChoose clickstream (YC). None can
// ship with this repository, so each profile reproduces its Table 2 shape:
// item count, session count, purchase count, edge density, popularity
// skew, and the dependency structure that made the paper pick its variant
// (PM fits Normalized, the rest Independent). A scale factor shrinks
// everything proportionally so experiments run at any budget; scale 1.0 is
// the paper's full size.

#ifndef PREFCOVER_SYNTH_DATASET_PROFILES_H_
#define PREFCOVER_SYNTH_DATASET_PROFILES_H_

#include <cstdint>
#include <string>

#include "clickstream/clickstream.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief The four evaluation datasets of the paper.
enum class DatasetProfile { kPE, kPF, kPM, kYC };

/// \brief Paper-reported shape of one dataset (Table 2) plus the variant
/// its dependency structure fits.
struct ProfileSpec {
  const char* name;
  uint64_t sessions;
  uint64_t purchases;
  uint64_t items;
  uint64_t edges;
  Variant natural_variant;
};

/// Table 2 constants.
const ProfileSpec& GetProfileSpec(DatasetProfile profile);

/// Parses "PE"/"PF"/"PM"/"YC".
Result<DatasetProfile> ParseProfileName(const std::string& name);

/// \brief Generates a clickstream with the profile's shape at
/// `scale_factor` (items and sessions scaled proportionally; factor 1.0 is
/// paper scale). Deterministic in (profile, scale_factor, seed).
Result<Clickstream> GenerateProfileClickstream(DatasetProfile profile,
                                               double scale_factor,
                                               uint64_t seed);

/// \brief Directly generates the profile's preference graph (skipping the
/// session layer) — the fast path for solver scalability experiments where
/// only the graph matters (Figures 4d / 4e).
Result<PreferenceGraph> GenerateProfileGraph(DatasetProfile profile,
                                             double scale_factor,
                                             uint64_t seed);

/// \brief Directly generates a profile-shaped graph with an explicit node
/// count (used by the Figure 4d sweep over n).
Result<PreferenceGraph> GenerateProfileGraphWithNodes(DatasetProfile profile,
                                                      uint32_t num_nodes,
                                                      uint64_t seed);

}  // namespace prefcover

#endif  // PREFCOVER_SYNTH_DATASET_PROFILES_H_
