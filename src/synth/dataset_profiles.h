// Synthetic stand-ins for the paper's evaluation corpora (Table 2).
//
// The paper uses three private eBay datasets — Electronics (PE), Fashion
// (PF), Motors (PM) — and the public YooChoose clickstream (YC). None can
// ship with this repository, so each profile reproduces its Table 2 shape:
// item count, session count, purchase count, edge density, popularity
// skew, and the dependency structure that made the paper pick its variant
// (PM fits Normalized, the rest Independent). A scale factor shrinks
// everything proportionally so experiments run at any budget; scale 1.0 is
// the paper's full size.

#ifndef PREFCOVER_SYNTH_DATASET_PROFILES_H_
#define PREFCOVER_SYNTH_DATASET_PROFILES_H_

#include <cstdint>
#include <string>

#include "clickstream/clickstream.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief The four evaluation datasets of the paper.
enum class DatasetProfile { kPE, kPF, kPM, kYC };

/// \brief Paper-reported shape of one dataset (Table 2) plus the variant
/// its dependency structure fits.
struct ProfileSpec {
  const char* name;
  uint64_t sessions;
  uint64_t purchases;
  uint64_t items;
  uint64_t edges;
  Variant natural_variant;
};

/// Table 2 constants.
const ProfileSpec& GetProfileSpec(DatasetProfile profile);

/// Parses "PE"/"PF"/"PM"/"YC".
Result<DatasetProfile> ParseProfileName(const std::string& name);

/// \brief Generates a clickstream with the profile's shape at
/// `scale_factor` (items and sessions scaled proportionally; factor 1.0 is
/// paper scale). Deterministic in (profile, scale_factor, seed).
Result<Clickstream> GenerateProfileClickstream(DatasetProfile profile,
                                               double scale_factor,
                                               uint64_t seed);

/// \brief Directly generates the profile's preference graph (skipping the
/// session layer) — the fast path for solver scalability experiments where
/// only the graph matters (Figures 4d / 4e).
Result<PreferenceGraph> GenerateProfileGraph(DatasetProfile profile,
                                             double scale_factor,
                                             uint64_t seed);

/// \brief Directly generates a profile-shaped graph with an explicit node
/// count (used by the Figure 4d sweep over n).
Result<PreferenceGraph> GenerateProfileGraphWithNodes(DatasetProfile profile,
                                                      uint32_t num_nodes,
                                                      uint64_t seed);

/// \brief Pinned benchmark instance sizes for the perf-trajectory suite
/// (`bench/scale_tier`): Zipf-skewed PE-shaped graphs at three fixed node
/// counts, so timings are comparable across commits.
enum class ScaleTier {
  kS,   //     20,000 nodes — CI determinism checks, quick local runs
  kM,   //    200,000 nodes — local perf iteration
  kL,   //  1,000,000 nodes — the nightly perf-smoke scale tier
  kXL,  // 10,000,000 nodes — distributed-solve-only (a single process
        // is not the intended execution at this size; see DISTRIBUTED.md)
};

/// \brief Shape of one tier: node count plus the pinned solve budget used
/// by the benchmark (k is fixed per tier so the measured work is stable).
struct ScaleTierSpec {
  const char* name;
  uint32_t num_nodes;
  size_t solve_k;
};

const ScaleTierSpec& GetScaleTierSpec(ScaleTier tier);

/// Parses "S"/"M"/"L"/"XL".
Result<ScaleTier> ParseScaleTierName(const std::string& name);

/// \brief Generates the tier's graph: the PE profile (Zipf popularity
/// skew, Independent-variant shape) at the tier's pinned node count.
/// Deterministic in (tier, seed).
Result<PreferenceGraph> GenerateScaleTierGraph(ScaleTier tier,
                                               uint64_t seed);

}  // namespace prefcover

#endif  // PREFCOVER_SYNTH_DATASET_PROFILES_H_
