// Synthetic item catalog: the universe of items with the structure that
// drives substitutability in e-commerce — category (a 55" TV substitutes
// for a 55" TV, not for a phone case), brand and price tier.
//
// This replaces the paper's proprietary eBay catalogs (see DESIGN.md,
// Substitutions): the algorithms only ever see the derived preference
// graph, so a catalog with realistic category/brand/price structure
// exercises the same code paths.

#ifndef PREFCOVER_SYNTH_CATALOG_H_
#define PREFCOVER_SYNTH_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace prefcover {

/// \brief Parameters of the synthetic catalog.
struct CatalogParams {
  uint32_t num_items = 1000;
  uint32_t num_categories = 50;
  uint32_t num_brands = 20;
  uint32_t num_price_tiers = 5;

  /// Zipf skew of category sizes (0 = equal-size categories). Real
  /// catalogs are head-heavy: a few huge categories, a long tail.
  double category_size_skew = 0.8;
};

/// \brief An immutable synthetic catalog.
class Catalog {
 public:
  /// One item: its category, brand, and price tier.
  struct Item {
    uint32_t category;
    uint32_t brand;
    uint32_t price_tier;
  };

  /// Builds a catalog; deterministic in (params, rng seed).
  static Result<Catalog> Generate(const CatalogParams& params, Rng* rng);

  size_t NumItems() const { return items_.size(); }
  const Item& item(uint32_t id) const { return items_[id]; }
  uint32_t num_categories() const { return num_categories_; }

  /// Item ids of one category, ascending.
  const std::vector<uint32_t>& CategoryMembers(uint32_t category) const {
    return members_[category];
  }

  /// Per-item category ids, aligned with item ids — the vector
  /// ConstraintSpec::categories expects (core/constrained_solver.h), so
  /// catalog quotas plug straight into the constrained solver.
  std::vector<uint32_t> CategoryAssignment() const;

  /// Stable display name, e.g. "c12/b3/t2/i00047".
  std::string ItemName(uint32_t id) const;

 private:
  std::vector<Item> items_;
  std::vector<std::vector<uint32_t>> members_;
  uint32_t num_categories_ = 0;
};

}  // namespace prefcover

#endif  // PREFCOVER_SYNTH_CATALOG_H_
