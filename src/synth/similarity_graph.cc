#include "synth/similarity_graph.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace prefcover {

namespace {

double Acceptance(const Catalog::Item& self, const Catalog::Item& other,
                  const SimilarityGraphParams& params) {
  double acceptance = params.base_acceptance;
  if (self.brand == other.brand) acceptance += params.same_brand_boost;
  uint32_t tier_gap = other.price_tier > self.price_tier
                          ? other.price_tier - self.price_tier
                          : self.price_tier - other.price_tier;
  acceptance *= std::pow(params.tier_distance_damping,
                         static_cast<double>(tier_gap));
  return std::clamp(acceptance, 0.0, 0.95);
}

}  // namespace

Result<PreferenceGraph> BuildSimilarityGraph(
    const Catalog& catalog, const std::vector<double>& node_weights,
    const SimilarityGraphParams& params) {
  const size_t n = catalog.NumItems();
  if (node_weights.size() != n) {
    return Status::InvalidArgument(
        "node weight vector must match the catalog size");
  }
  if (params.max_alternatives == 0) {
    return Status::InvalidArgument("max_alternatives must be positive");
  }

  GraphBuilder builder;
  builder.Reserve(n, n * params.max_alternatives);
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddNode(node_weights[i], catalog.ItemName(i));
  }

  struct Candidate {
    uint32_t item;
    double acceptance;
  };
  std::vector<Candidate> candidates;
  for (uint32_t c = 0; c < catalog.num_categories(); ++c) {
    const std::vector<uint32_t>& members = catalog.CategoryMembers(c);
    for (uint32_t v : members) {
      candidates.clear();
      const Catalog::Item& self = catalog.item(v);
      for (uint32_t u : members) {
        if (u == v) continue;
        double acceptance = Acceptance(self, catalog.item(u), params);
        if (acceptance < params.min_acceptance) continue;
        candidates.push_back({u, acceptance});
      }
      if (candidates.size() > params.max_alternatives) {
        std::partial_sort(
            candidates.begin(),
            candidates.begin() + params.max_alternatives, candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.acceptance != b.acceptance) {
                return a.acceptance > b.acceptance;
              }
              return a.item < b.item;
            });
        candidates.resize(params.max_alternatives);
      }
      for (const Candidate& candidate : candidates) {
        PREFCOVER_RETURN_NOT_OK(
            builder.AddEdge(v, candidate.item, candidate.acceptance));
      }
    }
  }
  return builder.Finalize();
}

Result<PreferenceGraph> BlendPreferenceGraphs(const PreferenceGraph& primary,
                                              const PreferenceGraph& prior,
                                              double alpha) {
  if (primary.NumNodes() != prior.NumNodes()) {
    return Status::InvalidArgument(
        "blended graphs must share the item universe");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  GraphBuilder builder;
  builder.Reserve(primary.NumNodes(),
                  primary.NumEdges() + prior.NumEdges());
  for (NodeId v = 0; v < primary.NumNodes(); ++v) {
    builder.AddNode(primary.NodeWeight(v),
                    primary.HasLabels() ? primary.Label(v) : "");
  }
  for (NodeId v = 0; v < primary.NumNodes(); ++v) {
    // Union of both adjacency lists; weights blend with 0 for absences.
    std::unordered_map<NodeId, double> blended;
    AdjacencyView out_primary = primary.OutNeighbors(v);
    for (size_t i = 0; i < out_primary.size(); ++i) {
      blended[out_primary.nodes[i]] += alpha * out_primary.weights[i];
    }
    AdjacencyView out_prior = prior.OutNeighbors(v);
    for (size_t i = 0; i < out_prior.size(); ++i) {
      blended[out_prior.nodes[i]] += (1.0 - alpha) * out_prior.weights[i];
    }
    for (const auto& [to, weight] : blended) {
      if (weight <= 0.0) continue;
      PREFCOVER_RETURN_NOT_OK(
          builder.AddEdge(v, to, std::min(weight, 1.0)));
    }
  }
  GraphValidationOptions options;
  options.require_normalized_node_weights = false;
  return builder.Finalize(options);
}

}  // namespace prefcover
