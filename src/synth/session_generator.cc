#include "synth/session_generator.h"

#include <vector>

namespace prefcover {

Result<Clickstream> GenerateSessions(const PreferenceModel& model,
                                     const SessionGeneratorParams& params,
                                     Rng* rng) {
  const PreferenceGraph& graph = model.graph();
  const uint32_t n = static_cast<uint32_t>(graph.NumNodes());
  if (n == 0) return Status::InvalidArgument("model graph is empty");
  if (params.browse_only_share < 0.0 || params.browse_only_share >= 1.0) {
    return Status::InvalidArgument("browse_only_share must be in [0, 1)");
  }
  if (params.noise_clicks_mean > 0.0 &&
      params.behavior ==
          SessionGeneratorParams::ClickBehavior::kSingleAlternative) {
    return Status::InvalidArgument(
        "noise clicks are incompatible with SingleAlternative behavior");
  }

  constexpr double kAlternativeDwellMean = 30.0;
  constexpr double kPurchaseDwellMean = 45.0;
  constexpr double kNoiseDwellMean = 4.0;
  auto push_click = [&params](Session* session, NodeId item, double mean,
                              Rng* r) {
    session->clicks.push_back(item);
    if (params.emit_dwell_times) {
      session->dwell_seconds.push_back(r->NextExponential(1.0 / mean));
    }
  };

  Clickstream clickstream;
  clickstream.Reserve(params.num_sessions);
  ItemDictionary* dict = clickstream.mutable_dictionary();
  for (uint32_t i = 0; i < n; ++i) {
    ItemId id = dict->Intern(model.catalog().ItemName(i));
    PREFCOVER_CHECK(id == i);  // dense, catalog-ordered interning
  }

  // Popularity sampler over node weights.
  std::vector<double> weights(graph.NodeWeights().begin(),
                              graph.NodeWeights().end());
  AliasSampler popularity(weights);

  for (uint64_t s = 0; s < params.num_sessions; ++s) {
    Session session;
    if (rng->NextBernoulli(params.browse_only_share)) {
      // Browse-only: clicks on popular items, no purchase.
      uint64_t clicks = rng->NextPoisson(params.browse_clicks_mean);
      if (clicks == 0) clicks = 1;
      for (uint64_t c = 0; c < clicks; ++c) {
        push_click(&session, popularity.Sample(rng), kNoiseDwellMean, rng);
      }
      clickstream.AddSession(std::move(session));
      continue;
    }

    NodeId desired = popularity.Sample(rng);
    session.purchase = desired;
    if (rng->NextBernoulli(params.click_purchase_share)) {
      push_click(&session, desired, kPurchaseDwellMean, rng);
    }

    AdjacencyView out = graph.OutNeighbors(desired);
    switch (params.behavior) {
      case SessionGeneratorParams::ClickBehavior::kIndependent:
        for (size_t i = 0; i < out.size(); ++i) {
          if (rng->NextBernoulli(out.weights[i])) {
            push_click(&session, out.nodes[i], kAlternativeDwellMean, rng);
          }
        }
        if (params.noise_clicks_mean > 0.0) {
          uint64_t noise = rng->NextPoisson(params.noise_clicks_mean);
          for (uint64_t c = 0; c < noise; ++c) {
            NodeId browsed = popularity.Sample(rng);
            if (browsed != desired) {
              push_click(&session, browsed, kNoiseDwellMean, rng);
            }
          }
        }
        break;
      case SessionGeneratorParams::ClickBehavior::kSingleAlternative: {
        // Inverse-CDF over the edge weights; the residual mass (the
        // admissible graph guarantees sum <= 1) means no alternative.
        double u = rng->NextDouble();
        double acc = 0.0;
        for (size_t i = 0; i < out.size(); ++i) {
          acc += out.weights[i];
          if (u < acc) {
            push_click(&session, out.nodes[i], kAlternativeDwellMean, rng);
            break;
          }
        }
        break;
      }
    }
    clickstream.AddSession(std::move(session));
  }
  return clickstream;
}

}  // namespace prefcover
