// Attribute-similarity edge estimation — the paper's footnote 4: "one may
// also use semantic similarity between items to approximate edge weights".
//
// When clickstream volume is too thin to estimate alternative-acceptance
// probabilities (new items, new regions), catalog attributes still carry
// signal: items of the same category substitute; a shared brand and a
// close price tier make the substitution likelier. This module turns that
// prior into a preference graph, and provides blending so the prior can
// back-fill a behaviorally-constructed graph where observations are
// scarce (cold-start).

#ifndef PREFCOVER_SYNTH_SIMILARITY_GRAPH_H_
#define PREFCOVER_SYNTH_SIMILARITY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/preference_graph.h"
#include "synth/catalog.h"
#include "util/status.h"

namespace prefcover {

/// \brief Parameters of the attribute-similarity acceptance model.
struct SimilarityGraphParams {
  /// Acceptance assigned to a same-category pair before modifiers.
  double base_acceptance = 0.3;

  /// Additive boost when brands match.
  double same_brand_boost = 0.15;

  /// Multiplicative dampening per price-tier step of distance.
  double tier_distance_damping = 0.55;

  /// Per item, keep only the `max_alternatives` most similar candidates
  /// (caps the O(category²) blowup on huge categories).
  uint32_t max_alternatives = 8;

  /// Drop estimated edges below this acceptance.
  double min_acceptance = 0.05;
};

/// \brief Estimates a preference graph from catalog attributes alone.
///
/// `node_weights` are the request probabilities (e.g. estimated from the
/// few purchases available); must match the catalog size and sum to 1.
/// Edges connect items within a category, scored by the similarity model;
/// ties in similarity break toward the smaller item id.
Result<PreferenceGraph> BuildSimilarityGraph(
    const Catalog& catalog, const std::vector<double>& node_weights,
    const SimilarityGraphParams& params = SimilarityGraphParams());

/// \brief Blends two preference graphs over the same item universe:
/// `alpha * primary + (1 - alpha) * prior` edge-wise (union of edge sets;
/// missing edges count as 0). Node weights are taken from `primary`.
///
/// Intended use: primary = behaviorally constructed graph (sparse but
/// unbiased), prior = similarity graph (dense but approximate);
/// alpha rises with observation volume.
Result<PreferenceGraph> BlendPreferenceGraphs(const PreferenceGraph& primary,
                                              const PreferenceGraph& prior,
                                              double alpha);

}  // namespace prefcover

#endif  // PREFCOVER_SYNTH_SIMILARITY_GRAPH_H_
