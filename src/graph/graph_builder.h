// Mutable builder producing validated immutable PreferenceGraphs.

#ifndef PREFCOVER_GRAPH_GRAPH_BUILDER_H_
#define PREFCOVER_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief Validation applied by GraphBuilder::Finalize.
struct GraphValidationOptions {
  /// Require node weights to sum to 1 within `weight_sum_tolerance`
  /// (the paper's probability-distribution requirement). Transform
  /// intermediates may disable this.
  bool require_normalized_node_weights = true;

  /// Require the sum of outgoing edge weights of each node to be <= 1
  /// (+tolerance). Mandatory for the Normalized variant; meaningless for
  /// the Independent variant.
  bool require_normalized_out_weights = false;

  /// Reject self-loops (an item is trivially its own alternative; the only
  /// legitimate self-loops are those added by the VC_k reduction, which
  /// allows them explicitly).
  bool allow_self_loops = false;

  double weight_sum_tolerance = 1e-6;
};

/// \brief Accumulates nodes and edges, then validates and freezes them into
/// CSR form.
///
/// Usage:
///   GraphBuilder b;
///   NodeId a = b.AddNode(0.33, "A");
///   ...
///   PREFCOVER_RETURN_NOT_OK(b.AddEdge(a, bnode, 0.66));
///   PREFCOVER_ASSIGN_OR_RETURN(PreferenceGraph g, b.Finalize());
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-sizes internal storage.
  void Reserve(size_t num_nodes, size_t num_edges);

  /// Adds a node with request probability `weight`; returns its id.
  /// Weight range is validated at Finalize.
  NodeId AddNode(double weight, std::string label = "");

  /// Adds `count` unlabeled nodes with weight 0 (weights can be set later
  /// via SetNodeWeight); returns the id of the first.
  NodeId AddNodes(size_t count);

  /// Overwrites the weight of an existing node.
  Status SetNodeWeight(NodeId v, double weight);

  /// Adds edge (from, to) with alternative-probability `weight`.
  /// Returns InvalidArgument for unknown endpoints; weight range and
  /// duplicate detection happen at Finalize.
  Status AddEdge(NodeId from, NodeId to, double weight);

  /// If the edge exists, adds `weight` to it; otherwise creates it.
  /// Used by construction pipelines that accumulate fractional counts.
  /// Accumulation only tracks edges added through this method: mixing
  /// AddEdge and AddOrAccumulateEdge on the same endpoint pair creates a
  /// duplicate, which Finalize rejects.
  Status AddOrAccumulateEdge(NodeId from, NodeId to, double weight);

  /// Divides all node weights by their sum so they form a distribution.
  /// Returns FailedPrecondition if the sum is not positive.
  Status NormalizeNodeWeights();

  size_t NumNodes() const { return node_weights_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Validates and produces the immutable graph. The builder is left in a
  /// valid but unspecified state afterwards.
  Result<PreferenceGraph> Finalize(
      const GraphValidationOptions& options = GraphValidationOptions());

 private:
  struct Edge {
    NodeId from;
    NodeId to;
    double weight;
  };

  std::vector<double> node_weights_;
  std::vector<std::string> labels_;
  bool any_label_ = false;
  std::vector<Edge> edges_;
  // (from << 32 | to) -> index into edges_, for AddOrAccumulateEdge.
  std::unordered_map<uint64_t, size_t> edge_index_;
};

}  // namespace prefcover

#endif  // PREFCOVER_GRAPH_GRAPH_BUILDER_H_
