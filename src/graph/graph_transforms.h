// Structural transforms over preference graphs.

#ifndef PREFCOVER_GRAPH_GRAPH_TRANSFORMS_H_
#define PREFCOVER_GRAPH_GRAPH_TRANSFORMS_H_

#include <vector>

#include "graph/graph_builder.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief Reverses all edge orientations; node weights unchanged.
Result<PreferenceGraph> ReverseGraph(const PreferenceGraph& graph);

/// \brief Induced subgraph on `nodes` (ids into `graph`), with node ids
/// renumbered densely in the given order.
///
/// If `renormalize` is true the surviving node weights are rescaled to sum
/// to 1 (the usual choice when carving experiment subsets, mirroring the
/// paper's "subset of the YC dataset reduced to 30 products").
Result<PreferenceGraph> InducedSubgraph(const PreferenceGraph& graph,
                                        const std::vector<NodeId>& nodes,
                                        bool renormalize = true);

/// \brief Subgraph on the `count` highest-weight nodes (ties to smaller id).
Result<PreferenceGraph> TopWeightSubgraph(const PreferenceGraph& graph,
                                          size_t count,
                                          bool renormalize = true);

/// \brief Copy with node weights scaled to sum to 1.
Result<PreferenceGraph> NormalizeNodeWeights(const PreferenceGraph& graph);

/// \brief The self-loop completion step of the NPC_k -> VC_k reduction
/// (proof of Theorem 3.1): each node whose outgoing weights sum to s < 1
/// gains a self-loop of weight 1 - s, representing requests no alternative
/// can cover. Requires out-weight sums <= 1.
Result<PreferenceGraph> CompleteWithSelfLoops(const PreferenceGraph& graph);

/// \brief Caps each node's outgoing weight sum at 1 by proportional
/// scaling (no-op for nodes already at or below 1). Adapts an Independent-
/// style graph for use with the Normalized variant.
Result<PreferenceGraph> ClampOutWeights(const PreferenceGraph& graph);

/// \brief Keeps only each node's `max_out_degree` strongest outgoing edges
/// (ties by smaller target id). Constructed graphs accumulate long tails
/// of weak noise edges (single co-click observations); pruning them cuts
/// memory and solver time with negligible cover impact.
Result<PreferenceGraph> KeepStrongestEdges(const PreferenceGraph& graph,
                                           size_t max_out_degree);

}  // namespace prefcover

#endif  // PREFCOVER_GRAPH_GRAPH_TRANSFORMS_H_
