#include "graph/preference_graph.h"

namespace prefcover {

double PreferenceGraph::OutWeightSum(NodeId v) const {
  AdjacencyView out = OutNeighbors(v);
  double sum = 0.0;
  for (double w : out.weights) sum += w;
  return sum;
}

double PreferenceGraph::TotalNodeWeight() const {
  double sum = 0.0;
  for (double w : node_weights_) sum += w;
  return sum;
}

size_t PreferenceGraph::MaxInDegree() const {
  size_t d = 0;
  for (NodeId v = 0; v < NumNodes(); ++v) {
    size_t dv = InDegree(v);
    if (dv > d) d = dv;
  }
  return d;
}

double PreferenceGraph::EdgeWeight(NodeId v, NodeId u) const {
  AdjacencyView out = OutNeighbors(v);
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.nodes[i] == u) return out.weights[i];
  }
  return 0.0;
}

bool PreferenceGraph::HasEdge(NodeId v, NodeId u) const {
  AdjacencyView out = OutNeighbors(v);
  for (NodeId t : out.nodes) {
    if (t == u) return true;
  }
  return false;
}

std::string PreferenceGraph::DisplayName(NodeId v) const {
  if (HasLabels()) return labels_[v];
  return "item" + std::to_string(v);
}

}  // namespace prefcover
