#include "graph/graph_generators.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"

namespace prefcover {

namespace {

// Assigns Zipf(s) node weights over a random permutation of the nodes so
// that popularity is skewed but uncorrelated with node id.
void AssignPopularity(uint32_t n, double skew, Rng* rng,
                      GraphBuilder* builder) {
  std::vector<uint32_t> ranks(n);
  for (uint32_t i = 0; i < n; ++i) ranks[i] = i;
  rng->Shuffle(&ranks);
  ZipfDistribution zipf(n, skew);
  for (uint32_t v = 0; v < n; ++v) {
    // Finalize re-checks the sum; Pmf values sum to 1 exactly by
    // construction up to rounding.
    Status st = builder->SetNodeWeight(v, zipf.Pmf(ranks[v]));
    PREFCOVER_CHECK(st.ok());
  }
}

// Scales node v's pending out-edge weights so they sum to `target_sum`.
void ScaleWeights(std::vector<double>* weights, double target_sum) {
  double sum = 0.0;
  for (double w : *weights) sum += w;
  if (sum <= 0.0) return;
  double scale = target_sum / sum;
  for (double& w : *weights) {
    w *= scale;
    if (w > 1.0) w = 1.0;
    if (w < 1e-9) w = 1e-9;
  }
}

}  // namespace

Result<PreferenceGraph> GenerateUniformGraph(const UniformGraphParams& params,
                                             Rng* rng) {
  if (params.num_nodes == 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  if (params.min_edge_weight <= 0.0 ||
      params.max_edge_weight > 1.0 ||
      params.min_edge_weight > params.max_edge_weight) {
    return Status::InvalidArgument("edge weight range must be within (0,1]");
  }
  const uint32_t n = params.num_nodes;
  GraphBuilder builder;
  builder.Reserve(n, static_cast<size_t>(n) * params.out_degree);
  builder.AddNodes(n);
  AssignPopularity(n, params.popularity_skew, rng, &builder);

  const uint32_t degree = std::min(params.out_degree, n - 1);
  std::vector<double> weights;
  for (uint32_t v = 0; v < n && degree > 0; ++v) {
    // Sample from [0, n-1) and skip over v to get distinct non-self targets.
    std::vector<uint32_t> targets = rng->SampleWithoutReplacement(n - 1,
                                                                  degree);
    for (uint32_t& t : targets) {
      if (t >= v) ++t;
    }
    weights.assign(degree, 0.0);
    for (double& w : weights) {
      w = rng->NextDouble(params.min_edge_weight, params.max_edge_weight);
    }
    if (params.normalized_out_weights) {
      ScaleWeights(&weights, rng->NextDouble(0.3, 1.0));
    }
    for (uint32_t i = 0; i < degree; ++i) {
      PREFCOVER_RETURN_NOT_OK(builder.AddEdge(v, targets[i], weights[i]));
    }
  }
  GraphValidationOptions options;
  options.require_normalized_out_weights = params.normalized_out_weights;
  return builder.Finalize(options);
}

Result<PreferenceGraph> GenerateClusteredGraph(
    const ClusteredGraphParams& params, Rng* rng) {
  if (params.num_nodes == 0 || params.num_clusters == 0) {
    return Status::InvalidArgument("nodes and clusters must be positive");
  }
  if (params.num_clusters > params.num_nodes) {
    return Status::InvalidArgument("more clusters than nodes");
  }
  const uint32_t n = params.num_nodes;
  const uint32_t c = params.num_clusters;

  // Round-robin assignment keeps clusters near-equal in size; the random
  // popularity permutation decorrelates cluster id from weight.
  std::vector<uint32_t> cluster_of(n);
  std::vector<std::vector<uint32_t>> members(c);
  for (uint32_t v = 0; v < n; ++v) {
    cluster_of[v] = v % c;
    members[v % c].push_back(v);
  }

  GraphBuilder builder;
  builder.Reserve(n, static_cast<size_t>(
                         static_cast<double>(n) *
                         (params.intra_cluster_degree +
                          params.inter_cluster_degree)) +
                         n);
  builder.AddNodes(n);
  AssignPopularity(n, params.popularity_skew, rng, &builder);

  std::vector<double> weights;
  std::vector<uint32_t> targets;
  for (uint32_t v = 0; v < n; ++v) {
    targets.clear();
    weights.clear();

    const auto& own = members[cluster_of[v]];
    uint32_t intra_avail = static_cast<uint32_t>(own.size()) - 1;
    uint32_t intra = static_cast<uint32_t>(std::min<uint64_t>(
        rng->NextPoisson(params.intra_cluster_degree), intra_avail));
    if (intra > 0) {
      std::vector<uint32_t> picks =
          rng->SampleWithoutReplacement(intra_avail, intra);
      for (uint32_t p : picks) {
        // own is sorted ascending; skip v's own slot.
        uint32_t idx = p;
        if (own[idx] >= v) ++idx;
        targets.push_back(own[idx]);
        weights.push_back(
            rng->NextDouble(params.intra_weight_lo, params.intra_weight_hi));
      }
    }

    uint32_t inter = static_cast<uint32_t>(
        std::min<uint64_t>(rng->NextPoisson(params.inter_cluster_degree),
                           n > own.size() ? 8 : 0));
    for (uint32_t i = 0; i < inter; ++i) {
      uint32_t t;
      do {
        t = static_cast<uint32_t>(rng->NextBounded(n));
      } while (cluster_of[t] == cluster_of[v]);
      if (std::find(targets.begin(), targets.end(), t) != targets.end()) {
        continue;  // duplicate pick; skip rather than retry unboundedly
      }
      targets.push_back(t);
      weights.push_back(
          rng->NextDouble(params.inter_weight_lo, params.inter_weight_hi));
    }

    if (params.normalized_out_weights && !weights.empty()) {
      double sum = 0.0;
      for (double w : weights) sum += w;
      if (sum > 1.0) ScaleWeights(&weights, rng->NextDouble(0.5, 1.0));
    }
    for (size_t i = 0; i < targets.size(); ++i) {
      PREFCOVER_RETURN_NOT_OK(builder.AddEdge(v, targets[i], weights[i]));
    }
  }
  GraphValidationOptions options;
  options.require_normalized_out_weights = params.normalized_out_weights;
  return builder.Finalize(options);
}

PreferenceGraph MakePaperExampleGraph() {
  // Figure 1 / Examples 1.1 and 3.2. Weights reconstructed so that every
  // number in the paper's walkthrough holds:
  //   greedy picks B (gain 66%) then D (marginal 21.3%);
  //   top-2-by-weight {A, B} covers 77%;
  //   the optimum {B, D} covers 87.3%;
  //   retained {B, D} covers A at 67%, C at 100%, E at 90% (Figure 2).
  GraphBuilder builder;
  NodeId a = builder.AddNode(0.33, "A");
  NodeId b = builder.AddNode(0.22, "B");
  NodeId c = builder.AddNode(0.22, "C");
  NodeId d = builder.AddNode(0.06, "D");
  NodeId e = builder.AddNode(0.17, "E");
  auto add = [&builder](NodeId from, NodeId to, double w) {
    Status st = builder.AddEdge(from, to, w);
    PREFCOVER_CHECK(st.ok());
  };
  add(a, b, 2.0 / 3.0);  // "B is a more likely replacement for A than C"
  add(a, c, 0.2);
  add(b, c, 1.0);  // "consumers interested in C (B) will settle for B (C)"
  add(c, b, 1.0);
  add(d, c, 0.8);  // C is a one-step upgrade of D
  add(e, d, 0.9);  // "9/10 of W(E)"; no transitive E -> C edge
  GraphValidationOptions options;
  options.require_normalized_out_weights = true;
  auto result = builder.Finalize(options);
  PREFCOVER_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

}  // namespace prefcover
