#include "graph/graph_stats.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

namespace prefcover {

GraphStats ComputeGraphStats(const PreferenceGraph& graph) {
  GraphStats s;
  s.num_nodes = graph.NumNodes();
  s.num_edges = graph.NumEdges();
  s.total_node_weight = graph.TotalNodeWeight();
  if (s.num_nodes == 0) return s;

  s.mean_out_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_nodes);

  double edge_weight_sum = 0.0;
  double min_w = std::numeric_limits<double>::infinity();
  double max_w = -std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    size_t out_deg = graph.OutDegree(v);
    size_t in_deg = graph.InDegree(v);
    s.max_out_degree = std::max(s.max_out_degree, out_deg);
    s.max_in_degree = std::max(s.max_in_degree, in_deg);
    if (out_deg == 0 && in_deg == 0) ++s.isolated_nodes;

    double out_sum = 0.0;
    AdjacencyView adj = graph.OutNeighbors(v);
    for (double w : adj.weights) {
      edge_weight_sum += w;
      out_sum += w;
      min_w = std::min(min_w, w);
      max_w = std::max(max_w, w);
    }
    s.max_out_weight_sum = std::max(s.max_out_weight_sum, out_sum);
  }
  if (s.num_edges > 0) {
    s.mean_edge_weight = edge_weight_sum / static_cast<double>(s.num_edges);
    s.min_edge_weight = min_w;
    s.max_edge_weight = max_w;
  }

  // Gini over node weights via the sorted-index formula.
  std::vector<double> weights(graph.NodeWeights().begin(),
                              graph.NodeWeights().end());
  std::sort(weights.begin(), weights.end());
  double cum = 0.0, weighted_cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    weighted_cum += static_cast<double>(i + 1) * weights[i];
  }
  if (cum > 0.0) {
    double n = static_cast<double>(weights.size());
    s.node_weight_gini = (2.0 * weighted_cum) / (n * cum) - (n + 1.0) / n;
  }
  return s;
}

bool IsNormalizedAdmissible(const PreferenceGraph& graph, double tolerance) {
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (graph.OutWeightSum(v) > 1.0 + tolerance) return false;
  }
  return true;
}

std::string GraphStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "nodes=%zu edges=%zu total_node_weight=%.6f\n"
      "mean_out_degree=%.2f max_out_degree=%zu max_in_degree=%zu "
      "isolated=%zu\n"
      "edge_weight: mean=%.4f min=%.4f max=%.4f max_out_sum=%.4f\n"
      "node_weight_gini=%.4f",
      num_nodes, num_edges, total_node_weight, mean_out_degree,
      max_out_degree, max_in_degree, isolated_nodes, mean_edge_weight,
      min_edge_weight, max_edge_weight, max_out_weight_sum, node_weight_gini);
  return buf;
}

}  // namespace prefcover
