// Random preference-graph models for tests and micro-benchmarks.
//
// These generate graphs directly (no clickstream); the full e-commerce
// pipeline (catalog -> sessions -> Data Adaptation Engine -> graph) lives
// in src/synth/.

#ifndef PREFCOVER_GRAPH_GRAPH_GENERATORS_H_
#define PREFCOVER_GRAPH_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/preference_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace prefcover {

/// \brief Parameters for the uniform random model.
struct UniformGraphParams {
  uint32_t num_nodes = 100;
  /// Expected out-degree; each node draws this many distinct targets
  /// (capped at num_nodes - 1).
  uint32_t out_degree = 4;
  /// Node weights: Zipf skew s over a random popularity permutation
  /// (0 = uniform weights).
  double popularity_skew = 1.0;
  /// Edge weights drawn uniformly from [min_edge_weight, max_edge_weight].
  double min_edge_weight = 0.05;
  double max_edge_weight = 0.95;
  /// When true, each node's outgoing edge weights are scaled to sum to at
  /// most 1 (Normalized-variant admissible). The per-node target sum is
  /// drawn uniformly from [0.3, 1.0] so residual "no alternative"
  /// probability varies across nodes.
  bool normalized_out_weights = false;
};

/// \brief Erdős–Rényi-style preference graph with Zipf popularity.
Result<PreferenceGraph> GenerateUniformGraph(const UniformGraphParams& params,
                                             Rng* rng);

/// \brief Parameters for the clustered model that mimics e-commerce
/// substitute structure: items belong to categories (e.g. "55-inch TVs"),
/// and alternatives are mostly within-category.
struct ClusteredGraphParams {
  uint32_t num_nodes = 1000;
  uint32_t num_clusters = 100;
  /// Mean out-degree inside the own cluster.
  double intra_cluster_degree = 4.0;
  /// Mean out-degree to other clusters (accessory/upgrade links).
  double inter_cluster_degree = 0.5;
  double popularity_skew = 1.0;
  /// Alternatives inside a cluster are stronger than across clusters.
  double intra_weight_lo = 0.3, intra_weight_hi = 0.9;
  double inter_weight_lo = 0.05, inter_weight_hi = 0.3;
  bool normalized_out_weights = false;
};

/// \brief Category-clustered preference graph.
Result<PreferenceGraph> GenerateClusteredGraph(
    const ClusteredGraphParams& params, Rng* rng);

/// \brief The paper's running example (Figure 1 / Example 1.1): five items
/// A..E (= nodes 0..4); optimum for k=2 is {B, D} with cover 0.873.
PreferenceGraph MakePaperExampleGraph();

}  // namespace prefcover

#endif  // PREFCOVER_GRAPH_GRAPH_GENERATORS_H_
