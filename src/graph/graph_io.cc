#include "graph/graph_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "graph/graph_builder.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/string_util.h"

namespace prefcover {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'G', 'R', 'A', 'P', 'H', '1'};
constexpr uint32_t kVersion = 1;

// FNV-1a over the serialized payload; cheap integrity check against
// truncation and bit rot, not cryptographic.
class Fnv1a {
 public:
  void Update(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void Write(const void* data, size_t size) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(size));
    hash_.Update(data, size);
  }

  template <typename T>
  void WriteScalar(T value) {
    Write(&value, sizeof(T));
  }

  void WriteString(const std::string& s) {
    WriteScalar<uint32_t>(static_cast<uint32_t>(s.size()));
    Write(s.data(), s.size());
  }

  uint64_t digest() const { return hash_.digest(); }
  bool ok() const { return out_->good(); }

 private:
  std::ostream* out_;
  Fnv1a hash_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Status Read(void* data, size_t size) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (static_cast<size_t>(in_->gcount()) != size) {
      return Status::Corruption("unexpected end of graph file");
    }
    hash_.Update(data, size);
    return Status::OK();
  }

  template <typename T>
  Result<T> ReadScalar() {
    T value;
    PREFCOVER_RETURN_NOT_OK(Read(&value, sizeof(T)));
    return value;
  }

  Result<std::string> ReadString(uint32_t max_len) {
    PREFCOVER_ASSIGN_OR_RETURN(uint32_t len, ReadScalar<uint32_t>());
    if (len > max_len) {
      return Status::Corruption("string length implausible: " +
                                std::to_string(len));
    }
    std::string s(len, '\0');
    PREFCOVER_RETURN_NOT_OK(Read(s.data(), len));
    return s;
  }

  uint64_t digest() const { return hash_.digest(); }

 private:
  std::istream* in_;
  Fnv1a hash_;
};

}  // namespace

Status WriteGraphBinary(const PreferenceGraph& graph, std::ostream* out) {
  out->write(kMagic, sizeof(kMagic));
  BinaryWriter w(out);
  w.WriteScalar<uint32_t>(kVersion);
  const uint64_t n = graph.NumNodes();
  const uint64_t m = graph.NumEdges();
  w.WriteScalar<uint64_t>(n);
  w.WriteScalar<uint64_t>(m);
  w.WriteScalar<uint8_t>(graph.HasLabels() ? 1 : 0);
  for (NodeId v = 0; v < n; ++v) w.WriteScalar<double>(graph.NodeWeight(v));
  for (NodeId v = 0; v < n; ++v) {
    AdjacencyView adj = graph.OutNeighbors(v);
    w.WriteScalar<uint32_t>(static_cast<uint32_t>(adj.size()));
    for (size_t i = 0; i < adj.size(); ++i) {
      w.WriteScalar<NodeId>(adj.nodes[i]);
      w.WriteScalar<double>(adj.weights[i]);
    }
  }
  if (graph.HasLabels()) {
    for (NodeId v = 0; v < n; ++v) w.WriteString(graph.Label(v));
  }
  uint64_t digest = w.digest();
  out->write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  if (!out->good()) return Status::IOError("failed writing graph stream");
  return Status::OK();
}

Result<PreferenceGraph> ReadGraphBinary(std::istream* in) {
  char magic[sizeof(kMagic)];
  in->read(magic, sizeof(magic));
  if (static_cast<size_t>(in->gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a .pcg graph file (bad magic)");
  }
  BinaryReader r(in);
  PREFCOVER_ASSIGN_OR_RETURN(uint32_t version, r.ReadScalar<uint32_t>());
  if (version != kVersion) {
    return Status::Corruption("unsupported graph format version " +
                              std::to_string(version));
  }
  PREFCOVER_ASSIGN_OR_RETURN(uint64_t n, r.ReadScalar<uint64_t>());
  PREFCOVER_ASSIGN_OR_RETURN(uint64_t m, r.ReadScalar<uint64_t>());
  PREFCOVER_ASSIGN_OR_RETURN(uint8_t has_labels, r.ReadScalar<uint8_t>());
  if (n > kInvalidNode) {
    return Status::Corruption("node count exceeds NodeId range");
  }
  if (n > 0 && m / n > n) {
    return Status::Corruption("edge count implausible for node count");
  }

  GraphBuilder builder;
  // The counts come from an untrusted stream: cap the speculative
  // reservation and let storage grow only as bytes actually arrive, so a
  // corrupted count field fails cleanly at end-of-stream instead of
  // attempting a multi-gigabyte allocation.
  constexpr uint64_t kReserveCap = 1u << 20;
  builder.Reserve(static_cast<size_t>(std::min(n, kReserveCap)),
                  static_cast<size_t>(std::min(m, 4 * kReserveCap)));
  for (uint64_t v = 0; v < n; ++v) {
    PREFCOVER_ASSIGN_OR_RETURN(double weight, r.ReadScalar<double>());
    builder.AddNode(weight);
  }
  uint64_t edges_seen = 0;
  for (uint64_t v = 0; v < n; ++v) {
    PREFCOVER_ASSIGN_OR_RETURN(uint32_t deg, r.ReadScalar<uint32_t>());
    // A simple graph's out-degree cannot exceed n, and the per-node
    // degrees cannot sum past the header's edge count; checking both
    // before consuming the adjacency turns a corrupted degree field into
    // a descriptive error instead of a multi-gigabyte read attempt.
    if (deg > n) {
      return Status::Corruption(
          "node " + std::to_string(v) + " declares out-degree " +
          std::to_string(deg) + " > node count " + std::to_string(n));
    }
    if (edges_seen + deg > m) {
      return Status::Corruption(
          "adjacency lists exceed the header edge count " +
          std::to_string(m) + " at node " + std::to_string(v));
    }
    for (uint32_t i = 0; i < deg; ++i) {
      PREFCOVER_ASSIGN_OR_RETURN(NodeId to, r.ReadScalar<NodeId>());
      PREFCOVER_ASSIGN_OR_RETURN(double w, r.ReadScalar<double>());
      if (to >= n) return Status::Corruption("edge target out of range");
      PREFCOVER_RETURN_NOT_OK(
          builder.AddEdge(static_cast<NodeId>(v), to, w));
      ++edges_seen;
    }
  }
  if (edges_seen != m) {
    return Status::Corruption("edge count mismatch: header says " +
                              std::to_string(m) + ", found " +
                              std::to_string(edges_seen));
  }
  std::vector<std::string> labels;
  if (has_labels != 0) {
    labels.reserve(static_cast<size_t>(std::min(n, kReserveCap)));
    for (uint64_t v = 0; v < n; ++v) {
      PREFCOVER_ASSIGN_OR_RETURN(std::string label, r.ReadString(1u << 20));
      labels.push_back(std::move(label));
    }
  }

  uint64_t expected = r.digest();
  uint64_t stored = 0;
  in->read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<size_t>(in->gcount()) != sizeof(stored)) {
    return Status::Corruption("missing checksum");
  }
  if (stored != expected) {
    return Status::Corruption("checksum mismatch");
  }

  // The stream was produced from an already-validated graph; permissive
  // finalize preserves whatever shape it had (e.g. VC-reduction self-loops,
  // unnormalized transform intermediates).
  GraphValidationOptions options;
  options.require_normalized_node_weights = false;
  options.allow_self_loops = true;
  PREFCOVER_ASSIGN_OR_RETURN(PreferenceGraph graph,
                             builder.Finalize(options));
  if (has_labels != 0) {
    // Rebuild via a labeled builder pass: attach labels by re-finalizing is
    // not possible on the immutable graph, so re-run with labels in place.
    GraphBuilder labeled;
    labeled.Reserve(graph.NumNodes(), graph.NumEdges());
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      labeled.AddNode(graph.NodeWeight(v), labels[v]);
    }
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      AdjacencyView adj = graph.OutNeighbors(v);
      for (size_t i = 0; i < adj.size(); ++i) {
        PREFCOVER_RETURN_NOT_OK(
            labeled.AddEdge(v, adj.nodes[i], adj.weights[i]));
      }
    }
    return labeled.Finalize(options);
  }
  return graph;
}

Status WriteGraphBinaryFile(const PreferenceGraph& graph,
                            const std::string& path) {
  PREFCOVER_FAILPOINT_STATUS("graph_io.write");
  // Atomic replace: a crash mid-write leaves the previous file (or no
  // file), never a torn .pcg that a later load would reject.
  return WriteFileAtomic(path, [&graph](std::ostream* out) {
    return WriteGraphBinary(graph, out);
  });
}

Result<PreferenceGraph> ReadGraphBinaryFile(const std::string& path) {
  PREFCOVER_FAILPOINT_STATUS("graph_io.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return ReadGraphBinary(&in);
}

Status WriteGraphCsv(const PreferenceGraph& graph, std::ostream* nodes_out,
                     std::ostream* edges_out) {
  CsvWriter nodes(nodes_out);
  if (graph.HasLabels()) {
    nodes.WriteRecord({"id", "weight", "label"});
  } else {
    nodes.WriteRecord({"id", "weight"});
  }
  char buf[32];
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    std::snprintf(buf, sizeof(buf), "%.17g", graph.NodeWeight(v));
    if (graph.HasLabels()) {
      nodes.WriteRecord({std::to_string(v), buf, graph.Label(v)});
    } else {
      nodes.WriteRecord({std::to_string(v), buf});
    }
  }
  CsvWriter edges(edges_out);
  edges.WriteRecord({"from", "to", "weight"});
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    AdjacencyView adj = graph.OutNeighbors(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.17g", adj.weights[i]);
      edges.WriteRecord(
          {std::to_string(v), std::to_string(adj.nodes[i]), buf});
    }
  }
  if (!nodes_out->good() || !edges_out->good()) {
    return Status::IOError("failed writing CSV graph");
  }
  return Status::OK();
}

Result<PreferenceGraph> ReadGraphCsv(std::istream* nodes_in,
                                     std::istream* edges_in,
                                     const GraphValidationOptions& options) {
  GraphBuilder builder;
  CsvReader nodes(nodes_in);
  std::vector<std::string> fields;
  bool header = true;
  bool labeled = false;
  uint32_t expected_id = 0;
  while (nodes.Next(&fields)) {
    if (header) {
      header = false;
      if (fields.size() < 2 || fields[0] != "id") {
        return Status::InvalidArgument("nodes CSV must start with id,weight");
      }
      labeled = fields.size() >= 3;
      continue;
    }
    if (fields.size() < 2) {
      return Status::InvalidArgument("nodes CSV record too short");
    }
    PREFCOVER_ASSIGN_OR_RETURN(uint32_t id, ParseUint32(fields[0]));
    if (id != expected_id) {
      return Status::InvalidArgument(
          "nodes CSV ids must be dense and ascending; expected " +
          std::to_string(expected_id) + ", got " + std::to_string(id));
    }
    ++expected_id;
    PREFCOVER_ASSIGN_OR_RETURN(double w, ParseDouble(fields[1]));
    builder.AddNode(w, labeled && fields.size() >= 3 ? fields[2] : "");
  }
  PREFCOVER_RETURN_NOT_OK(nodes.status());

  CsvReader edges(edges_in);
  header = true;
  while (edges.Next(&fields)) {
    if (header) {
      header = false;
      if (fields.size() != 3 || fields[0] != "from") {
        return Status::InvalidArgument(
            "edges CSV must start with from,to,weight");
      }
      continue;
    }
    if (fields.size() != 3) {
      return Status::InvalidArgument("edges CSV record must have 3 fields");
    }
    PREFCOVER_ASSIGN_OR_RETURN(uint32_t from, ParseUint32(fields[0]));
    PREFCOVER_ASSIGN_OR_RETURN(uint32_t to, ParseUint32(fields[1]));
    PREFCOVER_ASSIGN_OR_RETURN(double w, ParseDouble(fields[2]));
    PREFCOVER_RETURN_NOT_OK(builder.AddEdge(from, to, w));
  }
  PREFCOVER_RETURN_NOT_OK(edges.status());

  return builder.Finalize(options);
}

}  // namespace prefcover
