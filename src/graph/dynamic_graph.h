// Mutable preference graph supporting the update stream of a live catalog
// (the paper's "incremental maintenance in response to changes over time"
// future-work direction, Section 7).
//
// PreferenceGraph is an immutable CSR snapshot optimized for solving;
// DynamicPreferenceGraph is the mutable twin: items appear and disappear,
// popularity drifts, alternative probabilities get re-estimated. Snapshot()
// freezes the current state into a PreferenceGraph for the solvers, with a
// dense re-numbering that skips removed items.

#ifndef PREFCOVER_GRAPH_DYNAMIC_GRAPH_H_
#define PREFCOVER_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief Stable identifier of an item in a dynamic graph. Unlike NodeId,
/// it survives removals of other items (ids are never reused).
using StableId = uint32_t;

/// \brief A mutable preference graph keyed by stable item ids.
class DynamicPreferenceGraph {
 public:
  DynamicPreferenceGraph() = default;

  /// Adds an item with raw (unnormalized) demand weight; returns its
  /// stable id. Raw weights are normalized into probabilities at
  /// Snapshot().
  StableId AddItem(double raw_weight, std::string label = "");

  /// Marks an item removed: it leaves the catalog together with every
  /// incident edge. The id is never reused.
  Status RemoveItem(StableId item);

  /// Updates an item's raw demand weight.
  Status SetItemWeight(StableId item, double raw_weight);

  /// Inserts or overwrites the alternative edge (from, to) with the given
  /// acceptance probability in (0, 1].
  Status UpsertEdge(StableId from, StableId to, double probability);

  /// Removes the edge (from, to); NotFound when absent.
  Status RemoveEdge(StableId from, StableId to);

  /// True if the item exists and is not removed.
  bool HasItem(StableId item) const;

  /// Current acceptance probability of (from, to), or 0 when absent.
  double EdgeProbability(StableId from, StableId to) const;

  double ItemWeight(StableId item) const;

  /// Live (non-removed) item count.
  size_t NumItems() const { return live_items_; }
  size_t NumEdges() const { return live_edges_; }

  /// Monotone counter incremented by every successful mutation; lets
  /// callers (e.g. InventoryMaintainer) detect drift cheaply.
  uint64_t version() const { return version_; }

  /// \brief Freezes the live items into an immutable snapshot.
  ///
  /// `stable_ids_out`, if non-null, receives the stable id of each
  /// snapshot node (index = NodeId in the snapshot), i.e. the mapping
  /// needed to interpret solver output. Raw weights are normalized to sum
  /// to 1; fails when no live item has positive weight.
  Result<PreferenceGraph> Snapshot(
      std::vector<StableId>* stable_ids_out = nullptr,
      const GraphValidationOptions& options = PermissiveSnapshotOptions())
      const;

  /// Snapshot validation default: labels and structure are already
  /// guaranteed by the mutation API, so only probability ranges matter.
  static GraphValidationOptions PermissiveSnapshotOptions();

 private:
  struct Edge {
    StableId to;
    double probability;
  };
  struct Item {
    double raw_weight = 0.0;
    bool removed = false;
    std::string label;
    std::vector<Edge> out;  // sorted by `to`
  };

  Status CheckLive(StableId item, const char* op) const;

  std::vector<Item> items_;
  size_t live_items_ = 0;
  size_t live_edges_ = 0;
  uint64_t version_ = 0;
};

}  // namespace prefcover

#endif  // PREFCOVER_GRAPH_DYNAMIC_GRAPH_H_
