// The preference graph of the Preference Cover problem (paper Section 2).
//
// A directed graph with weighted nodes and edges:
//   - node weight W(v) in [0, 1]: probability item v is the one requested
//     (node weights sum to 1 over the catalog);
//   - edge weight W(v, u) in (0, 1]: probability a consumer requesting v
//     accepts u as an alternative when v is not retained.
//
// Storage is immutable compressed-sparse-row in BOTH orientations. The
// greedy solver's Gain/AddNode procedures iterate the *incoming* edges of a
// candidate (all nodes that list the candidate as an alternative), while
// construction and cover evaluation iterate outgoing edges; keeping both
// CSRs makes each access contiguous.

#ifndef PREFCOVER_GRAPH_PREFERENCE_GRAPH_H_
#define PREFCOVER_GRAPH_PREFERENCE_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/logging.h"

namespace prefcover {

/// Dense node identifier in [0, NumNodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// \brief One adjacency list: parallel spans of endpoints and weights.
struct AdjacencyView {
  std::span<const NodeId> nodes;
  std::span<const double> weights;

  size_t size() const { return nodes.size(); }
  bool empty() const { return nodes.empty(); }
};

/// \brief Immutable weighted directed preference graph.
///
/// Construct via GraphBuilder (graph_builder.h). Copyable (deep) and
/// movable; all read accessors are thread-safe.
class PreferenceGraph {
 public:
  PreferenceGraph() = default;

  size_t NumNodes() const { return node_weights_.size(); }
  size_t NumEdges() const { return out_targets_.size(); }

  /// W(v): request probability of item v.
  double NodeWeight(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    return node_weights_[v];
  }

  /// All node weights, indexable by NodeId.
  std::span<const double> NodeWeights() const { return node_weights_; }

  /// Outgoing alternatives of v: nodes u with an edge (v, u) and W(v, u).
  AdjacencyView OutNeighbors(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    size_t b = out_offsets_[v], e = out_offsets_[v + 1];
    return {std::span(out_targets_).subspan(b, e - b),
            std::span(out_weights_).subspan(b, e - b)};
  }

  /// Incoming edges of v: nodes u with an edge (u, v) and W(u, v).
  AdjacencyView InNeighbors(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    size_t b = in_offsets_[v], e = in_offsets_[v + 1];
    return {std::span(in_sources_).subspan(b, e - b),
            std::span(in_weights_).subspan(b, e - b)};
  }

  size_t OutDegree(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  size_t InDegree(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Sum of outgoing edge weights of v (== 1 − "no alternative fits"
  /// probability under the Normalized variant).
  double OutWeightSum(NodeId v) const;

  /// Sum of all node weights (1.0 for a well-formed catalog; transforms may
  /// produce unnormalized graphs).
  double TotalNodeWeight() const;

  /// Maximum in-degree D (the paper's complexity parameter in O(nkD)).
  size_t MaxInDegree() const;

  /// Weight of edge (v, u), or 0 when absent. O(out-degree of v).
  double EdgeWeight(NodeId v, NodeId u) const;

  /// True if the edge (v, u) exists.
  bool HasEdge(NodeId v, NodeId u) const;

  /// Optional human-readable item labels. Empty when unlabeled.
  bool HasLabels() const { return !labels_.empty(); }
  const std::string& Label(NodeId v) const {
    PREFCOVER_DCHECK(HasLabels() && v < labels_.size());
    return labels_[v];
  }
  /// Label if present, otherwise "item<id>".
  std::string DisplayName(NodeId v) const;

 private:
  friend class GraphBuilder;

  std::vector<double> node_weights_;
  std::vector<size_t> out_offsets_;  // size NumNodes()+1
  std::vector<NodeId> out_targets_;
  std::vector<double> out_weights_;
  std::vector<size_t> in_offsets_;  // size NumNodes()+1
  std::vector<NodeId> in_sources_;
  std::vector<double> in_weights_;
  std::vector<std::string> labels_;  // empty or size NumNodes()
};

}  // namespace prefcover

#endif  // PREFCOVER_GRAPH_PREFERENCE_GRAPH_H_
