// The preference graph of the Preference Cover problem (paper Section 2).
//
// A directed graph with weighted nodes and edges:
//   - node weight W(v) in [0, 1]: probability item v is the one requested
//     (node weights sum to 1 over the catalog);
//   - edge weight W(v, u) in (0, 1]: probability a consumer requesting v
//     accepts u as an alternative when v is not retained.
//
// Storage is immutable compressed-sparse-row in BOTH orientations. The
// greedy solver's Gain/AddNode procedures iterate the *incoming* edges of a
// candidate (all nodes that list the candidate as an alternative), while
// construction and cover evaluation iterate outgoing edges; keeping both
// CSRs makes each access contiguous.

#ifndef PREFCOVER_GRAPH_PREFERENCE_GRAPH_H_
#define PREFCOVER_GRAPH_PREFERENCE_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/logging.h"

namespace prefcover {

/// Dense node identifier in [0, NumNodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// \brief One adjacency list: parallel spans of endpoints and weights.
struct AdjacencyView {
  std::span<const NodeId> nodes;
  std::span<const double> weights;

  size_t size() const { return nodes.size(); }
  bool empty() const { return nodes.empty(); }
};

/// \brief Immutable weighted directed preference graph.
///
/// Construct via GraphBuilder (graph_builder.h). Copyable (deep) and
/// movable; all read accessors are thread-safe.
class PreferenceGraph {
 public:
  PreferenceGraph() = default;

  size_t NumNodes() const { return node_weights_.size(); }
  size_t NumEdges() const { return out_targets_.size(); }

  /// W(v): request probability of item v.
  double NodeWeight(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    return node_weights_[v];
  }

  /// All node weights, indexable by NodeId.
  std::span<const double> NodeWeights() const { return node_weights_; }

  /// Outgoing alternatives of v: nodes u with an edge (v, u) and W(v, u).
  AdjacencyView OutNeighbors(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    size_t b = out_offsets_[v], e = out_offsets_[v + 1];
    return {std::span(out_targets_).subspan(b, e - b),
            std::span(out_weights_).subspan(b, e - b)};
  }

  /// Incoming edges of v: nodes u with an edge (u, v) and W(u, v).
  AdjacencyView InNeighbors(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    size_t b = in_offsets_[v], e = in_offsets_[v + 1];
    return {std::span(in_sources_).subspan(b, e - b),
            std::span(in_weights_).subspan(b, e - b)};
  }

  /// Position of v's first incoming edge in the in-CSR edge order; the
  /// index base for edge-parallel side tables (e.g. the coverage
  /// kernels' static gain table).
  size_t InEdgeOffset(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    return in_offsets_[v];
  }

  /// Raw in-CSR arrays, for kernels that stream every in-edge of a node
  /// range in one pass instead of materializing per-node views: offsets
  /// (size NumNodes()+1; node v's in-edges live at [offsets[v],
  /// offsets[v+1])), sources and weights in in-edge order.
  std::span<const size_t> InEdgeOffsets() const { return in_offsets_; }
  std::span<const NodeId> InEdgeSources() const { return in_sources_; }
  std::span<const double> InEdgeWeights() const { return in_weights_; }

  /// Static per-node upper bound on the greedy marginal gain:
  ///   bound(v) = W(v) + sum over in-edges (u, v), u != v, of W(u)*W(u,v).
  /// Both variants' Gain procedures replace W with the current residual
  /// (Independent) or drop retained terms (Normalized), and residuals
  /// only shrink from W, so Gain(v) <= bound(v) against EVERY retained
  /// set — the bound never needs recomputing as a solve progresses. Built
  /// once at Finalize alongside the in-CSR.
  std::span<const double> StaticGainBounds() const {
    return static_gain_bounds_;
  }

  /// All node ids ordered by descending StaticGainBounds() (ties by
  /// ascending id). A scan in this order can stop as soon as a running
  /// top-T threshold exceeds the next bound — the kernel tiers' heap
  /// seed (core/greedy_solver.cc).
  std::span<const NodeId> NodesByStaticGainBound() const {
    return bound_order_;
  }

  size_t OutDegree(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  size_t InDegree(NodeId v) const {
    PREFCOVER_DCHECK(v < NumNodes());
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Sum of outgoing edge weights of v (== 1 − "no alternative fits"
  /// probability under the Normalized variant).
  double OutWeightSum(NodeId v) const;

  /// Sum of all node weights (1.0 for a well-formed catalog; transforms may
  /// produce unnormalized graphs).
  double TotalNodeWeight() const;

  /// Maximum in-degree D (the paper's complexity parameter in O(nkD)).
  size_t MaxInDegree() const;

  /// Weight of edge (v, u), or 0 when absent. O(out-degree of v).
  double EdgeWeight(NodeId v, NodeId u) const;

  /// True if the edge (v, u) exists.
  bool HasEdge(NodeId v, NodeId u) const;

  /// Optional human-readable item labels. Empty when unlabeled.
  bool HasLabels() const { return !labels_.empty(); }
  const std::string& Label(NodeId v) const {
    PREFCOVER_DCHECK(HasLabels() && v < labels_.size());
    return labels_[v];
  }
  /// Label if present, otherwise "item<id>".
  std::string DisplayName(NodeId v) const;

 private:
  friend class GraphBuilder;

  std::vector<double> node_weights_;
  std::vector<size_t> out_offsets_;  // size NumNodes()+1
  std::vector<NodeId> out_targets_;
  std::vector<double> out_weights_;
  std::vector<size_t> in_offsets_;  // size NumNodes()+1
  std::vector<NodeId> in_sources_;
  std::vector<double> in_weights_;
  std::vector<double> static_gain_bounds_;  // size NumNodes()
  std::vector<NodeId> bound_order_;         // ids, descending bound
  std::vector<std::string> labels_;  // empty or size NumNodes()
};

}  // namespace prefcover

#endif  // PREFCOVER_GRAPH_PREFERENCE_GRAPH_H_
