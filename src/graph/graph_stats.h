// Descriptive statistics over preference graphs (dataset summaries à la
// Table 2, degree distributions, weight diagnostics).

#ifndef PREFCOVER_GRAPH_GRAPH_STATS_H_
#define PREFCOVER_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/preference_graph.h"

namespace prefcover {

/// \brief Aggregate description of a preference graph.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double total_node_weight = 0.0;

  double mean_out_degree = 0.0;
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  size_t isolated_nodes = 0;  // no in or out edges

  double mean_edge_weight = 0.0;
  double min_edge_weight = 0.0;
  double max_edge_weight = 0.0;

  /// Max over nodes of the outgoing weight sum; <= 1 iff the graph is
  /// admissible for the Normalized variant.
  double max_out_weight_sum = 0.0;

  /// Gini coefficient of node weights (popularity skew diagnostic).
  double node_weight_gini = 0.0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// \brief Computes all statistics in one pass over the graph.
GraphStats ComputeGraphStats(const PreferenceGraph& graph);

/// \brief True if every node's outgoing weights sum to at most 1 +
/// tolerance (admissibility for NPC_k).
bool IsNormalizedAdmissible(const PreferenceGraph& graph,
                            double tolerance = 1e-9);

}  // namespace prefcover

#endif  // PREFCOVER_GRAPH_GRAPH_STATS_H_
