// Serialization of preference graphs.
//
// Two formats:
//   - binary (.pcg): compact little-endian dump of the CSR arrays with a
//     magic/version header and payload checksum; the format of record for
//     large graphs.
//   - text (CSV): two files or streams — nodes (id,weight[,label]) and
//     edges (from,to,weight) — convenient for interchange and debugging.

#ifndef PREFCOVER_GRAPH_GRAPH_IO_H_
#define PREFCOVER_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph_builder.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \name Binary format
/// @{

/// Writes `graph` to `out` in binary .pcg format.
Status WriteGraphBinary(const PreferenceGraph& graph, std::ostream* out);

/// Reads a binary .pcg graph. Fails with Corruption on bad magic, version,
/// truncation or checksum mismatch.
Result<PreferenceGraph> ReadGraphBinary(std::istream* in);

/// File-path conveniences.
Status WriteGraphBinaryFile(const PreferenceGraph& graph,
                            const std::string& path);
Result<PreferenceGraph> ReadGraphBinaryFile(const std::string& path);

/// @}
/// \name Text (CSV) format
/// @{

/// Writes nodes as `id,weight[,label]` and edges as `from,to,weight`,
/// each with a header row.
Status WriteGraphCsv(const PreferenceGraph& graph, std::ostream* nodes_out,
                     std::ostream* edges_out);

/// Reads the CSV pair produced by WriteGraphCsv. Validation options apply
/// at finalize time.
Result<PreferenceGraph> ReadGraphCsv(
    std::istream* nodes_in, std::istream* edges_in,
    const GraphValidationOptions& options = GraphValidationOptions());

/// @}

}  // namespace prefcover

#endif  // PREFCOVER_GRAPH_GRAPH_IO_H_
