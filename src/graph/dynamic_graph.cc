#include "graph/dynamic_graph.h"

#include <algorithm>
#include <cmath>

namespace prefcover {

namespace {

// Lower-bound search in a to-sorted edge vector.
template <typename EdgeVec>
auto FindEdge(EdgeVec& edges, StableId to) {
  return std::lower_bound(
      edges.begin(), edges.end(), to,
      [](const auto& edge, StableId target) { return edge.to < target; });
}

}  // namespace

GraphValidationOptions DynamicPreferenceGraph::PermissiveSnapshotOptions() {
  GraphValidationOptions options;
  options.require_normalized_node_weights = true;  // Snapshot normalizes
  options.allow_self_loops = false;
  return options;
}

StableId DynamicPreferenceGraph::AddItem(double raw_weight,
                                         std::string label) {
  Item item;
  item.raw_weight = raw_weight;
  item.label = std::move(label);
  items_.push_back(std::move(item));
  ++live_items_;
  ++version_;
  return static_cast<StableId>(items_.size() - 1);
}

Status DynamicPreferenceGraph::CheckLive(StableId item,
                                         const char* op) const {
  if (item >= items_.size()) {
    return Status::InvalidArgument(std::string(op) + ": unknown item " +
                                   std::to_string(item));
  }
  if (items_[item].removed) {
    return Status::FailedPrecondition(std::string(op) + ": item " +
                                      std::to_string(item) + " was removed");
  }
  return Status::OK();
}

Status DynamicPreferenceGraph::RemoveItem(StableId item) {
  PREFCOVER_RETURN_NOT_OK(CheckLive(item, "RemoveItem"));
  live_edges_ -= items_[item].out.size();
  items_[item].out.clear();
  items_[item].removed = true;
  --live_items_;
  // Remove incoming edges (linear scan: removals are rare relative to
  // weight updates, and the structure favors the common operations).
  for (Item& other : items_) {
    if (other.removed || other.out.empty()) continue;
    auto it = FindEdge(other.out, item);
    if (it != other.out.end() && it->to == item) {
      other.out.erase(it);
      --live_edges_;
    }
  }
  ++version_;
  return Status::OK();
}

Status DynamicPreferenceGraph::SetItemWeight(StableId item,
                                             double raw_weight) {
  PREFCOVER_RETURN_NOT_OK(CheckLive(item, "SetItemWeight"));
  if (!(raw_weight >= 0.0) || std::isnan(raw_weight)) {
    return Status::InvalidArgument("raw weight must be >= 0");
  }
  items_[item].raw_weight = raw_weight;
  ++version_;
  return Status::OK();
}

Status DynamicPreferenceGraph::UpsertEdge(StableId from, StableId to,
                                          double probability) {
  PREFCOVER_RETURN_NOT_OK(CheckLive(from, "UpsertEdge"));
  PREFCOVER_RETURN_NOT_OK(CheckLive(to, "UpsertEdge"));
  if (from == to) {
    return Status::InvalidArgument("an item cannot be its own alternative");
  }
  if (!(probability > 0.0) || probability > 1.0) {
    return Status::InvalidArgument("edge probability must be in (0, 1]");
  }
  auto& out = items_[from].out;
  auto it = FindEdge(out, to);
  if (it != out.end() && it->to == to) {
    it->probability = probability;
  } else {
    out.insert(it, {to, probability});
    ++live_edges_;
  }
  ++version_;
  return Status::OK();
}

Status DynamicPreferenceGraph::RemoveEdge(StableId from, StableId to) {
  PREFCOVER_RETURN_NOT_OK(CheckLive(from, "RemoveEdge"));
  auto& out = items_[from].out;
  auto it = FindEdge(out, to);
  if (it == out.end() || it->to != to) {
    return Status::NotFound("edge (" + std::to_string(from) + ", " +
                            std::to_string(to) + ") does not exist");
  }
  out.erase(it);
  --live_edges_;
  ++version_;
  return Status::OK();
}

bool DynamicPreferenceGraph::HasItem(StableId item) const {
  return item < items_.size() && !items_[item].removed;
}

double DynamicPreferenceGraph::EdgeProbability(StableId from,
                                               StableId to) const {
  if (!HasItem(from)) return 0.0;
  const auto& out = items_[from].out;
  auto it = FindEdge(out, to);
  return (it != out.end() && it->to == to) ? it->probability : 0.0;
}

double DynamicPreferenceGraph::ItemWeight(StableId item) const {
  return HasItem(item) ? items_[item].raw_weight : 0.0;
}

Result<PreferenceGraph> DynamicPreferenceGraph::Snapshot(
    std::vector<StableId>* stable_ids_out,
    const GraphValidationOptions& options) const {
  double total = 0.0;
  for (const Item& item : items_) {
    if (!item.removed) total += item.raw_weight;
  }
  if (!(total > 0.0)) {
    return Status::FailedPrecondition(
        "snapshot requires positive total demand weight");
  }

  std::vector<NodeId> dense(items_.size(), kInvalidNode);
  std::vector<StableId> stable_ids;
  stable_ids.reserve(live_items_);
  GraphBuilder builder;
  builder.Reserve(live_items_, live_edges_);
  for (StableId id = 0; id < items_.size(); ++id) {
    const Item& item = items_[id];
    if (item.removed) continue;
    dense[id] = builder.AddNode(item.raw_weight / total, item.label);
    stable_ids.push_back(id);
  }
  for (StableId id = 0; id < items_.size(); ++id) {
    const Item& item = items_[id];
    if (item.removed) continue;
    for (const Edge& edge : item.out) {
      PREFCOVER_DCHECK(dense[edge.to] != kInvalidNode);
      PREFCOVER_RETURN_NOT_OK(
          builder.AddEdge(dense[id], dense[edge.to], edge.probability));
    }
  }
  PREFCOVER_ASSIGN_OR_RETURN(PreferenceGraph graph,
                             builder.Finalize(options));
  if (stable_ids_out != nullptr) *stable_ids_out = std::move(stable_ids);
  return graph;
}

}  // namespace prefcover
