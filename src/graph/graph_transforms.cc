#include "graph/graph_transforms.h"

#include <algorithm>

namespace prefcover {

namespace {

// Copies node v's identity (weight + label) into the builder.
void CopyNode(const PreferenceGraph& graph, NodeId v, GraphBuilder* builder) {
  builder->AddNode(graph.NodeWeight(v),
                   graph.HasLabels() ? graph.Label(v) : "");
}

GraphValidationOptions PermissiveOptions() {
  GraphValidationOptions options;
  options.require_normalized_node_weights = false;
  options.allow_self_loops = true;
  return options;
}

}  // namespace

Result<PreferenceGraph> ReverseGraph(const PreferenceGraph& graph) {
  GraphBuilder builder;
  builder.Reserve(graph.NumNodes(), graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) CopyNode(graph, v, &builder);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    AdjacencyView adj = graph.OutNeighbors(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      PREFCOVER_RETURN_NOT_OK(
          builder.AddEdge(adj.nodes[i], v, adj.weights[i]));
    }
  }
  return builder.Finalize(PermissiveOptions());
}

Result<PreferenceGraph> InducedSubgraph(const PreferenceGraph& graph,
                                        const std::vector<NodeId>& nodes,
                                        bool renormalize) {
  std::vector<NodeId> remap(graph.NumNodes(), kInvalidNode);
  for (size_t i = 0; i < nodes.size(); ++i) {
    NodeId v = nodes[i];
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("subgraph node out of range: " +
                                     std::to_string(v));
    }
    if (remap[v] != kInvalidNode) {
      return Status::InvalidArgument("duplicate subgraph node: " +
                                     std::to_string(v));
    }
    remap[v] = static_cast<NodeId>(i);
  }

  GraphBuilder builder;
  builder.Reserve(nodes.size(), 0);
  for (NodeId v : nodes) CopyNode(graph, v, &builder);
  for (NodeId v : nodes) {
    AdjacencyView adj = graph.OutNeighbors(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      NodeId to = remap[adj.nodes[i]];
      if (to == kInvalidNode) continue;  // endpoint dropped
      PREFCOVER_RETURN_NOT_OK(
          builder.AddEdge(remap[v], to, adj.weights[i]));
    }
  }
  if (renormalize) {
    PREFCOVER_RETURN_NOT_OK(builder.NormalizeNodeWeights());
  }
  return builder.Finalize(PermissiveOptions());
}

Result<PreferenceGraph> TopWeightSubgraph(const PreferenceGraph& graph,
                                          size_t count, bool renormalize) {
  if (count > graph.NumNodes()) {
    return Status::InvalidArgument("subgraph larger than graph");
  }
  std::vector<NodeId> ids(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) ids[v] = v;
  std::stable_sort(ids.begin(), ids.end(), [&graph](NodeId a, NodeId b) {
    return graph.NodeWeight(a) > graph.NodeWeight(b);
  });
  ids.resize(count);
  std::sort(ids.begin(), ids.end());  // keep relative id order stable
  return InducedSubgraph(graph, ids, renormalize);
}

Result<PreferenceGraph> NormalizeNodeWeights(const PreferenceGraph& graph) {
  GraphBuilder builder;
  builder.Reserve(graph.NumNodes(), graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) CopyNode(graph, v, &builder);
  PREFCOVER_RETURN_NOT_OK(builder.NormalizeNodeWeights());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    AdjacencyView adj = graph.OutNeighbors(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      PREFCOVER_RETURN_NOT_OK(builder.AddEdge(v, adj.nodes[i],
                                              adj.weights[i]));
    }
  }
  GraphValidationOptions options = PermissiveOptions();
  options.require_normalized_node_weights = true;
  return builder.Finalize(options);
}

Result<PreferenceGraph> CompleteWithSelfLoops(const PreferenceGraph& graph) {
  GraphBuilder builder;
  builder.Reserve(graph.NumNodes(), graph.NumEdges() + graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) CopyNode(graph, v, &builder);
  constexpr double kTolerance = 1e-9;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    double sum = 0.0;
    AdjacencyView adj = graph.OutNeighbors(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      PREFCOVER_RETURN_NOT_OK(builder.AddEdge(v, adj.nodes[i],
                                              adj.weights[i]));
      sum += adj.weights[i];
    }
    if (sum > 1.0 + kTolerance) {
      return Status::FailedPrecondition(
          "CompleteWithSelfLoops requires Normalized out-weight sums; node " +
          std::to_string(v) + " has " + std::to_string(sum));
    }
    double residual = 1.0 - sum;
    if (residual > kTolerance) {
      PREFCOVER_RETURN_NOT_OK(builder.AddEdge(v, v, residual));
    }
  }
  return builder.Finalize(PermissiveOptions());
}

Result<PreferenceGraph> KeepStrongestEdges(const PreferenceGraph& graph,
                                           size_t max_out_degree) {
  if (max_out_degree == 0) {
    return Status::InvalidArgument("max_out_degree must be positive");
  }
  GraphBuilder builder;
  builder.Reserve(graph.NumNodes(), graph.NumNodes() * max_out_degree);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) CopyNode(graph, v, &builder);

  struct Edge {
    NodeId to;
    double weight;
  };
  std::vector<Edge> edges;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    AdjacencyView adj = graph.OutNeighbors(v);
    edges.clear();
    edges.reserve(adj.size());
    for (size_t i = 0; i < adj.size(); ++i) {
      edges.push_back({adj.nodes[i], adj.weights[i]});
    }
    if (edges.size() > max_out_degree) {
      std::partial_sort(edges.begin(),
                        edges.begin() + static_cast<ptrdiff_t>(max_out_degree),
                        edges.end(), [](const Edge& a, const Edge& b) {
                          if (a.weight != b.weight) {
                            return a.weight > b.weight;
                          }
                          return a.to < b.to;
                        });
      edges.resize(max_out_degree);
    }
    for (const Edge& edge : edges) {
      PREFCOVER_RETURN_NOT_OK(builder.AddEdge(v, edge.to, edge.weight));
    }
  }
  return builder.Finalize(PermissiveOptions());
}

Result<PreferenceGraph> ClampOutWeights(const PreferenceGraph& graph) {
  GraphBuilder builder;
  builder.Reserve(graph.NumNodes(), graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) CopyNode(graph, v, &builder);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    double sum = graph.OutWeightSum(v);
    double scale = sum > 1.0 ? 1.0 / sum : 1.0;
    AdjacencyView adj = graph.OutNeighbors(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      PREFCOVER_RETURN_NOT_OK(
          builder.AddEdge(v, adj.nodes[i], adj.weights[i] * scale));
    }
  }
  return builder.Finalize(PermissiveOptions());
}

}  // namespace prefcover
