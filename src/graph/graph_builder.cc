#include "graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace prefcover {

void GraphBuilder::Reserve(size_t num_nodes, size_t num_edges) {
  node_weights_.reserve(num_nodes);
  labels_.reserve(num_nodes);
  edges_.reserve(num_edges);
}

NodeId GraphBuilder::AddNode(double weight, std::string label) {
  NodeId id = static_cast<NodeId>(node_weights_.size());
  node_weights_.push_back(weight);
  if (!label.empty()) any_label_ = true;
  labels_.push_back(std::move(label));
  return id;
}

NodeId GraphBuilder::AddNodes(size_t count) {
  NodeId first = static_cast<NodeId>(node_weights_.size());
  node_weights_.resize(node_weights_.size() + count, 0.0);
  labels_.resize(labels_.size() + count);
  return first;
}

Status GraphBuilder::SetNodeWeight(NodeId v, double weight) {
  if (v >= node_weights_.size()) {
    return Status::InvalidArgument("SetNodeWeight: unknown node " +
                                   std::to_string(v));
  }
  node_weights_[v] = weight;
  return Status::OK();
}

Status GraphBuilder::AddEdge(NodeId from, NodeId to, double weight) {
  if (from >= node_weights_.size() || to >= node_weights_.size()) {
    return Status::InvalidArgument(
        "AddEdge: unknown endpoint (" + std::to_string(from) + ", " +
        std::to_string(to) + ") with " + std::to_string(node_weights_.size()) +
        " nodes");
  }
  edges_.push_back({from, to, weight});
  return Status::OK();
}

Status GraphBuilder::AddOrAccumulateEdge(NodeId from, NodeId to,
                                         double weight) {
  if (from >= node_weights_.size() || to >= node_weights_.size()) {
    return Status::InvalidArgument("AddOrAccumulateEdge: unknown endpoint");
  }
  // Linear probe over this node's recent edges would be quadratic for hub
  // nodes; construction pipelines instead accumulate into a map keyed by the
  // packed endpoint pair.
  uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
  auto [it, inserted] = edge_index_.try_emplace(key, edges_.size());
  if (inserted) {
    edges_.push_back({from, to, weight});
  } else {
    edges_[it->second].weight += weight;
  }
  return Status::OK();
}

Status GraphBuilder::NormalizeNodeWeights() {
  double sum = 0.0;
  for (double w : node_weights_) sum += w;
  if (!(sum > 0.0)) {
    return Status::FailedPrecondition(
        "NormalizeNodeWeights: node weight sum must be positive");
  }
  for (double& w : node_weights_) w /= sum;
  return Status::OK();
}

Result<PreferenceGraph> GraphBuilder::Finalize(
    const GraphValidationOptions& options) {
  const size_t n = node_weights_.size();

  for (size_t v = 0; v < n; ++v) {
    double w = node_weights_[v];
    if (!(w >= 0.0) || w > 1.0 || std::isnan(w)) {
      return Status::InvalidArgument("node " + std::to_string(v) +
                                     " weight out of [0,1]: " +
                                     std::to_string(w));
    }
  }
  if (options.require_normalized_node_weights) {
    double sum = 0.0;
    for (double w : node_weights_) sum += w;
    if (std::fabs(sum - 1.0) > options.weight_sum_tolerance) {
      return Status::InvalidArgument(
          "node weights must sum to 1 (got " + std::to_string(sum) +
          "); call NormalizeNodeWeights() or disable the check");
    }
  }

  for (const Edge& e : edges_) {
    if (!options.allow_self_loops && e.from == e.to) {
      return Status::InvalidArgument("self-loop on node " +
                                     std::to_string(e.from));
    }
    if (!(e.weight > 0.0) || e.weight > 1.0 + 1e-12 || std::isnan(e.weight)) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(e.from) + ", " + std::to_string(e.to) +
          ") weight out of (0,1]: " + std::to_string(e.weight));
    }
  }

  // Sort edges by (from, to) to build the out-CSR and detect duplicates.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  for (size_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i].from == edges_[i - 1].from &&
        edges_[i].to == edges_[i - 1].to) {
      return Status::InvalidArgument(
          "duplicate edge (" + std::to_string(edges_[i].from) + ", " +
          std::to_string(edges_[i].to) + ")");
    }
  }

  if (options.require_normalized_out_weights) {
    // Edges are sorted by source, so per-node sums are contiguous scans.
    size_t i = 0;
    while (i < edges_.size()) {
      size_t j = i;
      double sum = 0.0;
      while (j < edges_.size() && edges_[j].from == edges_[i].from) {
        sum += edges_[j].weight;
        ++j;
      }
      if (sum > 1.0 + options.weight_sum_tolerance) {
        return Status::InvalidArgument(
            "Normalized variant requires out-weight sum <= 1; node " +
            std::to_string(edges_[i].from) + " has " + std::to_string(sum));
      }
      i = j;
    }
  }

  PreferenceGraph g;
  g.node_weights_ = std::move(node_weights_);
  if (any_label_) g.labels_ = std::move(labels_);

  const size_t m = edges_.size();
  g.out_offsets_.assign(n + 1, 0);
  g.out_targets_.resize(m);
  g.out_weights_.resize(m);
  for (const Edge& e : edges_) ++g.out_offsets_[e.from + 1];
  for (size_t v = 0; v < n; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];
  {
    // Edges are already sorted by (from, to); fill sequentially.
    size_t idx = 0;
    for (const Edge& e : edges_) {
      g.out_targets_[idx] = e.to;
      g.out_weights_[idx] = e.weight;
      ++idx;
    }
  }

  g.in_offsets_.assign(n + 1, 0);
  g.in_sources_.resize(m);
  g.in_weights_.resize(m);
  for (const Edge& e : edges_) ++g.in_offsets_[e.to + 1];
  for (size_t v = 0; v < n; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      size_t idx = cursor[e.to]++;
      g.in_sources_[idx] = e.from;
      g.in_weights_[idx] = e.weight;
    }
  }

  // Static gain-bound index (see PreferenceGraph::StaticGainBounds):
  // bound(v) = W(v) + sum_{(u,v), u != v} W(u) * W(u,v), over the in-CSR
  // just built, plus the descending-bound node order. One O(m) pass and
  // one O(n log n) sort at build time buys the solvers a seed scan that
  // can stop after the plausible candidates instead of touching every
  // edge (ties order by ascending id, so the index is deterministic).
  g.static_gain_bounds_.resize(n);
  g.bound_order_.resize(n);
  for (size_t v = 0; v < n; ++v) {
    double bound = g.node_weights_[v];
    for (size_t i = g.in_offsets_[v]; i < g.in_offsets_[v + 1]; ++i) {
      const NodeId u = g.in_sources_[i];
      if (u == v) continue;
      bound += g.node_weights_[u] * g.in_weights_[i];
    }
    g.static_gain_bounds_[v] = bound;
    g.bound_order_[v] = static_cast<NodeId>(v);
  }
  std::sort(g.bound_order_.begin(), g.bound_order_.end(),
            [&g](NodeId a, NodeId b) {
              if (g.static_gain_bounds_[a] != g.static_gain_bounds_[b]) {
                return g.static_gain_bounds_[a] > g.static_gain_bounds_[b];
              }
              return a < b;
            });

  // Leave the builder reusable-but-empty.
  node_weights_.clear();
  labels_.clear();
  edges_.clear();
  edge_index_.clear();
  any_label_ = false;

  return g;
}

}  // namespace prefcover
