// Deterministic JSON emission of a Pareto frontier sweep (BENCH_pareto):
// the coverage-vs-inventory-cost frontier from
// core/constrained_solver.h's SolveParetoFrontier, serialized with the
// bench harness's JSON model so two same-seed sweeps are byte-identical
// — golden-locked in tests/bench like the BENCH_core emission.
//
// Deliberately excludes timings and EnvCapture: every field is a pure
// function of (instance, costs, schedule), so the whole document is
// byte-comparable, not just a non-timing subset.

#ifndef PREFCOVER_BENCH_PARETO_JSON_H_
#define PREFCOVER_BENCH_PARETO_JSON_H_

#include <string>
#include <vector>

#include "bench/json.h"
#include "core/constrained_solver.h"
#include "util/status.h"

namespace prefcover {

/// Schema version of the BENCH_pareto document; bump on layout changes.
inline constexpr int kParetoSchemaVersion = 1;

/// \brief Instance provenance recorded alongside the frontier.
struct ParetoArtifactMeta {
  /// Free-form instance label, e.g. "uniform/n=200/seed=7" or a graph
  /// file path.
  std::string instance;
  Variant variant = Variant::kIndependent;
  size_t num_nodes = 0;
  /// Budgets the sweep was asked for (the frontier may be smaller after
  /// the non-dominated filter).
  size_t points_requested = 0;
};

/// \brief Serializes the frontier: schema_version, suite, meta, and one
/// record per point (budget, total_cost, cover, num_items, items).
JsonValue ParetoFrontierToJson(const std::vector<ParetoPoint>& frontier,
                               const ParetoArtifactMeta& meta);

/// \brief Atomically writes ParetoFrontierToJson to `path`.
Status WriteParetoArtifact(const std::string& path,
                           const std::vector<ParetoPoint>& frontier,
                           const ParetoArtifactMeta& meta);

}  // namespace prefcover

#endif  // PREFCOVER_BENCH_PARETO_JSON_H_
