// Schema validation and comparison of BENCH_core.json documents: the
// regression gate (p50 wall-time deltas per case), the determinism check
// (every non-timing field identical across two runs with the same seed),
// and the golden-file check (same, with a numeric tolerance).

#ifndef PREFCOVER_BENCH_COMPARE_H_
#define PREFCOVER_BENCH_COMPARE_H_

#include <string>
#include <vector>

#include "bench/json.h"
#include "util/status.h"

namespace prefcover {

/// \brief Validates that `doc` conforms to the BENCH_core.json schema
/// (see EXPERIMENTS.md): required keys with the right types, per-case
/// latency summaries, numeric counters, unique case names.
Status ValidateBenchDocument(const JsonValue& doc);

/// \brief Comparison knobs.
struct BenchCompareOptions {
  /// Perf mode: fail when a case's current p50 wall time exceeds the
  /// baseline's by more than this fraction (0.2 == 20% slower).
  double p50_regression_threshold = 0.20;

  /// Perf mode: ignore regressions whose absolute p50 delta is below this
  /// floor — percentage noise on micro-cases is not signal.
  double min_effect_ms = 0.05;

  /// Determinism mode: instead of timings, require every non-timing,
  /// non-env field of the two documents to match. Timing objects
  /// ("wall_ms"/"cpu_ms") and "env" values must still exist with the
  /// exact schema, but their values are not compared.
  bool determinism = false;

  /// Determinism mode: numeric tolerance. 0 demands bit-equality (two
  /// runs of one binary); the golden test uses 1e-9.
  double tolerance = 0.0;
};

/// \brief Per-case p50 delta (perf mode).
struct CaseComparison {
  std::string name;
  double baseline_p50_ms = 0.0;
  double current_p50_ms = 0.0;
  /// current / baseline; > 1 is a slowdown.
  double ratio = 1.0;
  bool regressed = false;
};

/// \brief Outcome of a comparison.
struct BenchCompareReport {
  /// Matched cases, in baseline order (perf mode only).
  std::vector<CaseComparison> cases;

  /// Case names present only in the current document (informational).
  std::vector<std::string> new_cases;

  /// Everything that makes the comparison fail: regressions, baseline
  /// cases that disappeared, determinism mismatches.
  std::vector<std::string> problems;

  bool ok() const { return problems.empty(); }
};

/// \brief Compares `current` against `baseline`. Both documents must
/// validate; the mode is selected by `options.determinism`.
Result<BenchCompareReport> CompareBenchDocuments(
    const JsonValue& baseline, const JsonValue& current,
    const BenchCompareOptions& options);

/// \brief One intra-document case-vs-case p50 ratio (ratio mode).
struct CaseRatio {
  double case_p50_ms = 0.0;
  double baseline_p50_ms = 0.0;
  /// case / baseline; > 1 means the case is slower.
  double ratio = 1.0;
  bool within_bound = false;
};

/// \brief Ratio mode: gates one case of a SINGLE document against a
/// sibling case instead of a second run — e.g. the constrained solver's
/// `solve/budget_greedy/n10000` at <= 1.05x of `solve/lazy/n10000`.
/// Because both cases come from the same process on the same machine,
/// the bound needs no cross-run baseline file and is immune to host
/// speed. InvalidArgument when either case is missing or max_ratio is
/// not positive.
Result<CaseRatio> CompareCaseRatio(const JsonValue& doc,
                                   const std::string& case_name,
                                   const std::string& baseline_case,
                                   double max_ratio);

}  // namespace prefcover

#endif  // PREFCOVER_BENCH_COMPARE_H_
