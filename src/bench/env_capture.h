// Capture of the environment a benchmark run executed in, embedded in
// every BENCH_core.json so a perf trajectory is interpretable later:
// numbers without the build flags and host shape behind them are noise.

#ifndef PREFCOVER_BENCH_ENV_CAPTURE_H_
#define PREFCOVER_BENCH_ENV_CAPTURE_H_

#include <string>

#include "bench/json.h"

namespace prefcover {

/// \brief Build- and host-level provenance of a benchmark run.
///
/// git_sha / build_type / cxx_flags are baked in at configure time (CMake
/// compile definitions); the rest is read from the running host. Every
/// field is a stable string ("unknown" when unavailable) so the JSON
/// schema never changes shape.
struct EnvCapture {
  std::string git_sha;
  std::string build_type;
  std::string compiler;
  std::string cxx_flags;
  std::string os;
  unsigned hardware_threads = 0;

  /// Captures the current process's environment.
  static EnvCapture Capture();

  /// The "env" object of the BENCH_core.json schema.
  JsonValue ToJson() const;
};

/// \brief Human-readable build version captured at configure time via
/// `git describe --tags --always --dirty` ("v1.2-4-gabc123", or the bare
/// short SHA when no tag exists; "unknown" for out-of-git builds). Behind
/// the CLI's `version` subcommand.
std::string BuildVersionString();

}  // namespace prefcover

#endif  // PREFCOVER_BENCH_ENV_CAPTURE_H_
