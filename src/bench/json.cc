#include "bench/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace prefcover {

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  PREFCOVER_CHECK_MSG(std::isfinite(value),
                      "JSON cannot represent NaN or infinity");
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Int(int64_t value) {
  return Number(static_cast<double>(value));
}

JsonValue JsonValue::Uint(uint64_t value) {
  return Number(static_cast<double>(value));
}

JsonValue JsonValue::Str(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::bool_value() const {
  PREFCOVER_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  PREFCOVER_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::string_value() const {
  PREFCOVER_CHECK(is_string());
  return string_;
}

size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t index) const {
  PREFCOVER_CHECK(is_array() && index < array_.size());
  return array_[index];
}

JsonValue& JsonValue::Append(JsonValue element) {
  PREFCOVER_CHECK(is_array());
  array_.push_back(std::move(element));
  return array_.back();
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  PREFCOVER_CHECK(is_object());
  PREFCOVER_CHECK_MSG(Find(key) == nullptr, "duplicate JSON object key");
  object_.emplace_back(std::move(key), std::move(value));
  return object_.back().second;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  PREFCOVER_CHECK(is_object());
  return object_;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

std::string FormatJsonNumber(double value) {
  // Integral values within the exactly-representable range print without
  // a fraction, so counters look like counters.
  constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53
  if (value == std::floor(value) && std::fabs(value) <= kMaxExactInt) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  // Shortest round-trip representation, stable across runs.
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  PREFCOVER_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendIndent(std::string* out, int indent) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += FormatJsonNumber(number_);
      return;
    case Type::kString:
      AppendEscaped(out, string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        AppendIndent(out, indent + 1);
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(out, indent);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        AppendIndent(out, indent + 1);
        AppendEscaped(out, object_[i].first);
        *out += ": ";
        object_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < object_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(out, indent);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out.push_back('\n');
  return out;
}

namespace {

// Recursive-descent parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    PREFCOVER_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        PREFCOVER_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Str(std::move(s));
      }
      case 't':
        return ParseKeyword("true", JsonValue::Bool(true));
      case 'f':
        return ParseKeyword("false", JsonValue::Bool(false));
      case 'n':
        return ParseKeyword("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseKeyword(std::string_view word, JsonValue value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    // JSON forbids leading zeros ("01") even though from_chars accepts
    // them.
    size_t digits = start + (text_[start] == '-' ? 1 : 0);
    if (pos_ > digits + 1 && text_[digits] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[digits + 1]))) {
      return Error("leading zeros are not allowed");
    }
    double value = 0.0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Error("malformed number");
    }
    return JsonValue::Number(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode (BMP only; the harness never emits surrogates).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      PREFCOVER_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      arr.Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      PREFCOVER_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (obj.Find(key) != nullptr) return Error("duplicate key '" + key +
                                                 "'");
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      PREFCOVER_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace prefcover
