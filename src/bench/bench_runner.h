// The benchmark harness: runs BenchCases with pinned seeds, warmup and
// repetition counts, wall + CPU timing, percentile summaries, environment
// capture, and emits the stable-schema BENCH_core.json perf-trajectory
// document (schema documented in EXPERIMENTS.md and validated by
// ValidateBenchDocument).

#ifndef PREFCOVER_BENCH_BENCH_RUNNER_H_
#define PREFCOVER_BENCH_BENCH_RUNNER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_case.h"
#include "bench/env_capture.h"
#include "bench/json.h"
#include "obs/perf_counters.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace prefcover {

/// \brief Current BENCH_core.json schema version. Bump on any
/// backwards-incompatible change and update EXPERIMENTS.md.
inline constexpr int kBenchSchemaVersion = 1;

/// \brief Run-level harness configuration (the "config" JSON object).
struct BenchConfig {
  /// Suite id, e.g. "micro_core" or "fig4e_parallel_speedup".
  std::string suite;

  /// Seed the cases were built from. The harness itself draws no
  /// randomness; the seed is recorded so a run is reproducible.
  uint64_t seed = 42;

  /// Untimed executions of each case before measurement starts.
  uint64_t warmup = 1;

  /// Timed executions per case; percentiles summarize these.
  uint64_t repetitions = 5;
};

/// \brief Percentile summary of one case's repetitions, in milliseconds.
struct LatencySummary {
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p95_ms = 0.0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;

  /// Computed over `samples_ms` with linear interpolation.
  static LatencySummary FromSamples(std::vector<double> samples_ms);

  JsonValue ToJson() const;
};

/// \brief Measured outcome of one case.
struct BenchResult {
  // Identity, copied from the case.
  std::string name;
  std::string profile;
  std::string variant;
  std::string solver;
  uint64_t n = 0;
  uint64_t k = 0;
  uint64_t threads = 1;

  LatencySummary wall;
  LatencySummary cpu;

  /// Deterministic outputs (sorted by name): solver telemetry, covers.
  std::vector<std::pair<std::string, double>> counters;

  /// Perf-event totals accumulated over the timed repetitions (marked
  /// unsupported where perf_event_open is unavailable). Host-dependent:
  /// emitted as the per-case "perf_counters" subtree, which the
  /// determinism comparison skips like the run-level metrics subtree.
  obs::PerfCounterValues perf;
};

/// \brief Runs cases and accumulates results for emission.
class BenchRunner {
 public:
  explicit BenchRunner(BenchConfig config);

  /// Runs `bench_case` (warmup + repetitions) and appends its result.
  /// Case names must be unique within the run.
  Status Run(const BenchCase& bench_case);

  const BenchConfig& config() const { return config_; }
  const std::vector<BenchResult>& results() const { return results_; }

  /// The full BENCH_core.json document.
  JsonValue ToJson() const;

  /// Standalone perf-counter document for artifact upload:
  /// `{"schema_version": 1, "suite": ..., "supported": bool,
  ///   "cases": [{"name": ..., "perf_counters": {...}}]}`.
  JsonValue PerfCountersJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJsonFile(const std::string& path) const;

  /// Human-readable per-case summary (name, p50/p95 wall, CPU p50, and —
  /// when the host supports perf events — IPC and cache-miss rate).
  TablePrinter SummaryTable() const;

  /// Whether any completed case measured at least one perf event.
  bool AnyPerfSupported() const;

 private:
  BenchConfig config_;
  EnvCapture env_;
  obs::PerfCounterGroup perf_group_;
  std::vector<BenchResult> results_;
};

/// \brief Registers the harness flags every ported bench binary shares:
/// --json (output path; empty = don't write), --reps, --warmup, and
/// --perf_json (standalone perf-counter document path; empty = don't
/// write).
void AddBenchFlags(FlagParser* flags, int64_t default_reps,
                   int64_t default_warmup);

/// \brief Builds a BenchConfig from parsed AddBenchFlags values.
/// Rejects reps < 1 or warmup < 0.
Result<BenchConfig> BenchConfigFromFlags(const FlagParser& flags,
                                         std::string suite, uint64_t seed);

/// \brief Emission helper shared by the bench binaries: writes the JSON
/// file when --json was given, the perf-counter document when
/// --perf_json was given, and prints a confirmation line for each.
Status MaybeWriteBenchJson(const BenchRunner& runner,
                           const FlagParser& flags);

}  // namespace prefcover

#endif  // PREFCOVER_BENCH_BENCH_RUNNER_H_
