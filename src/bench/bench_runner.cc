#include "bench/bench_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>

#include "bench/metrics_json.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/timer.h"

namespace prefcover {

namespace {

// Per-process CPU time (all threads), so parallel cases report their true
// compute cost next to wall time.
double ProcessCpuSeconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace

void BenchRecorder::Record(const std::string& name, double value) {
  for (auto& [existing, v] : counters_) {
    if (existing == name) {
      v = value;
      return;
    }
  }
  counters_.emplace_back(name, value);
}

std::vector<std::pair<std::string, double>> BenchRecorder::Sorted() const {
  auto sorted = counters_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sorted;
}

LatencySummary LatencySummary::FromSamples(std::vector<double> samples_ms) {
  LatencySummary summary;
  if (samples_ms.empty()) return summary;
  QuantileSketch sketch;
  SummaryStats stats;
  sketch.Reserve(samples_ms.size());
  for (double s : samples_ms) {
    sketch.Add(s);
    stats.Add(s);
  }
  summary.p50_ms = sketch.Quantile(0.50);
  summary.p90_ms = sketch.Quantile(0.90);
  summary.p95_ms = sketch.Quantile(0.95);
  summary.mean_ms = stats.mean();
  summary.min_ms = stats.min();
  summary.max_ms = stats.max();
  return summary;
}

JsonValue LatencySummary::ToJson() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("p50", JsonValue::Number(p50_ms));
  obj.Set("p90", JsonValue::Number(p90_ms));
  obj.Set("p95", JsonValue::Number(p95_ms));
  obj.Set("mean", JsonValue::Number(mean_ms));
  obj.Set("min", JsonValue::Number(min_ms));
  obj.Set("max", JsonValue::Number(max_ms));
  return obj;
}

BenchRunner::BenchRunner(BenchConfig config)
    : config_(std::move(config)), env_(EnvCapture::Capture()) {
  PREFCOVER_CHECK_MSG(config_.repetitions >= 1,
                      "BenchConfig.repetitions must be >= 1");
}

Status BenchRunner::Run(const BenchCase& bench_case) {
  if (bench_case.name.empty() || !bench_case.run) {
    return Status::InvalidArgument("BenchCase needs a name and a body");
  }
  for (const BenchResult& existing : results_) {
    if (existing.name == bench_case.name) {
      return Status::AlreadyExists("duplicate bench case '" +
                                   bench_case.name + "'");
    }
  }

  BenchRecorder recorder;
  for (uint64_t i = 0; i < config_.warmup; ++i) {
    PREFCOVER_RETURN_NOT_OK(bench_case.run(&recorder));
    recorder.Clear();
  }

  std::vector<double> wall_ms, cpu_ms;
  wall_ms.reserve(config_.repetitions);
  cpu_ms.reserve(config_.repetitions);
  obs::PerfCounterValues perf;
  for (uint64_t i = 0; i < config_.repetitions; ++i) {
    recorder.Clear();
    double cpu_before = ProcessCpuSeconds();
    // Counters accumulate across repetitions so the derived ratios (IPC,
    // miss rates) average over the whole measured window.
    obs::PerfScope perf_scope(&perf_group_, &perf);
    Stopwatch watch;
    PREFCOVER_RETURN_NOT_OK(bench_case.run(&recorder));
    wall_ms.push_back(watch.ElapsedMillis());
    cpu_ms.push_back((ProcessCpuSeconds() - cpu_before) * 1e3);
  }

  BenchResult result;
  result.name = bench_case.name;
  result.profile = bench_case.profile;
  result.variant = bench_case.variant;
  result.solver = bench_case.solver;
  result.n = bench_case.n;
  result.k = bench_case.k;
  result.threads = bench_case.threads;
  result.wall = LatencySummary::FromSamples(std::move(wall_ms));
  result.cpu = LatencySummary::FromSamples(std::move(cpu_ms));
  result.counters = recorder.Sorted();
  result.perf = std::move(perf);
  results_.push_back(std::move(result));
  return Status::OK();
}

JsonValue BenchRunner::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Int(kBenchSchemaVersion));
  doc.Set("suite", JsonValue::Str(config_.suite));
  doc.Set("env", env_.ToJson());

  JsonValue config = JsonValue::Object();
  config.Set("seed", JsonValue::Uint(config_.seed));
  config.Set("warmup", JsonValue::Uint(config_.warmup));
  config.Set("repetitions", JsonValue::Uint(config_.repetitions));
  doc.Set("config", std::move(config));

  JsonValue cases = JsonValue::Array();
  for (const BenchResult& r : results_) {
    JsonValue c = JsonValue::Object();
    c.Set("name", JsonValue::Str(r.name));
    c.Set("profile", JsonValue::Str(r.profile));
    c.Set("variant", JsonValue::Str(r.variant));
    c.Set("solver", JsonValue::Str(r.solver));
    c.Set("n", JsonValue::Uint(r.n));
    c.Set("k", JsonValue::Uint(r.k));
    c.Set("threads", JsonValue::Uint(r.threads));
    c.Set("wall_ms", r.wall.ToJson());
    c.Set("cpu_ms", r.cpu.ToJson());
    JsonValue counters = JsonValue::Object();
    for (const auto& [name, value] : r.counters) {
      counters.Set(name, JsonValue::Number(value));
    }
    c.Set("counters", std::move(counters));
    // Host-dependent like the run-level metrics subtree: always present
    // (supported=false where perf_event_open is unavailable) so the
    // document shape is stable, and skipped by the determinism compare.
    c.Set("perf_counters", PerfCountersToJson(r.perf));
    cases.Append(std::move(c));
  }
  doc.Set("cases", std::move(cases));
  // Process-wide observability counters accumulated while the cases ran.
  // The subtree is schema-versioned on its own and excluded from the
  // determinism comparison (its totals depend on warmup counts and pool
  // scheduling), so it can grow without bumping kBenchSchemaVersion.
  doc.Set("metrics", MetricsSnapshotToJson(
                         obs::MetricsRegistry::Global().Snapshot()));
  return doc;
}

JsonValue BenchRunner::PerfCountersJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Int(kPerfCountersSchemaVersion));
  doc.Set("suite", JsonValue::Str(config_.suite));
  doc.Set("supported", JsonValue::Bool(AnyPerfSupported()));
  JsonValue cases = JsonValue::Array();
  for (const BenchResult& r : results_) {
    JsonValue c = JsonValue::Object();
    c.Set("name", JsonValue::Str(r.name));
    c.Set("perf_counters", PerfCountersToJson(r.perf));
    cases.Append(std::move(c));
  }
  doc.Set("cases", std::move(cases));
  return doc;
}

bool BenchRunner::AnyPerfSupported() const {
  for (const BenchResult& r : results_) {
    if (r.perf.supported) return true;
  }
  return false;
}

Status BenchRunner::WriteJsonFile(const std::string& path) const {
  // Atomic replace: bench trajectories are append-compared across runs,
  // so a crash must never leave a truncated JSON behind.
  return WriteFileAtomic(path, ToJson().Dump());
}

namespace {

std::string FormatRatio(double value, const char* unit = "") {
  if (!std::isfinite(value)) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f%s", value, unit);
  return buffer;
}

}  // namespace

TablePrinter BenchRunner::SummaryTable() const {
  const bool with_perf = AnyPerfSupported();
  std::vector<std::string> header = {"case",     "n",        "k",
                                     "threads",  "wall p50", "wall p95",
                                     "cpu p50"};
  if (with_perf) {
    header.push_back("ipc");
    header.push_back("br miss");
    header.push_back("cache miss");
  }
  TablePrinter table(header);
  for (const BenchResult& r : results_) {
    std::vector<std::string> row = {r.name,
                                    FormatCount(r.n),
                                    FormatCount(r.k),
                                    std::to_string(r.threads),
                                    FormatDuration(r.wall.p50_ms * 1e-3),
                                    FormatDuration(r.wall.p95_ms * 1e-3),
                                    FormatDuration(r.cpu.p50_ms * 1e-3)};
    if (with_perf) {
      row.push_back(FormatRatio(r.perf.Ipc()));
      row.push_back(FormatRatio(r.perf.BranchMissRate() * 100.0, "%"));
      row.push_back(FormatRatio(r.perf.CacheMissRate() * 100.0, "%"));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

void AddBenchFlags(FlagParser* flags, int64_t default_reps,
                   int64_t default_warmup) {
  flags->AddString("json", "",
                   "write the BENCH_core.json document to this path");
  flags->AddString("perf_json", "",
                   "write the standalone perf-counter document to this "
                   "path (supported=false where perf_event_open is "
                   "unavailable)");
  flags->AddInt("reps", default_reps, "timed repetitions per case");
  flags->AddInt("warmup", default_warmup,
                "untimed warmup executions per case");
}

Result<BenchConfig> BenchConfigFromFlags(const FlagParser& flags,
                                         std::string suite, uint64_t seed) {
  int64_t reps = flags.GetInt("reps");
  int64_t warmup = flags.GetInt("warmup");
  if (reps < 1) return Status::InvalidArgument("--reps must be >= 1");
  if (warmup < 0) return Status::InvalidArgument("--warmup must be >= 0");
  BenchConfig config;
  config.suite = std::move(suite);
  config.seed = seed;
  config.warmup = static_cast<uint64_t>(warmup);
  config.repetitions = static_cast<uint64_t>(reps);
  return config;
}

Status MaybeWriteBenchJson(const BenchRunner& runner,
                           const FlagParser& flags) {
  const std::string& path = flags.GetString("json");
  if (!path.empty()) {
    PREFCOVER_RETURN_NOT_OK(runner.WriteJsonFile(path));
    std::fprintf(stderr, "wrote %zu case(s) to %s\n",
                 runner.results().size(), path.c_str());
  }
  const std::string& perf_path = flags.GetString("perf_json");
  if (!perf_path.empty()) {
    PREFCOVER_RETURN_NOT_OK(
        WriteFileAtomic(perf_path, runner.PerfCountersJson().Dump()));
    std::fprintf(stderr, "wrote perf counters for %zu case(s) to %s\n",
                 runner.results().size(), perf_path.c_str());
  }
  return Status::OK();
}

}  // namespace prefcover
