#include "bench/pareto_json.h"

#include <utility>

#include "util/fs.h"

namespace prefcover {

JsonValue ParetoFrontierToJson(const std::vector<ParetoPoint>& frontier,
                               const ParetoArtifactMeta& meta) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Int(kParetoSchemaVersion));
  doc.Set("suite", JsonValue::Str("pareto_frontier"));
  JsonValue meta_obj = JsonValue::Object();
  meta_obj.Set("instance", JsonValue::Str(meta.instance));
  meta_obj.Set("variant", JsonValue::Str(std::string(VariantName(meta.variant))));
  meta_obj.Set("num_nodes", JsonValue::Uint(meta.num_nodes));
  meta_obj.Set("points_requested", JsonValue::Uint(meta.points_requested));
  doc.Set("meta", std::move(meta_obj));
  JsonValue points = JsonValue::Array();
  for (const ParetoPoint& point : frontier) {
    JsonValue rec = JsonValue::Object();
    rec.Set("budget", JsonValue::Number(point.budget));
    rec.Set("total_cost", JsonValue::Number(point.total_cost));
    rec.Set("cover", JsonValue::Number(point.cover));
    rec.Set("num_items", JsonValue::Uint(point.items.size()));
    JsonValue items = JsonValue::Array();
    for (NodeId v : point.items) items.Append(JsonValue::Uint(v));
    rec.Set("items", std::move(items));
    points.Append(std::move(rec));
  }
  doc.Set("frontier", std::move(points));
  return doc;
}

Status WriteParetoArtifact(const std::string& path,
                           const std::vector<ParetoPoint>& frontier,
                           const ParetoArtifactMeta& meta) {
  return WriteFileAtomic(path, ParetoFrontierToJson(frontier, meta).Dump());
}

}  // namespace prefcover
