// JSON rendering of an obs::MetricsSnapshot, used to embed a process-wide
// metrics subtree in BENCH_core.json and to implement the CLI's
// --metrics_out flag. The subtree carries its own schema version
// (independent of kBenchSchemaVersion) because its key set grows with
// instrumentation rather than with the perf-trajectory contract; the
// determinism comparison skips it entirely (see compare.cc).

#ifndef PREFCOVER_BENCH_METRICS_JSON_H_
#define PREFCOVER_BENCH_METRICS_JSON_H_

#include "bench/json.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"

namespace prefcover {

/// \brief Current schema of the metrics JSON subtree. Bump on any
/// backwards-incompatible shape change and update OBSERVABILITY.md.
inline constexpr int kMetricsSchemaVersion = 1;

/// \brief Current schema of the per-case perf_counters subtree. Versioned
/// independently of kBenchSchemaVersion for the same reason as the
/// metrics subtree: host-dependent content, excluded from determinism
/// comparison.
inline constexpr int kPerfCountersSchemaVersion = 1;

/// \brief Renders a snapshot as
/// `{"schema_version": 1, "counters": {...}, "gauges": {...},
///   "histograms": {name: {"bounds": [...], "counts": [...],
///   "total_count": N, "sum": S}}}`.
/// Entries appear in snapshot order (sorted by name), so the output is
/// byte-stable for a fixed set of instruments and values.
JsonValue MetricsSnapshotToJson(const obs::MetricsSnapshot& snapshot);

/// \brief Renders accumulated perf-event counters as
/// `{"schema_version": 1, "supported": bool, "events": {name: value},
///   "derived": {"ipc": ..., "branch_miss_rate": ...}}`.
/// Only measured events appear under "events"; only finite ratios appear
/// under "derived". When nothing was measured the object carries
/// `"supported": false` and an "unsupported_reason" string instead —
/// the subtree is always present so the document shape is host-stable.
JsonValue PerfCountersToJson(const obs::PerfCounterValues& values);

}  // namespace prefcover

#endif  // PREFCOVER_BENCH_METRICS_JSON_H_
