#include "bench/metrics_json.h"

#include <cmath>

namespace prefcover {

JsonValue MetricsSnapshotToJson(const obs::MetricsSnapshot& snapshot) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Int(kMetricsSchemaVersion));

  JsonValue counters = JsonValue::Object();
  for (const auto& c : snapshot.counters) {
    counters.Set(c.name, JsonValue::Uint(c.value));
  }
  doc.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& g : snapshot.gauges) {
    gauges.Set(g.name, JsonValue::Int(g.value));
  }
  doc.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Object();
  for (const auto& h : snapshot.histograms) {
    JsonValue entry = JsonValue::Object();
    JsonValue bounds = JsonValue::Array();
    for (double b : h.bounds) bounds.Append(JsonValue::Number(b));
    entry.Set("bounds", std::move(bounds));
    JsonValue counts = JsonValue::Array();
    for (uint64_t c : h.counts) counts.Append(JsonValue::Uint(c));
    entry.Set("counts", std::move(counts));
    entry.Set("total_count", JsonValue::Uint(h.total_count));
    entry.Set("sum", JsonValue::Number(h.sum));
    histograms.Set(h.name, std::move(entry));
  }
  doc.Set("histograms", std::move(histograms));
  return doc;
}

JsonValue PerfCountersToJson(const obs::PerfCounterValues& values) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Int(kPerfCountersSchemaVersion));
  doc.Set("supported", JsonValue::Bool(values.supported));
  if (!values.supported) {
    doc.Set("unsupported_reason", JsonValue::Str(values.unsupported_reason));
    return doc;
  }
  JsonValue events = JsonValue::Object();
  for (size_t i = 0; i < obs::kNumPerfEvents; ++i) {
    const auto event = static_cast<obs::PerfEvent>(i);
    if (!values.Has(event)) continue;
    events.Set(std::string(obs::PerfEventName(event)),
               JsonValue::Uint(values.Value(event)));
  }
  doc.Set("events", std::move(events));
  JsonValue derived = JsonValue::Object();
  const std::pair<const char*, double> ratios[] = {
      {"ipc", values.Ipc()},
      {"branch_miss_rate", values.BranchMissRate()},
      {"cache_miss_rate", values.CacheMissRate()},
      {"ghz", values.CyclesPerNanosecond()},
  };
  for (const auto& [name, ratio] : ratios) {
    if (std::isfinite(ratio)) derived.Set(name, JsonValue::Number(ratio));
  }
  doc.Set("derived", std::move(derived));
  return doc;
}

}  // namespace prefcover
