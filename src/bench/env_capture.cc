#include "bench/env_capture.h"

#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace prefcover {

namespace {

// The three configure-time definitions are optional: a build outside the
// repo checkout (e.g. an installed source tarball) still works.
#ifndef PREFCOVER_GIT_SHA
#define PREFCOVER_GIT_SHA "unknown"
#endif
#ifndef PREFCOVER_BUILD_TYPE
#define PREFCOVER_BUILD_TYPE "unknown"
#endif
#ifndef PREFCOVER_CXX_FLAGS
#define PREFCOVER_CXX_FLAGS "unknown"
#endif
#ifndef PREFCOVER_GIT_DESCRIBE
#define PREFCOVER_GIT_DESCRIBE "unknown"
#endif

std::string CompilerId() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string OsId() {
#if defined(__unix__) || defined(__APPLE__)
  struct utsname info;
  if (uname(&info) == 0) {
    return std::string(info.sysname) + " " + info.machine;
  }
#endif
  return "unknown";
}

}  // namespace

EnvCapture EnvCapture::Capture() {
  EnvCapture env;
  env.git_sha = PREFCOVER_GIT_SHA;
  env.build_type = PREFCOVER_BUILD_TYPE;
  env.compiler = CompilerId();
  env.cxx_flags = PREFCOVER_CXX_FLAGS;
  env.os = OsId();
  env.hardware_threads = std::thread::hardware_concurrency();
  return env;
}

std::string BuildVersionString() { return PREFCOVER_GIT_DESCRIBE; }

JsonValue EnvCapture::ToJson() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("git_sha", JsonValue::Str(git_sha));
  obj.Set("build_type", JsonValue::Str(build_type));
  obj.Set("compiler", JsonValue::Str(compiler));
  obj.Set("cxx_flags", JsonValue::Str(cxx_flags));
  obj.Set("os", JsonValue::Str(os));
  obj.Set("hardware_threads", JsonValue::Uint(hardware_threads));
  return obj;
}

}  // namespace prefcover
