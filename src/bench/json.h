// Minimal JSON document model for the benchmark harness: build, serialize
// and parse the BENCH_core.json perf-trajectory files.
//
// Deliberately small instead of a third-party dependency: insertion-ordered
// objects and round-trip-stable number formatting are what the harness
// needs so that two runs with the same seed serialize byte-identically in
// every non-timing field (the determinism contract bench_compare checks).

#ifndef PREFCOVER_BENCH_JSON_H_
#define PREFCOVER_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace prefcover {

/// \brief A JSON value: null, bool, number, string, array or object.
///
/// Objects preserve insertion order (serialization is deterministic) and
/// reject duplicate keys on Set. Numbers are doubles; integral values in
/// the exactly-representable range serialize without a decimal point.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Defaults to null.
  JsonValue() = default;

  /// \name Factories.
  /// @{
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue Int(int64_t value);
  static JsonValue Uint(uint64_t value);
  static JsonValue Str(std::string value);
  static JsonValue Array();
  static JsonValue Object();
  /// @}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// \name Scalar accessors; the value must have the matching type
  /// (checked).
  /// @{
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  /// @}

  /// Array/object element count; 0 for scalars.
  size_t size() const;

  /// \name Array access. `at` bounds-checks.
  /// @{
  const JsonValue& at(size_t index) const;
  JsonValue& Append(JsonValue element);
  /// @}

  /// \name Object access.
  /// @{
  /// Inserts `key`; dies on duplicates (schema bugs should fail loudly).
  JsonValue& Set(std::string key, JsonValue value);
  /// Member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;
  /// Members in insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// @}

  /// Serializes with 2-space indentation and a trailing newline at the top
  /// level; formatting is deterministic for equal documents.
  std::string Dump() const;

  /// Strict JSON parse of a complete document (trailing garbage is an
  /// error).
  static Result<JsonValue> Parse(std::string_view text);

  bool operator==(const JsonValue& other) const;

 private:
  void DumpTo(std::string* out, int indent) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// \brief Formats a double the way the harness serializes JSON numbers:
/// integral values without a decimal point, everything else shortest
/// round-trip. Exposed for tests and table rendering.
std::string FormatJsonNumber(double value);

}  // namespace prefcover

#endif  // PREFCOVER_BENCH_JSON_H_
