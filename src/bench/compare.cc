#include "bench/compare.h"

#include <cmath>

#include "bench/bench_runner.h"

namespace prefcover {

namespace {

Status SchemaError(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("BENCH_core.json schema violation at " +
                                 path + ": " + what);
}

Status RequireMember(const JsonValue& obj, const std::string& path,
                     const std::string& key, JsonValue::Type type,
                     const JsonValue** out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) {
    return SchemaError(path, "missing key '" + key + "'");
  }
  if (member->type() != type) {
    return SchemaError(path + "." + key, "wrong type");
  }
  *out = member;
  return Status::OK();
}

Status ValidateLatency(const JsonValue& obj, const std::string& path) {
  static const char* kFields[] = {"p50", "p90", "p95", "mean", "min", "max"};
  if (obj.size() != 6) {
    return SchemaError(path, "expected exactly the six summary fields");
  }
  for (const char* field : kFields) {
    const JsonValue* value = nullptr;
    PREFCOVER_RETURN_NOT_OK(
        RequireMember(obj, path, field, JsonValue::Type::kNumber, &value));
    if (value->number_value() < 0.0) {
      return SchemaError(path + "." + field, "negative duration");
    }
  }
  return Status::OK();
}

Status ValidateCase(const JsonValue& c, const std::string& path) {
  const JsonValue* member = nullptr;
  for (const char* key : {"name", "profile", "variant", "solver"}) {
    PREFCOVER_RETURN_NOT_OK(
        RequireMember(c, path, key, JsonValue::Type::kString, &member));
  }
  if (c.Find("name")->string_value().empty()) {
    return SchemaError(path + ".name", "empty case name");
  }
  for (const char* key : {"n", "k", "threads"}) {
    PREFCOVER_RETURN_NOT_OK(
        RequireMember(c, path, key, JsonValue::Type::kNumber, &member));
  }
  for (const char* key : {"wall_ms", "cpu_ms"}) {
    PREFCOVER_RETURN_NOT_OK(
        RequireMember(c, path, key, JsonValue::Type::kObject, &member));
    PREFCOVER_RETURN_NOT_OK(
        ValidateLatency(*member, path + "." + key));
  }
  PREFCOVER_RETURN_NOT_OK(
      RequireMember(c, path, "counters", JsonValue::Type::kObject, &member));
  for (const auto& [name, value] : member->members()) {
    if (!value.is_number()) {
      return SchemaError(path + ".counters." + name, "wrong type");
    }
  }
  // Optional (documents predating perf-event capture lack it): the
  // per-case perf-counter subtree. Host-dependent, so only its framing is
  // checked; the determinism comparison skips it entirely.
  const JsonValue* perf = c.Find("perf_counters");
  if (perf != nullptr) {
    const std::string perf_path = path + ".perf_counters";
    if (!perf->is_object()) return SchemaError(perf_path, "wrong type");
    PREFCOVER_RETURN_NOT_OK(RequireMember(*perf, perf_path, "schema_version",
                                          JsonValue::Type::kNumber, &member));
    PREFCOVER_RETURN_NOT_OK(RequireMember(*perf, perf_path, "supported",
                                          JsonValue::Type::kBool, &member));
  }
  return Status::OK();
}

}  // namespace

Status ValidateBenchDocument(const JsonValue& doc) {
  if (!doc.is_object()) {
    return SchemaError("$", "document must be an object");
  }
  const JsonValue* member = nullptr;
  PREFCOVER_RETURN_NOT_OK(RequireMember(doc, "$", "schema_version",
                                        JsonValue::Type::kNumber, &member));
  if (member->number_value() != kBenchSchemaVersion) {
    return SchemaError("$.schema_version",
                       "unsupported version (expected " +
                           std::to_string(kBenchSchemaVersion) + ")");
  }
  PREFCOVER_RETURN_NOT_OK(
      RequireMember(doc, "$", "suite", JsonValue::Type::kString, &member));

  const JsonValue* env = nullptr;
  PREFCOVER_RETURN_NOT_OK(
      RequireMember(doc, "$", "env", JsonValue::Type::kObject, &env));
  for (const char* key :
       {"git_sha", "build_type", "compiler", "cxx_flags", "os"}) {
    PREFCOVER_RETURN_NOT_OK(
        RequireMember(*env, "$.env", key, JsonValue::Type::kString, &member));
  }
  PREFCOVER_RETURN_NOT_OK(RequireMember(
      *env, "$.env", "hardware_threads", JsonValue::Type::kNumber, &member));

  const JsonValue* config = nullptr;
  PREFCOVER_RETURN_NOT_OK(
      RequireMember(doc, "$", "config", JsonValue::Type::kObject, &config));
  for (const char* key : {"seed", "warmup", "repetitions"}) {
    PREFCOVER_RETURN_NOT_OK(RequireMember(*config, "$.config", key,
                                          JsonValue::Type::kNumber, &member));
  }

  // Optional (documents predating the observability subsystem lack it):
  // the embedded process-metrics snapshot. When present it must carry its
  // own schema_version and the three instrument maps.
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics != nullptr) {
    if (!metrics->is_object()) {
      return SchemaError("$.metrics", "wrong type");
    }
    PREFCOVER_RETURN_NOT_OK(RequireMember(*metrics, "$.metrics",
                                          "schema_version",
                                          JsonValue::Type::kNumber, &member));
    for (const char* key : {"counters", "gauges", "histograms"}) {
      PREFCOVER_RETURN_NOT_OK(RequireMember(
          *metrics, "$.metrics", key, JsonValue::Type::kObject, &member));
    }
  }

  const JsonValue* cases = nullptr;
  PREFCOVER_RETURN_NOT_OK(
      RequireMember(doc, "$", "cases", JsonValue::Type::kArray, &cases));
  for (size_t i = 0; i < cases->size(); ++i) {
    const std::string path = "$.cases[" + std::to_string(i) + "]";
    if (!cases->at(i).is_object()) return SchemaError(path, "wrong type");
    PREFCOVER_RETURN_NOT_OK(ValidateCase(cases->at(i), path));
    const std::string& name = cases->at(i).Find("name")->string_value();
    for (size_t j = 0; j < i; ++j) {
      if (cases->at(j).Find("name")->string_value() == name) {
        return SchemaError(path + ".name",
                           "duplicate case name '" + name + "'");
      }
    }
  }
  return Status::OK();
}

namespace {

bool IsTimingKey(const std::string& key) {
  return key == "wall_ms" || key == "cpu_ms";
}

// Structural equality of two validated documents, ignoring the values (but
// not the shape) of the env and timing subtrees. `relaxed` marks a subtree
// whose leaf values are exempt from comparison.
void DiffValues(const JsonValue& a, const JsonValue& b,
                const std::string& path, bool relaxed, double tolerance,
                std::vector<std::string>* problems) {
  if (a.type() != b.type()) {
    problems->push_back(path + ": type differs");
    return;
  }
  switch (a.type()) {
    case JsonValue::Type::kNull:
      return;
    case JsonValue::Type::kBool:
      if (!relaxed && a.bool_value() != b.bool_value()) {
        problems->push_back(path + ": value differs");
      }
      return;
    case JsonValue::Type::kNumber:
      if (!relaxed &&
          !(std::fabs(a.number_value() - b.number_value()) <= tolerance)) {
        problems->push_back(path + ": " + FormatJsonNumber(a.number_value()) +
                            " != " + FormatJsonNumber(b.number_value()));
      }
      return;
    case JsonValue::Type::kString:
      if (!relaxed && a.string_value() != b.string_value()) {
        problems->push_back(path + ": \"" + a.string_value() + "\" != \"" +
                            b.string_value() + "\"");
      }
      return;
    case JsonValue::Type::kArray: {
      if (a.size() != b.size()) {
        problems->push_back(path + ": array length " +
                            std::to_string(a.size()) + " != " +
                            std::to_string(b.size()));
        return;
      }
      for (size_t i = 0; i < a.size(); ++i) {
        DiffValues(a.at(i), b.at(i), path + "[" + std::to_string(i) + "]",
                   relaxed, tolerance, problems);
      }
      return;
    }
    case JsonValue::Type::kObject: {
      // Key sets and order must match exactly in both modes — the schema
      // is part of the determinism contract.
      if (a.size() != b.size()) {
        problems->push_back(path + ": member count differs");
        return;
      }
      for (size_t i = 0; i < a.size(); ++i) {
        const auto& [key, value] = a.members()[i];
        const auto& [other_key, other_value] = b.members()[i];
        if (key != other_key) {
          problems->push_back(path + ": key '" + key + "' vs '" + other_key +
                              "'");
          return;
        }
        // The metrics snapshot is skipped outright — values and shape.
        // Its totals fold in warmup executions and pool scheduling, and
        // its key set is whatever instruments happened to fire, none of
        // which the determinism contract covers.
        if (path == "$" && key == "metrics") continue;
        // Same for the per-case perf-counter subtree: its content is a
        // property of the host (PMU availability, multiplexing), not of
        // the algorithm under test.
        if (key == "perf_counters" && path.rfind("$.cases[", 0) == 0) {
          continue;
        }
        bool child_relaxed =
            relaxed || IsTimingKey(key) || (path == "$" && key == "env");
        DiffValues(value, other_value, path + "." + key, child_relaxed,
                   tolerance, problems);
      }
      return;
    }
  }
}

const JsonValue* FindCase(const JsonValue& cases, const std::string& name) {
  for (size_t i = 0; i < cases.size(); ++i) {
    if (cases.at(i).Find("name")->string_value() == name) {
      return &cases.at(i);
    }
  }
  return nullptr;
}

}  // namespace

Result<BenchCompareReport> CompareBenchDocuments(
    const JsonValue& baseline, const JsonValue& current,
    const BenchCompareOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateBenchDocument(baseline));
  PREFCOVER_RETURN_NOT_OK(ValidateBenchDocument(current));

  BenchCompareReport report;
  if (options.determinism) {
    DiffValues(baseline, current, "$", /*relaxed=*/false, options.tolerance,
               &report.problems);
    return report;
  }

  const JsonValue& baseline_cases = *baseline.Find("cases");
  const JsonValue& current_cases = *current.Find("cases");
  for (size_t i = 0; i < baseline_cases.size(); ++i) {
    const JsonValue& base = baseline_cases.at(i);
    const std::string& name = base.Find("name")->string_value();
    const JsonValue* cur = FindCase(current_cases, name);
    if (cur == nullptr) {
      report.problems.push_back("case '" + name +
                                "' is in the baseline but missing from the "
                                "current run");
      continue;
    }
    CaseComparison cmp;
    cmp.name = name;
    cmp.baseline_p50_ms = base.Find("wall_ms")->Find("p50")->number_value();
    cmp.current_p50_ms = cur->Find("wall_ms")->Find("p50")->number_value();
    cmp.ratio = cmp.baseline_p50_ms > 0.0
                    ? cmp.current_p50_ms / cmp.baseline_p50_ms
                    : (cmp.current_p50_ms > 0.0 ? HUGE_VAL : 1.0);
    double delta_ms = cmp.current_p50_ms - cmp.baseline_p50_ms;
    cmp.regressed =
        cmp.ratio > 1.0 + options.p50_regression_threshold &&
        delta_ms > options.min_effect_ms;
    if (cmp.regressed) {
      report.problems.push_back(
          "case '" + name + "' regressed: p50 " +
          FormatJsonNumber(cmp.baseline_p50_ms) + " ms -> " +
          FormatJsonNumber(cmp.current_p50_ms) + " ms (" +
          FormatJsonNumber(cmp.ratio) + "x)");
    }
    report.cases.push_back(cmp);
  }
  for (size_t i = 0; i < current_cases.size(); ++i) {
    const std::string& name =
        current_cases.at(i).Find("name")->string_value();
    if (FindCase(baseline_cases, name) == nullptr) {
      report.new_cases.push_back(name);
    }
  }
  return report;
}

Result<CaseRatio> CompareCaseRatio(const JsonValue& doc,
                                   const std::string& case_name,
                                   const std::string& baseline_case,
                                   double max_ratio) {
  PREFCOVER_RETURN_NOT_OK(ValidateBenchDocument(doc));
  if (!(max_ratio > 0.0)) {
    return Status::InvalidArgument("max_ratio must be > 0");
  }
  const JsonValue& cases = *doc.Find("cases");
  const JsonValue* subject = FindCase(cases, case_name);
  if (subject == nullptr) {
    return Status::InvalidArgument("case '" + case_name +
                                   "' not found in the document");
  }
  const JsonValue* reference = FindCase(cases, baseline_case);
  if (reference == nullptr) {
    return Status::InvalidArgument("case '" + baseline_case +
                                   "' not found in the document");
  }
  CaseRatio out;
  out.case_p50_ms = subject->Find("wall_ms")->Find("p50")->number_value();
  out.baseline_p50_ms =
      reference->Find("wall_ms")->Find("p50")->number_value();
  out.ratio = out.baseline_p50_ms > 0.0
                  ? out.case_p50_ms / out.baseline_p50_ms
                  : (out.case_p50_ms > 0.0 ? HUGE_VAL : 1.0);
  out.within_bound = out.ratio <= max_ratio;
  return out;
}

}  // namespace prefcover
