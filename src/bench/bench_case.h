// One benchmark case: an identity (what was measured, on what input) plus
// a body the runner times. Cases are the unit of the BENCH_core.json
// schema and of bench_compare's regression matching, so names must be
// unique within a suite and stable across commits.

#ifndef PREFCOVER_BENCH_BENCH_CASE_H_
#define PREFCOVER_BENCH_BENCH_CASE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace prefcover {

/// \brief Sink for a case's deterministic outputs (solver telemetry,
/// covers, item counts). Everything recorded here lands in the case's
/// "counters" JSON object and participates in the determinism and golden
/// checks — record timings through the runner, never here.
class BenchRecorder {
 public:
  /// Sets counter `name`; re-recording overwrites (the runner keeps the
  /// last repetition's value, which equals every repetition's value for a
  /// deterministic case).
  void Record(const std::string& name, double value);

  /// Recorded counters sorted by name (deterministic serialization).
  std::vector<std::pair<std::string, double>> Sorted() const;

  void Clear() { counters_.clear(); }

 private:
  std::vector<std::pair<std::string, double>> counters_;
};

/// \brief A benchmark case the runner can measure.
struct BenchCase {
  /// Unique, stable case id within the suite, e.g.
  /// "solve/lazy_parallel/w4". bench_compare matches baseline and current
  /// records by this name.
  std::string name;

  /// \name Identity columns of the JSON record ("-" = not applicable).
  /// @{
  std::string profile = "-";
  std::string variant = "-";
  std::string solver = "-";
  uint64_t n = 0;
  uint64_t k = 0;
  uint64_t threads = 1;
  /// @}

  /// One measured repetition. Called `warmup + repetitions` times; the
  /// body must do the same deterministic work each time. A non-OK status
  /// aborts the suite.
  std::function<Status(BenchRecorder*)> run;
};

}  // namespace prefcover

#endif  // PREFCOVER_BENCH_BENCH_CASE_H_
