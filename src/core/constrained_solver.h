// Constrained-cover solver family: the paper's Section-7 "storage and
// revenue aware" future work as a first-class solver. One ConstraintSpec
// describes per-item costs with a knapsack budget, per-category min/max
// retention quotas (from the src/synth/ catalog model), or any
// combination, and SolveConstrainedCover maximizes C(S) subject to it
// with a cost-ratio lazy greedy over the same coverage kernels the
// unconstrained executions use.
//
// Algorithm. Two phases over a CELF heap ordered by gain/cost:
//
//   1. Quota fill: while any category is below its minimum, pick the
//      best-ratio admissible member of a deficient category. Under a
//      budget, admissibility reserves enough of the remaining budget to
//      finish every other deficit with its cheapest members, so phase 1
//      never strands the minima (see DESIGN.md "Constrained covers").
//   2. Free selection: plain cost-ratio lazy greedy over all admissible
//      candidates (affordable, category below its max) until the item
//      budget k, the knapsack budget, or the candidate pool runs out.
//
// The heap reuses the PR 6 machinery: gains come from the coverage
// kernels (bit-identical at every SIMD level), and the seed walks the
// static gain-bound order by descending bound(v)/cost(v) — Gain(v) <=
// bound(v) against any retained set and costs are positive, so
// bound(v)/cost(v) upper-bounds the ratio and the walk early-exits
// exactly like the unconstrained bounded seed. Solutions are therefore
// byte-identical across scalar/word/avx2, and with unit costs and no
// constraints the selection reduces bitwise to SolveGreedy's (gain/1.0
// is the gain, ties break to the smaller id in both).
//
// Guarantee. With a budget and no minimum quotas, the returned solution
// is the better of the ratio-greedy run and the best affordable
// singleton, which achieves (1 - 1/e)/2 of the optimal budgeted cover
// (Khuller-Moss-Naor; cf. PAPERS.md "Maximum weighted independent sets
// with a budget"). The differential suite checks the bound against
// brute force on every constraint combination.

#ifndef PREFCOVER_CORE_CONSTRAINED_SOLVER_H_
#define PREFCOVER_CORE_CONSTRAINED_SOLVER_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/solution.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief `CategoryQuota::max_items` value meaning "no maximum".
inline constexpr uint32_t kUnboundedQuota =
    std::numeric_limits<uint32_t>::max();

/// \brief Retention quota of one category: the solution must retain at
/// least `min_items` and at most `max_items` of its members.
struct CategoryQuota {
  uint32_t min_items = 0;
  uint32_t max_items = kUnboundedQuota;
};

/// \brief The unified constraint model: knapsack budget over per-item
/// costs, per-category retention quotas, or both. Default-constructed it
/// is unconstrained (unit costs, infinite budget, no quotas) and
/// SolveConstrainedCover degenerates to plain greedy.
struct ConstraintSpec {
  /// Per-item inventory costs; empty means unit cost for every item,
  /// otherwise one finite positive entry per node.
  std::vector<double> costs;

  /// Knapsack budget: sum of retained costs must stay <= budget.
  /// +infinity (the default) disables the budget; 0 is a valid
  /// degenerate budget (nothing is affordable).
  double budget = std::numeric_limits<double>::infinity();

  /// Category of every item (one entry per node, values indexing
  /// `quotas`); empty together with `quotas` means no quota constraints.
  /// Typically Catalog::CategoryAssignment() from src/synth/.
  std::vector<uint32_t> categories;

  /// Quota of each category, indexed by the ids in `categories`.
  std::vector<CategoryQuota> quotas;

  bool HasBudget() const { return std::isfinite(budget); }
  bool HasQuotas() const { return !quotas.empty(); }
  bool HasMinQuotas() const {
    for (const CategoryQuota& q : quotas) {
      if (q.min_items > 0) return true;
    }
    return false;
  }
  bool UnitCosts() const { return costs.empty(); }
  double CostOf(NodeId v) const { return costs.empty() ? 1.0 : costs[v]; }
};

/// \brief Options of a constrained solve.
struct ConstrainedCoverOptions {
  Variant variant = Variant::kIndependent;

  /// Maximum number of retained items (the paper's k); 0 means no
  /// cardinality bound beyond n.
  size_t max_items = 0;
};

/// \brief A constrained solve outcome: the Solution plus the constraint
/// accounting the caller needs to audit feasibility.
struct ConstrainedSolution {
  /// algorithm == "constrained-greedy". Items are in selection order
  /// (quota fill first, then free cost-ratio picks); when the singleton
  /// guard wins, the single item replaces the greedy sequence.
  Solution solution;

  /// Sum of CostOf over the retained items (<= spec.budget).
  double total_cost = 0.0;

  /// False when the best-affordable-singleton fallback beat the greedy
  /// run (the (1 - 1/e)/2 guard; only possible under a budget).
  bool greedy_won = true;

  /// Retained items per category, indexed like spec.quotas; empty when
  /// the spec carries no quotas.
  std::vector<uint32_t> category_counts;
};

/// \brief Shape validation of a spec against a graph: cost vector length
/// and positivity/finiteness, budget not NaN/negative, categories/quotas
/// lengths, category ids in range, min <= max per quota. Returns
/// InvalidArgument naming the offending field. (Feasibility against k
/// and the budget — sum of minima, reservation cost — is checked by
/// SolveConstrainedCover, which has the budget k.)
Status ValidateConstraintSpec(const PreferenceGraph& graph,
                              const ConstraintSpec& spec);

/// \brief Cost-ratio lazy greedy under `spec`, byte-identical at every
/// SIMD level. Infeasible minima (more than the category holds, more
/// than k in total, or unaffordable under the budget) return
/// FailedPrecondition; an over-tight budget with no minima is not an
/// error — the solution is simply small or empty.
Result<ConstrainedSolution> SolveConstrainedCover(
    const PreferenceGraph& graph, const ConstraintSpec& spec,
    const ConstrainedCoverOptions& options = ConstrainedCoverOptions());

/// \brief One point of the coverage-vs-inventory-cost frontier.
struct ParetoPoint {
  /// The budget this point was solved at.
  double budget = 0.0;
  /// Cost actually spent (<= budget) and the cover it buys.
  double total_cost = 0.0;
  double cover = 0.0;
  /// Retained items in selection order.
  std::vector<NodeId> items;
};

/// \brief Options of a frontier sweep.
struct ParetoSweepOptions {
  Variant variant = Variant::kIndependent;

  /// Per-item costs; empty = unit costs (see ConstraintSpec::costs).
  std::vector<double> costs;

  /// Explicit budget schedule. Empty = an automatic linear schedule of
  /// `num_points` budgets from the cheapest single item to the total
  /// catalog cost.
  std::vector<double> budgets;

  /// Size of the automatic schedule (>= 1); ignored when `budgets` is
  /// given.
  size_t num_points = 16;

  /// Cardinality bound per point; 0 = none (see ConstrainedCoverOptions).
  size_t max_items = 0;
};

/// \brief Sweeps SolveConstrainedCover across the budget schedule and
/// returns the non-dominated frontier: points sorted by ascending
/// total_cost with strictly increasing cover (dominated and duplicate
/// points dropped). Deterministic in (graph, options) — the bench
/// artifact emission (src/bench/pareto_json.h) is golden-locked on it.
Result<std::vector<ParetoPoint>> SolveParetoFrontier(
    const PreferenceGraph& graph, const ParetoSweepOptions& options);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_CONSTRAINED_SOLVER_H_
