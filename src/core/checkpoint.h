// Crash-safe checkpointing of greedy solves.
//
// Algorithm 1 is incremental: after j selections the state is entirely
// determined by the (ordered) selected prefix, so a checkpoint is just
//
//   (graph digest, options hash, variant, k, selected prefix)
//
// and resume is "replay AddNode over the prefix, then keep searching".
// Because every greedy execution breaks ties deterministically (smaller
// node id), the resumed run re-joins the exact selection order of an
// uninterrupted run — killed-and-resumed solves are byte-identical to
// never-killed ones (asserted by tests/integration/kill_resume_test.cc).
//
// File format (little-endian; see ROBUSTNESS.md for the layout diagram):
//
//   offset  size  field
//   0       8     magic "PCCKPT01"
//   8       4     version (currently 1)
//   12      8     graph digest   (GraphDigest of the instance)
//   20      8     options hash   (GreedyOptionsHash: k, variant,
//                                 stop_at_cover, force lists)
//   28      1     variant        (0 independent, 1 normalized)
//   29      8     budget k
//   37      8     prefix length P
//   45      4*P   prefix node ids, selection order
//   45+4P   4     CRC-32 (IEEE) over bytes [0, 45+4P)
//
// Checkpoints are written via util::WriteFileAtomic, so a crash at any
// instant leaves either the previous checkpoint or the new one — never a
// torn file. The CRC footer additionally rejects bit rot and files from
// foreign tools.

#ifndef PREFCOVER_CORE_CHECKPOINT_H_
#define PREFCOVER_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/greedy_solver.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief Names of the counters the checkpoint layer publishes in
/// obs::MetricsRegistry::Global().
namespace checkpoint_metric {
inline constexpr char kWrites[] = "checkpoint.writes";
inline constexpr char kBytes[] = "checkpoint.bytes";
inline constexpr char kWriteFailures[] = "checkpoint.write_failures";
inline constexpr char kResumes[] = "checkpoint.resumes";
}  // namespace checkpoint_metric

/// \brief A solver checkpoint: enough to resume, plus enough to refuse
/// resuming against the wrong instance.
struct Checkpoint {
  uint64_t graph_digest = 0;
  uint64_t options_hash = 0;
  Variant variant = Variant::kIndependent;
  uint64_t k = 0;
  std::vector<NodeId> prefix;  // selection order
};

/// \brief Order-sensitive FNV-1a digest of a preference graph (node
/// count, weights, CSR adjacency with edge weights). O(n + m); computed
/// once per checkpointed solve and once per resume validation.
uint64_t GraphDigest(const PreferenceGraph& graph);

/// \brief Digest of everything that determines the greedy selection
/// order: k, variant, stop_at_cover, force_include, force_exclude.
/// Deliberately excludes batch_size/threads (every execution selects the
/// identical sequence) and the checkpoint/cancel fields themselves, so a
/// resume may use a different execution, pool width or cadence.
uint64_t GreedyOptionsHash(const GreedyOptions& options, size_t k);

/// \brief Serializes `checkpoint` and atomically replaces `path`.
Status WriteCheckpoint(const std::string& path,
                       const Checkpoint& checkpoint);

/// \brief Loads and integrity-checks a checkpoint file (magic, version,
/// CRC, internal consistency). Fails with Corruption on any mismatch.
Result<Checkpoint> ReadCheckpoint(const std::string& path);

/// \brief Validates `checkpoint` against the instance about to resume:
/// graph digest, options hash, variant and k must match, and the prefix
/// must be a plausible selection (distinct, in range, within budget,
/// disjoint from force_exclude). Returns the prefix to install as
/// `CheckpointConfig::resume_prefix`, or FailedPrecondition describing
/// the first mismatch.
Result<std::vector<NodeId>> ValidateCheckpointForResume(
    const Checkpoint& checkpoint, const PreferenceGraph& graph, size_t k,
    const GreedyOptions& options);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_CHECKPOINT_H_
