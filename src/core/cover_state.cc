#include "core/cover_state.h"

#include "util/logging.h"

namespace prefcover {

CoverState::CoverState(const PreferenceGraph* graph, Variant variant)
    : CoverState(graph, variant, ActiveSimdLevel()) {}

CoverState::CoverState(const PreferenceGraph* graph, Variant variant,
                       SimdLevel level)
    : graph_(graph),
      variant_(variant),
      level_(ClampKernelLevel(level, graph->NumNodes())),
      retained_(graph->NumNodes()),
      item_(graph->NumNodes(), 0.0),
      residual_(graph->NumNodes(), 0.0) {
  RefreshResidualsKernel(graph_->NodeWeights(), item_, residual_, level_);
  if (variant_ == Variant::kNormalized && level_ != SimdLevel::kScalar) {
    static_gain_ = BuildStaticGainTable(*graph_);
  }
}

CoverStateView CoverState::View() const {
  return {graph_->NodeWeights(), item_, residual_, static_gain_, &retained_};
}

MutableCoverStateView CoverState::MutableView() {
  return {graph_->NodeWeights(), item_, residual_, static_gain_, &retained_};
}

double CoverState::GainOf(NodeId v) const {
  PREFCOVER_DCHECK(!retained_.Test(v));
  return GainKernel(*graph_, View(), v, variant_, level_);
}

void CoverState::GainsInto(size_t begin, size_t end,
                           std::span<double> gains) const {
  GainRangeKernel(*graph_, View(), begin, end, variant_, level_, gains);
}

void CoverState::AddNode(NodeId v) {
  PREFCOVER_DCHECK(!retained_.Test(v));
  retained_.Set(v);
  ++num_retained_;
  // Lines 2-3 of Algorithms 3/5: v now covers itself completely.
  cover_ += graph_->NodeWeight(v) - item_[v];
  item_[v] = graph_->NodeWeight(v);
  residual_[v] = graph_->NodeWeight(v) - item_[v];  // exactly +0.0
  AddNodeUpdateKernel(*graph_, MutableView(), v, variant_, level_, &cover_);
}

double CoverState::ItemCoverage(NodeId v) const {
  if (retained_.Test(v)) return 1.0;
  double w = graph_->NodeWeight(v);
  if (w <= 0.0) return 0.0;
  return item_[v] / w;
}

void CoverState::Reset() {
  retained_.Reset();
  item_.assign(graph_->NumNodes(), 0.0);
  RefreshResidualsKernel(graph_->NodeWeights(), item_, residual_, level_);
  cover_ = 0.0;
  num_retained_ = 0;
}

}  // namespace prefcover
