#include "core/cover_state.h"

namespace prefcover {

CoverState::CoverState(const PreferenceGraph* graph, Variant variant)
    : graph_(graph),
      variant_(variant),
      retained_(graph->NumNodes()),
      item_(graph->NumNodes(), 0.0) {}

double CoverState::GainOf(NodeId v) const {
  PREFCOVER_DCHECK(!retained_.Test(v));
  // Line 1 of Algorithms 2/4: the candidate's own uncovered weight.
  double gain = graph_->NodeWeight(v) - item_[v];
  AdjacencyView in = graph_->InNeighbors(v);
  switch (variant_) {
    case Variant::kNormalized:
      // Algorithm 2: each non-retained u with edge (u, v) newly routes
      // W(u) * W(u, v) of its requests to v. Retained u are fully covered
      // already (I[u] == W(u)); adding their term would double count.
      // u == v (a self-loop, as produced by the VC_k reduction) is also
      // excluded: v's own weight is fully accounted for by line 1.
      for (size_t i = 0; i < in.size(); ++i) {
        NodeId u = in.nodes[i];
        if (u != v && !retained_.Test(u)) {
          gain += graph_->NodeWeight(u) * in.weights[i];
        }
      }
      break;
    case Variant::kIndependent:
      // Algorithm 4: the residual uncovered mass of u, W(u) - I[u], is
      // matched by v independently with probability W(u, v).
      for (size_t i = 0; i < in.size(); ++i) {
        NodeId u = in.nodes[i];
        if (u != v && !retained_.Test(u)) {
          gain += in.weights[i] * (graph_->NodeWeight(u) - item_[u]);
        }
      }
      break;
  }
  return gain;
}

void CoverState::AddNode(NodeId v) {
  PREFCOVER_DCHECK(!retained_.Test(v));
  retained_.Set(v);
  ++num_retained_;
  // Lines 2-3 of Algorithms 3/5: v now covers itself completely.
  cover_ += graph_->NodeWeight(v) - item_[v];
  item_[v] = graph_->NodeWeight(v);

  AdjacencyView in = graph_->InNeighbors(v);
  switch (variant_) {
    case Variant::kNormalized:
      for (size_t i = 0; i < in.size(); ++i) {
        NodeId u = in.nodes[i];
        if (retained_.Test(u)) continue;
        double delta = graph_->NodeWeight(u) * in.weights[i];
        cover_ += delta;
        item_[u] += delta;
      }
      break;
    case Variant::kIndependent:
      for (size_t i = 0; i < in.size(); ++i) {
        NodeId u = in.nodes[i];
        if (retained_.Test(u)) continue;
        double delta = in.weights[i] * (graph_->NodeWeight(u) - item_[u]);
        cover_ += delta;
        item_[u] += delta;
      }
      break;
  }
}

double CoverState::ItemCoverage(NodeId v) const {
  if (retained_.Test(v)) return 1.0;
  double w = graph_->NodeWeight(v);
  if (w <= 0.0) return 0.0;
  return item_[v] / w;
}

void CoverState::Reset() {
  retained_.Reset();
  item_.assign(graph_->NumNodes(), 0.0);
  cover_ = 0.0;
  num_retained_ = 0;
}

}  // namespace prefcover
