#include "core/max_vertex_cover.h"

#include <vector>

#include "core/brute_force_solver.h"  // BinomialCoefficient
#include "util/bitset.h"

namespace prefcover {

VertexCoverInstance::VertexCoverInstance(size_t num_nodes)
    : num_nodes_(num_nodes) {}

Status VertexCoverInstance::AddEdge(NodeId u, NodeId v, double weight) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (!(weight > 0.0)) {
    return Status::InvalidArgument("edge weight must be positive");
  }
  endpoints_u_.push_back(u);
  endpoints_v_.push_back(v);
  weights_.push_back(weight);
  return Status::OK();
}

double VertexCoverInstance::CoveredWeight(
    const std::vector<NodeId>& cover) const {
  Bitset in_cover(num_nodes_);
  for (NodeId v : cover) in_cover.Set(v);
  double total = 0.0;
  for (size_t e = 0; e < NumEdges(); ++e) {
    if (in_cover.Test(endpoints_u_[e]) || in_cover.Test(endpoints_v_[e])) {
      total += weights_[e];
    }
  }
  return total;
}

double VertexCoverInstance::TotalWeight() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  return total;
}

Result<std::vector<NodeId>> SolveVertexCoverGreedy(
    const VertexCoverInstance& instance, size_t k) {
  const size_t n = instance.NumNodes();
  if (k > n) {
    return Status::InvalidArgument("budget k exceeds node count");
  }
  // Incidence lists so marginal degree weight updates stay local.
  std::vector<std::vector<size_t>> incident(n);
  for (size_t e = 0; e < instance.NumEdges(); ++e) {
    incident[instance.EdgeU(e)].push_back(e);
    if (instance.EdgeV(e) != instance.EdgeU(e)) {
      incident[instance.EdgeV(e)].push_back(e);
    }
  }
  std::vector<double> marginal(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    for (size_t e : incident[v]) marginal[v] += instance.EdgeWeight(e);
  }

  Bitset chosen(n);
  Bitset edge_covered(instance.NumEdges());
  std::vector<NodeId> cover;
  cover.reserve(k);
  for (size_t round = 0; round < k; ++round) {
    NodeId best = kInvalidNode;
    double best_weight = -1.0;
    for (NodeId v = 0; v < n; ++v) {
      if (chosen.Test(v)) continue;
      if (marginal[v] > best_weight) {
        best_weight = marginal[v];
        best = v;
      }
    }
    if (best == kInvalidNode) break;
    chosen.Set(best);
    cover.push_back(best);
    for (size_t e : incident[best]) {
      if (edge_covered.Test(e)) continue;
      edge_covered.Set(e);
      double w = instance.EdgeWeight(e);
      NodeId u = instance.EdgeU(e);
      NodeId v = instance.EdgeV(e);
      marginal[u] -= w;
      if (v != u) marginal[v] -= w;
    }
  }
  return cover;
}

Result<std::vector<NodeId>> SolveVertexCoverBruteForce(
    const VertexCoverInstance& instance, size_t k, uint64_t max_subsets) {
  const size_t n = instance.NumNodes();
  if (k > n) {
    return Status::InvalidArgument("budget k exceeds node count");
  }
  uint64_t subsets = BinomialCoefficient(n, k);
  if (max_subsets != 0 && subsets > max_subsets) {
    return Status::FailedPrecondition("instance too large for brute force");
  }
  std::vector<NodeId> current(k);
  for (size_t i = 0; i < k; ++i) current[i] = static_cast<NodeId>(i);
  std::vector<NodeId> best = current;
  double best_weight = k == 0 ? 0.0 : instance.CoveredWeight(current);
  if (k > 0) {
    for (;;) {
      size_t i = k;
      while (i > 0) {
        --i;
        if (current[i] != static_cast<NodeId>(n - k + i)) break;
        if (i == 0) {
          i = k;
          break;
        }
      }
      if (i == k) break;
      ++current[i];
      for (size_t j = i + 1; j < k; ++j) current[j] = current[j - 1] + 1;
      double w = instance.CoveredWeight(current);
      if (w > best_weight + 1e-15) {
        best_weight = w;
        best = current;
      }
    }
  }
  return best;
}

}  // namespace prefcover
