#include "core/coverage_kernels.h"

#include <cstdint>
#include <limits>

#include "util/logging.h"

namespace prefcover {

#if defined(PREFCOVER_HAVE_AVX2)
// Defined in coverage_kernels_avx2.cc (compiled with -mavx2; reached
// only when the CPU reports AVX2 — see ClampKernelLevel).
namespace internal {
double GainIndependentAvx2(const NodeId* nodes, const double* weights,
                           size_t degree, const double* residual, NodeId v,
                           double gain);
double GainNormalizedAvx2(const NodeId* nodes, const double* static_gain,
                          size_t degree, const uint64_t* retained_words,
                          NodeId v, double gain);
void AddNodeIndependentAvx2(const NodeId* nodes, const double* weights,
                            size_t degree, const double* node_weights,
                            double* item, double* residual, double* cover);
void AddNodeNormalizedAvx2(const NodeId* nodes, const double* static_gain,
                           size_t degree, const uint64_t* retained_words,
                           const double* node_weights, double* item,
                           double* residual, double* cover);
void RefreshResidualsAvx2(const double* node_weights, const double* item,
                          double* residual, size_t n);
void GainRangeIndependentAvx2(const NodeId* src, const double* weights,
                              const size_t* off, size_t begin, size_t end,
                              const double* residual, double* out);
void GainRangeNormalizedAvx2(const NodeId* src, const double* static_gain,
                             const size_t* off, size_t begin, size_t end,
                             const uint64_t* retained_words,
                             const double* residual, double* out);
}  // namespace internal
#endif  // PREFCOVER_HAVE_AVX2

namespace {

// ---- kScalar: the pre-overhaul reference loops, verbatim. These are the
// oracle of the differential suite; do not restructure them.

double GainScalar(const PreferenceGraph& graph, const CoverStateView& s,
                  NodeId v, Variant variant) {
  double gain = graph.NodeWeight(v) - s.item[v];
  AdjacencyView in = graph.InNeighbors(v);
  switch (variant) {
    case Variant::kNormalized:
      for (size_t i = 0; i < in.size(); ++i) {
        NodeId u = in.nodes[i];
        if (u != v && !s.retained->Test(u)) {
          gain += graph.NodeWeight(u) * in.weights[i];
        }
      }
      break;
    case Variant::kIndependent:
      for (size_t i = 0; i < in.size(); ++i) {
        NodeId u = in.nodes[i];
        if (u != v && !s.retained->Test(u)) {
          gain += in.weights[i] * (graph.NodeWeight(u) - s.item[u]);
        }
      }
      break;
  }
  return gain;
}

void AddNodeScalar(const PreferenceGraph& graph,
                   const MutableCoverStateView& s, NodeId v, Variant variant,
                   double* cover) {
  AdjacencyView in = graph.InNeighbors(v);
  switch (variant) {
    case Variant::kNormalized:
      for (size_t i = 0; i < in.size(); ++i) {
        NodeId u = in.nodes[i];
        if (s.retained->Test(u)) continue;
        double delta = graph.NodeWeight(u) * in.weights[i];
        *cover += delta;
        s.item[u] += delta;
        s.residual[u] = graph.NodeWeight(u) - s.item[u];
      }
      break;
    case Variant::kIndependent:
      for (size_t i = 0; i < in.size(); ++i) {
        NodeId u = in.nodes[i];
        if (s.retained->Test(u)) continue;
        double delta = in.weights[i] * (graph.NodeWeight(u) - s.item[u]);
        *cover += delta;
        s.item[u] += delta;
        s.residual[u] = graph.NodeWeight(u) - s.item[u];
      }
      break;
  }
}

// ---- kWord: branchless portable loops over the SoA layout. Masked-out
// terms are the bitwise-neutral +0.0 (header: byte-identity argument).

double GainWordIndependent(const AdjacencyView& in, const double* residual,
                           NodeId v, double gain) {
  // Retained u carry residual == +0.0, so no membership test is needed;
  // only the self-loop lane is masked.
  for (size_t i = 0; i < in.size(); ++i) {
    NodeId u = in.nodes[i];
    double term = in.weights[i] * residual[u];
    gain += (u == v) ? 0.0 : term;
  }
  return gain;
}

double GainWordNormalized(const AdjacencyView& in, const double* static_gain,
                          const Bitset& retained, NodeId v, double gain) {
  for (size_t i = 0; i < in.size(); ++i) {
    NodeId u = in.nodes[i];
    bool masked = (u == v) || retained.Test(u);
    gain += masked ? 0.0 : static_gain[i];
  }
  return gain;
}

void AddNodeWordIndependent(const AdjacencyView& in,
                            const MutableCoverStateView& s, double* cover) {
  // delta is +0.0 for every retained u (incl. v's self-loop): cover,
  // item and residual writes are all bitwise no-ops there.
  for (size_t i = 0; i < in.size(); ++i) {
    NodeId u = in.nodes[i];
    double delta = in.weights[i] * s.residual[u];
    *cover += delta;
    s.item[u] += delta;
    s.residual[u] = s.node_weights[u] - s.item[u];
  }
}

void AddNodeWordNormalized(const AdjacencyView& in, const double* static_gain,
                           const MutableCoverStateView& s, double* cover) {
  for (size_t i = 0; i < in.size(); ++i) {
    NodeId u = in.nodes[i];
    double delta = s.retained->Test(u) ? 0.0 : static_gain[i];
    *cover += delta;
    s.item[u] += delta;
    s.residual[u] = s.node_weights[u] - s.item[u];
  }
}

}  // namespace

SimdLevel ClampKernelLevel(SimdLevel level, size_t num_nodes) {
  if (level != SimdLevel::kAvx2) return level;
  if (num_nodes >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    return SimdLevel::kWord;
  }
#if defined(PREFCOVER_HAVE_AVX2)
  if (CpuSupportsAvx2()) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kWord;
}

double GainKernel(const PreferenceGraph& graph, const CoverStateView& s,
                  NodeId v, Variant variant, SimdLevel level) {
  if (level == SimdLevel::kScalar) return GainScalar(graph, s, v, variant);
  AdjacencyView in = graph.InNeighbors(v);
  double gain = s.residual[v];  // == W(v) - item[v], fresh subtraction
#if defined(PREFCOVER_HAVE_AVX2)
  if (level == SimdLevel::kAvx2) {
    switch (variant) {
      case Variant::kIndependent:
        return internal::GainIndependentAvx2(in.nodes.data(),
                                             in.weights.data(), in.size(),
                                             s.residual.data(), v, gain);
      case Variant::kNormalized:
        return internal::GainNormalizedAvx2(
            in.nodes.data(),
            s.static_gain.data() + graph.InEdgeOffset(v), in.size(),
            s.retained->WordData(), v, gain);
    }
  }
#endif
  switch (variant) {
    case Variant::kIndependent:
      return GainWordIndependent(in, s.residual.data(), v, gain);
    case Variant::kNormalized:
      return GainWordNormalized(in,
                                s.static_gain.data() + graph.InEdgeOffset(v),
                                *s.retained, v, gain);
  }
  return gain;
}

void GainRangeKernel(const PreferenceGraph& graph, const CoverStateView& s,
                     size_t begin, size_t end, Variant variant,
                     SimdLevel level, std::span<double> out) {
  PREFCOVER_DCHECK(begin <= end && end <= graph.NumNodes());
  PREFCOVER_DCHECK(out.size() >= end);
  if (level == SimdLevel::kScalar) {
    // The oracle composition: one reference GainOf per node.
    for (size_t v = begin; v < end; ++v) {
      out[v] = GainScalar(graph, s, static_cast<NodeId>(v), variant);
    }
    return;
  }
  const size_t* off = graph.InEdgeOffsets().data();
  const NodeId* src = graph.InEdgeSources().data();
  const double* residual = s.residual.data();
#if defined(PREFCOVER_HAVE_AVX2)
  if (level == SimdLevel::kAvx2) {
    switch (variant) {
      case Variant::kIndependent:
        internal::GainRangeIndependentAvx2(src,
                                           graph.InEdgeWeights().data(), off,
                                           begin, end, residual, out.data());
        return;
      case Variant::kNormalized:
        internal::GainRangeNormalizedAvx2(src, s.static_gain.data(), off,
                                          begin, end, s.retained->WordData(),
                                          residual, out.data());
        return;
    }
  }
#endif
  switch (variant) {
    case Variant::kIndependent: {
      const double* w = graph.InEdgeWeights().data();
      for (size_t v = begin; v < end; ++v) {
        double gain = residual[v];
        for (size_t i = off[v]; i < off[v + 1]; ++i) {
          const NodeId u = src[i];
          const double term = w[i] * residual[u];
          gain += (u == static_cast<NodeId>(v)) ? 0.0 : term;
        }
        out[v] = gain;
      }
      return;
    }
    case Variant::kNormalized: {
      const double* sg = s.static_gain.data();
      const uint64_t* words = s.retained->WordData();
      for (size_t v = begin; v < end; ++v) {
        double gain = residual[v];
        for (size_t i = off[v]; i < off[v + 1]; ++i) {
          const NodeId u = src[i];
          const bool masked = (u == static_cast<NodeId>(v)) ||
                              ((words[u >> 6] >> (u & 63)) & 1ULL);
          gain += masked ? 0.0 : sg[i];
        }
        out[v] = gain;
      }
      return;
    }
  }
}

void AddNodeUpdateKernel(const PreferenceGraph& graph,
                         const MutableCoverStateView& s, NodeId v,
                         Variant variant, SimdLevel level, double* cover) {
  if (level == SimdLevel::kScalar) {
    AddNodeScalar(graph, s, v, variant, cover);
    return;
  }
  AdjacencyView in = graph.InNeighbors(v);
#if defined(PREFCOVER_HAVE_AVX2)
  if (level == SimdLevel::kAvx2) {
    switch (variant) {
      case Variant::kIndependent:
        internal::AddNodeIndependentAvx2(
            in.nodes.data(), in.weights.data(), in.size(),
            s.node_weights.data(), s.item.data(), s.residual.data(), cover);
        return;
      case Variant::kNormalized:
        internal::AddNodeNormalizedAvx2(
            in.nodes.data(),
            s.static_gain.data() + graph.InEdgeOffset(v), in.size(),
            s.retained->WordData(), s.node_weights.data(), s.item.data(),
            s.residual.data(), cover);
        return;
    }
  }
#endif
  switch (variant) {
    case Variant::kIndependent:
      AddNodeWordIndependent(in, s, cover);
      break;
    case Variant::kNormalized:
      AddNodeWordNormalized(in,
                            s.static_gain.data() + graph.InEdgeOffset(v), s,
                            cover);
      break;
  }
}

void RefreshResidualsKernel(std::span<const double> node_weights,
                            std::span<const double> item,
                            std::span<double> residual, SimdLevel level) {
  PREFCOVER_DCHECK(node_weights.size() == item.size() &&
                   item.size() == residual.size());
#if defined(PREFCOVER_HAVE_AVX2)
  if (level == SimdLevel::kAvx2) {
    internal::RefreshResidualsAvx2(node_weights.data(), item.data(),
                                   residual.data(), residual.size());
    return;
  }
#else
  (void)level;
#endif
  for (size_t i = 0; i < residual.size(); ++i) {
    residual[i] = node_weights[i] - item[i];
  }
}

std::vector<double> BuildStaticGainTable(const PreferenceGraph& graph) {
  std::vector<double> table(graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    AdjacencyView in = graph.InNeighbors(v);
    double* slice = table.data() + graph.InEdgeOffset(v);
    for (size_t i = 0; i < in.size(); ++i) {
      slice[i] = graph.NodeWeight(in.nodes[i]) * in.weights[i];
    }
  }
  return table;
}

}  // namespace prefcover
