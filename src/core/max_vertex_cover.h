// The Max Vertex Cover problem (VC_k, Definition 2.8) as a standalone
// library: undirected edge-weighted graphs (self-loops allowed), exact and
// greedy solvers.
//
// NPC_k is equivalent to VC_k (Theorem 3.1); vc_reduction.h provides the
// approximation-preserving reductions in both directions, and the tests
// use this module to validate them end to end.

#ifndef PREFCOVER_CORE_MAX_VERTEX_COVER_H_
#define PREFCOVER_CORE_MAX_VERTEX_COVER_H_

#include <cstdint>
#include <vector>

#include "graph/preference_graph.h"  // for NodeId
#include "util/status.h"

namespace prefcover {

/// \brief An undirected graph with positively weighted edges; parallel
/// edges and self-loops are permitted (both arise from the NPC_k
/// reduction).
class VertexCoverInstance {
 public:
  explicit VertexCoverInstance(size_t num_nodes);

  /// Adds an undirected edge {u, v} (u == v is a self-loop) of positive
  /// weight.
  Status AddEdge(NodeId u, NodeId v, double weight);

  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const { return endpoints_u_.size(); }

  NodeId EdgeU(size_t e) const { return endpoints_u_[e]; }
  NodeId EdgeV(size_t e) const { return endpoints_v_[e]; }
  double EdgeWeight(size_t e) const { return weights_[e]; }

  /// Total weight of edges with at least one endpoint in `cover` — the
  /// VC_k objective.
  double CoveredWeight(const std::vector<NodeId>& cover) const;

  /// Sum of all edge weights.
  double TotalWeight() const;

 private:
  size_t num_nodes_;
  std::vector<NodeId> endpoints_u_;
  std::vector<NodeId> endpoints_v_;
  std::vector<double> weights_;
};

/// \brief Greedy VC_k: k rounds, each taking the vertex covering the most
/// still-uncovered edge weight (ties to the smaller id). Guarantee:
/// max{1 - 1/e, 1 - (1 - k/n)^2} (Feige & Langberg).
Result<std::vector<NodeId>> SolveVertexCoverGreedy(
    const VertexCoverInstance& instance, size_t k);

/// \brief Exhaustive optimal VC_k for tiny instances (same guard rationale
/// as the preference-cover brute force).
Result<std::vector<NodeId>> SolveVertexCoverBruteForce(
    const VertexCoverInstance& instance, size_t k,
    uint64_t max_subsets = 50'000'000ULL);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_MAX_VERTEX_COVER_H_
