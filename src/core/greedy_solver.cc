#include "core/greedy_solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <numbers>
#include <queue>
#include <span>
#include <vector>

#include "core/checkpoint.h"
#include "core/cover_function.h"
#include "core/cover_state.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace prefcover {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Word-parallel candidate enumeration: visits every node that is neither
// retained nor excluded, in increasing id order (the order the plain
// scan's strict-> tie-break depends on), testing 64 nodes per word load
// instead of two bit probes per node.
template <typename Fn>
void ForEachCandidate(const Bitset& retained, const Bitset& excluded,
                      Fn&& fn) {
  const size_t n = retained.size();
  for (size_t w = 0; w < retained.NumWords(); ++w) {
    uint64_t live = ~(retained.WordAt(w) | excluded.WordAt(w));
    const size_t base = w * Bitset::kWordBits;
    if (n - base < Bitset::kWordBits) {  // ghost bits beyond n
      live &= (1ULL << (n - base)) - 1;
    }
    if (live == ~0ULL) {
      // Full word (the common case before many selections): skip the
      // bit-extraction dance entirely.
      for (size_t b = 0; b < Bitset::kWordBits; ++b) {
        fn(static_cast<NodeId>(base + b));
      }
      continue;
    }
    while (live != 0) {
      const int b = __builtin_ctzll(live);
      live &= live - 1;
      fn(static_cast<NodeId>(base + static_cast<size_t>(b)));
    }
  }
}

// Working set shared by the four executions: the incremental cover state,
// the partial solution, the exclusion mask and the telemetry instruments.
//
// Telemetry lives in a run-scoped MetricsRegistry (SolverStats is built
// as a view over its snapshot at the end). Parallel workers bump the
// sharded counters directly; the serial hot loops accumulate into the
// `pending_*` tallies, flushed at each selection round so the inner scans
// stay plain integer increments.
struct GreedyRun {
  GreedyRun(const PreferenceGraph* graph, Variant variant)
      : state(graph, variant),
        iterations(metrics.GetCounter(solver_metric::kIterations)),
        gain_evaluations(
            metrics.GetCounter(solver_metric::kGainEvaluations)),
        heap_pops(metrics.GetCounter(solver_metric::kHeapPops)),
        stale_refreshes(
            metrics.GetCounter(solver_metric::kStaleRefreshes)),
        seed_refills(metrics.GetCounter(solver_metric::kSeedRefills)),
        parallel_batches(
            metrics.GetCounter(solver_metric::kParallelBatches)),
        parallel_items(metrics.GetCounter(solver_metric::kParallelItems)) {}

  CoverState state;
  std::vector<NodeId> items;
  std::vector<double> prefix_covers;
  Bitset excluded;
  size_t num_excluded = 0;  // popcount of `excluded`, fixed at init

  obs::MetricsRegistry metrics;  // run-scoped; declared before handles
  obs::Counter* iterations;
  obs::Counter* gain_evaluations;
  obs::Counter* heap_pops;
  obs::Counter* stale_refreshes;
  obs::Counter* seed_refills;
  obs::Counter* parallel_batches;
  obs::Counter* parallel_items;

  // Serial-path tallies, flushed into the counters once per round.
  uint64_t pending_gain_evals = 0;
  uint64_t pending_heap_pops = 0;
  uint64_t pending_stale_refreshes = 0;

  // Counter readings at the previous round boundary, for the per-round
  // deltas attached to "solver.round" trace events.
  uint64_t prev_gain_evals = 0;
  uint64_t prev_stale_refreshes = 0;

  SolverStats stats;  // timing / threads / batch fields only, until Finish
  Stopwatch iteration_timer;

  // Cooperative cancellation + periodic checkpointing (both optional).
  const CancelToken* cancel = nullptr;
  const CheckpointConfig* checkpoint_cfg = nullptr;
  Checkpoint checkpoint_base;  // digest/hash/variant/k; prefix per write
  bool checkpoint_warned = false;
  bool truncated = false;

  // Round-boundary cancellation check. True when the search must stop:
  // the token tripped AND at least one item is already selected — the
  // nonempty-prefix guarantee means even a pre-expired deadline yields
  // the first selection. Sticky: the first firing marks the run
  // truncated and bumps the global solver.cancelled counter.
  bool ShouldStop() {
    if (cancel == nullptr || items.empty()) return false;
    if (!truncated) {
      if (!cancel->IsCancelled()) return false;
      truncated = true;
      obs::MetricsRegistry::Global()
          .GetCounter(solver_metric::kCancelled)
          ->Increment();
    }
    return true;
  }

  // Writes a checkpoint when one is due (`force` ignores the cadence —
  // the final write of a truncated run). Checkpoint IO never affects the
  // solve: a failure warns once, bumps checkpoint.write_failures and the
  // search carries on without durability.
  void MaybeCheckpoint(bool force) {
    if (checkpoint_cfg == nullptr || checkpoint_cfg->path.empty()) return;
    const uint32_t every = std::max(1u, checkpoint_cfg->every_rounds);
    if (!force && items.size() % every != 0) return;
    Checkpoint ckpt = checkpoint_base;
    ckpt.prefix = items;
    Status st = WriteCheckpoint(checkpoint_cfg->path, ckpt);
    if (!st.ok()) {
      obs::MetricsRegistry::Global()
          .GetCounter(checkpoint_metric::kWriteFailures)
          ->Increment();
      if (!checkpoint_warned) {
        checkpoint_warned = true;
        PREFCOVER_LOG(Warning)
            << "checkpoint write failed (solve continues, further "
               "failures suppressed): "
            << st.ToString();
      }
    }
  }

  void FlushPending() {
    if (pending_gain_evals > 0) {
      gain_evaluations->Increment(pending_gain_evals);
      pending_gain_evals = 0;
    }
    if (pending_heap_pops > 0) {
      heap_pops->Increment(pending_heap_pops);
      pending_heap_pops = 0;
    }
    if (pending_stale_refreshes > 0) {
      stale_refreshes->Increment(pending_stale_refreshes);
      pending_stale_refreshes = 0;
    }
  }

  // Commits one greedy selection, records its wall time, and emits the
  // per-round trace event with the round's cost deltas.
  void Select(NodeId v) {
    state.AddNode(v);
    items.push_back(v);
    prefix_covers.push_back(state.cover());
    FlushPending();
    iterations->Increment();
    double seconds = iteration_timer.ElapsedSeconds();
    stats.total_iteration_seconds += seconds;
    stats.max_iteration_seconds =
        std::max(stats.max_iteration_seconds, seconds);
    if (obs::Tracing::IsEnabled()) {
      const uint64_t evals = gain_evaluations->Value();
      const uint64_t stale = stale_refreshes->Value();
      obs::TraceArgs args;
      args.Add("round", static_cast<uint64_t>(items.size() - 1))
          .Add("node", static_cast<uint64_t>(v))
          .Add("gain_evals", evals - prev_gain_evals)
          .Add("stale_refreshes", stale - prev_stale_refreshes)
          .Add("cover", prefix_covers.back());
      prev_gain_evals = evals;
      prev_stale_refreshes = stale;
      const uint64_t dur_ns = static_cast<uint64_t>(seconds * 1e9);
      const uint64_t now_ns = obs::Tracing::NowNanos();
      obs::Tracing::RecordComplete(
          "solver.round", "solver",
          now_ns > dur_ns ? now_ns - dur_ns : 0, dur_ns, args.body());
    }
    iteration_timer.Reset();
    MaybeCheckpoint(/*force=*/false);
  }
};

// Validates options (exactly ValidateGreedyOptions) and seeds the run with
// the forced items, recording them as the first selections. Forced picks
// are not search iterations, so they bypass Select() and its counters.
Status InitGreedyRun(const PreferenceGraph& graph, size_t k,
                     const GreedyOptions& options, GreedyRun* run) {
  PREFCOVER_RETURN_NOT_OK(ValidateGreedyOptions(graph, k, options));
  run->cancel = options.cancel;
  run->items.reserve(k);
  run->prefix_covers.reserve(k);
  run->excluded = Bitset(graph.NumNodes());
  for (NodeId v : options.force_exclude) run->excluded.Set(v);
  run->num_excluded = options.force_exclude.size();  // validated distinct
  // A resume prefix replaces force_include seeding: a validated
  // checkpoint prefix already begins with the forced items. Replaying
  // AddNode over it reproduces the exact cover state (and the exact
  // floating-point prefix covers) of the run that wrote the checkpoint.
  const std::vector<NodeId>& seed =
      options.checkpoint.resume_prefix.empty()
          ? options.force_include
          : options.checkpoint.resume_prefix;
  if (!options.checkpoint.resume_prefix.empty()) {
    if (seed.size() > k) {
      return Status::InvalidArgument(
          "resume prefix larger than the budget k");
    }
    Bitset seen(graph.NumNodes());
    for (NodeId v : seed) {
      if (v >= graph.NumNodes()) {
        return Status::InvalidArgument(
            "resume prefix item out of range: " + std::to_string(v));
      }
      if (seen.Test(v)) {
        return Status::InvalidArgument(
            "resume prefix item duplicated: " + std::to_string(v));
      }
      if (run->excluded.Test(v)) {
        return Status::InvalidArgument(
            "resume prefix item is force-excluded: " + std::to_string(v));
      }
      seen.Set(v);
    }
  }
  for (NodeId v : seed) {
    run->state.AddNode(v);
    run->items.push_back(v);
    run->prefix_covers.push_back(run->state.cover());
  }
  if (!options.checkpoint.path.empty()) {
    run->checkpoint_cfg = &options.checkpoint;
    run->checkpoint_base.graph_digest = GraphDigest(graph);
    run->checkpoint_base.options_hash = GreedyOptionsHash(options, k);
    run->checkpoint_base.variant = options.variant;
    run->checkpoint_base.k = k;
  }
  run->iteration_timer.Reset();
  return Status::OK();
}

Solution FinishSolution(GreedyRun&& run, Variant variant,
                        const char* algorithm, double seconds) {
  run.FlushPending();
  // A truncated run writes one final checkpoint so a later resume starts
  // from everything that was selected, not the last cadence boundary.
  if (run.truncated) run.MaybeCheckpoint(/*force=*/true);
  run.stats.truncated = run.truncated;
  // SolverStats is a view over the run registry; the totals also feed the
  // process-wide registry so cross-run snapshots see solver work.
  obs::MetricsSnapshot run_metrics = run.metrics.Snapshot();
  run.stats.LoadCounters(run_metrics);
  obs::MetricsRegistry::Global().MergeCounters(run_metrics);
  Solution sol;
  sol.items = std::move(run.items);
  sol.cover_after_prefix = std::move(run.prefix_covers);
  sol.cover = run.state.cover();
  sol.item_contributions = run.state.TakeItemContributions();
  sol.variant = variant;
  sol.algorithm = algorithm;
  sol.solve_seconds = seconds;
  sol.stats = run.stats;
  return sol;
}

}  // namespace

Status ValidateGreedyOptions(const PreferenceGraph& graph, size_t k,
                             const GreedyOptions& options) {
  if (std::isnan(options.stop_at_cover)) {
    return Status::InvalidArgument("stop_at_cover must not be NaN");
  }
  const size_t n = graph.NumNodes();
  Bitset excluded(n);
  for (NodeId v : options.force_exclude) {
    if (v >= n) {
      return Status::InvalidArgument("force_exclude item out of range: " +
                                     std::to_string(v));
    }
    if (excluded.Test(v)) {
      return Status::InvalidArgument("force_exclude item duplicated: " +
                                     std::to_string(v));
    }
    excluded.Set(v);
  }
  if (options.force_include.size() > k) {
    return Status::InvalidArgument("force_include larger than the budget k");
  }
  Bitset included(n);
  for (NodeId v : options.force_include) {
    if (v >= n) {
      return Status::InvalidArgument("force_include item out of range: " +
                                     std::to_string(v));
    }
    if (excluded.Test(v)) {
      return Status::InvalidArgument(
          "item " + std::to_string(v) +
          " is both force_include and force_exclude");
    }
    if (included.Test(v)) {
      return Status::InvalidArgument("force_include item duplicated: " +
                                     std::to_string(v));
    }
    included.Set(v);
  }
  return Status::OK();
}

Result<Solution> SolveGreedy(const PreferenceGraph& graph, size_t k,
                             const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  obs::Span solve_span("solver.solve", "solver");
  solve_span.Arg("algorithm", "greedy");
  solve_span.Arg("k", static_cast<uint64_t>(k));
  GreedyRun run(&graph, options.variant);
  PREFCOVER_RETURN_NOT_OK(InitGreedyRun(graph, k, options, &run));
  solve_span.Arg("simd", SimdLevelName(run.state.simd_level()).data());

  // Per-round scratch for the batch gain sweep: one streaming kernel
  // call computes every node's gain, then the candidate scan reduces.
  // Uninitialized on purpose — every sweep overwrites [0, n) first.
  const auto gains_buf =
      std::make_unique_for_overwrite<double[]>(graph.NumNodes());
  const std::span<double> gains(gains_buf.get(), graph.NumNodes());
  while (run.items.size() < k) {
    if (run.ShouldStop()) break;
    if (run.state.cover() >= options.stop_at_cover) break;
    run.state.GainsInto(0, graph.NumNodes(), gains);
    double best_gain = -1.0;
    NodeId best = kInvalidNode;
    ForEachCandidate(run.state.retained(), run.excluded, [&](NodeId v) {
      double gain = gains[v];
      ++run.pending_gain_evals;
      if (gain > best_gain) {  // strict: ties keep the smaller id
        best_gain = gain;
        best = v;
      }
    });
    if (best == kInvalidNode) break;  // all nodes retained
    run.Select(best);
  }
  return FinishSolution(std::move(run), options.variant, "greedy",
                        timer.ElapsedSeconds());
}

Result<Solution> SolveGreedyParallel(const PreferenceGraph& graph, size_t k,
                                     ThreadPool* pool,
                                     const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  obs::Span solve_span("solver.solve", "solver");
  solve_span.Arg("algorithm", "greedy-parallel");
  solve_span.Arg("k", static_cast<uint64_t>(k));
  const size_t n = graph.NumNodes();
  GreedyRun run(&graph, options.variant);
  PREFCOVER_RETURN_NOT_OK(InitGreedyRun(graph, k, options, &run));
  solve_span.Arg("simd", SimdLevelName(run.state.simd_level()).data());
  run.stats.threads = pool == nullptr ? 1 : pool->num_threads();

  while (run.items.size() < k) {
    if (run.ShouldStop()) break;
    if (run.state.cover() >= options.stop_at_cover) break;
    // Forward the token only once truncation is permissible: the first
    // selection's scan must run to completion (both the nonempty-prefix
    // guarantee and the prefix-of-the-deterministic-order property need
    // a complete argmax).
    const CancelToken* round_cancel =
        run.items.empty() ? nullptr : options.cancel;
    double best_gain = kNegInf;
    size_t best = ParallelArgMax(
        pool, n,
        [&run](size_t v) {
          NodeId node = static_cast<NodeId>(v);
          if (run.state.IsRetained(node) || run.excluded.Test(node)) {
            return kNegInf;
          }
          // Sharded counter: workers each hit their own cell.
          run.gain_evaluations->Increment();
          return run.state.GainOf(node);
        },
        &best_gain, round_cancel);
    // A cancelled argmax may have skipped chunks; discard the round
    // rather than select from a partial scan.
    if (round_cancel != nullptr && run.ShouldStop()) break;
    run.parallel_batches->Increment();
    run.parallel_items->Increment(n);
    if (best == n || best_gain == kNegInf) break;
    run.Select(static_cast<NodeId>(best));
  }
  return FinishSolution(std::move(run), options.variant, "greedy-parallel",
                        timer.ElapsedSeconds());
}

namespace {

// Shared by the two CELF executions.
struct HeapEntry {
  double gain;
  NodeId node;
  // Selection round the gain was computed in; stale entries are
  // re-evaluated before they can win.
  uint32_t round;
};
struct Worse {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;  // smaller id wins ties, as in plain greedy
  }
};
using LazyHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, Worse>;

// --- Threshold-seeded CELF heap ------------------------------------------
//
// Seeding the heap with all n candidates costs an O(n) make_heap whose
// constant dominates large lazy solves (CELF rarely consumes more than a
// few thousand entries for realistic k), so the seed keeps only the best
// `cap` candidates by the heap's exact (gain, id) order, remembered
// together with the cut threshold theta — the worst kept entry.
//
// Exactness: gains only decrease as the retained set grows
// (submodularity) and ids never change, so a cut candidate's (gain, id)
// pair stays strictly below theta forever (theta itself was kept). While
// the selection front stays at or above theta the cut pool cannot hold
// the argmax; the moment it might — the best fresh pair drops below
// theta, or the kept pool drains — the solver refills: one batch gain
// sweep over every candidate and a fresh top-`cap` rebuild, after which
// the new front again dominates the new cut. Refills are counted in
// solver.seed_refills and their sweeps in solver.gain_evaluations, so
// the pruning telemetry stays honest.
struct SeededHeap {
  LazyHeap heap;
  // Worst entry kept by the last seed/refill; only meaningful when
  // `truncated` (its round field is never consulted).
  HeapEntry theta{0.0, 0, 0};
  bool truncated = false;  // candidates were cut at theta
};

// Streams the candidate set over batch-computed `gains`, keeping the top
// `cap` entries by the heap order. Collect-and-compact: candidates above
// the running threshold are appended to a 2*cap buffer which is cut back
// to the exact top `cap` (nth_element by pair order) whenever it fills —
// O(1) amortized per survivor instead of a push_heap, and one predictable
// compare for the common below-threshold case. (gain, id) pairs are
// unique, so the selected set — and therefore every downstream refill
// decision — does not depend on nth_element's implementation. Tallies
// one gain evaluation per candidate (the batch sweep computed them all).
SeededHeap BuildSeededHeap(std::span<const double> gains, size_t cap,
                           uint32_t round, GreedyRun* run) {
  const auto best_first = [](const HeapEntry& a, const HeapEntry& b) {
    return Worse()(b, a);
  };
  std::vector<HeapEntry> keep;
  keep.reserve(2 * cap);
  size_t candidates = 0;
  double theta_gain = kNegInf;  // nothing is cut until the first compact
  NodeId theta_node = 0;
  const auto compact = [&] {
    std::nth_element(keep.begin(),
                     keep.begin() + static_cast<ptrdiff_t>(cap - 1),
                     keep.end(), best_first);
    keep.resize(cap);
    theta_gain = keep[cap - 1].gain;
    theta_node = keep[cap - 1].node;
  };
  ForEachCandidate(run->state.retained(), run->excluded, [&](NodeId v) {
    ++candidates;
    ++run->pending_gain_evals;
    const double g = gains[v];
    if (g < theta_gain || (g == theta_gain && v > theta_node)) return;
    keep.push_back({g, v, round});
    if (keep.size() == 2 * cap) compact();
  });
  if (keep.size() > cap) compact();
  SeededHeap out;
  out.truncated = candidates > keep.size();
  if (out.truncated) out.theta = {theta_gain, theta_node, round};
  out.heap = LazyHeap(Worse(), std::move(keep));
  return out;
}

// Bound-ordered seed for the kernel tiers: instead of a full batch gain
// sweep, walk the graph's precomputed descending static-gain-bound order
// (PreferenceGraph::NodesByStaticGainBound) evaluating exact gains per
// node, and STOP once the running threshold theta exceeds every remaining
// bound — Gain(v) <= bound(v) against any retained set, so no unvisited
// node can belong to the top `cap`. On skewed catalogs this touches a few
// thousand nodes instead of every in-edge in the graph, and because the
// bounds are static the same early exit applies to every refill.
//
// theta here is the last compact's cut (a lower bound on the running
// exact threshold), so the stop test is conservative: it can only visit
// extra nodes, never skip a needed one. The kept set is the exact top
// `cap` by (gain, id) — identical to BuildSeededHeap's — so the scalar
// tier (which seeds via the full sweep, staying the literal reference)
// and the kernel tiers select identical node sequences.
SeededHeap BuildSeededHeapBounded(size_t cap, uint32_t round,
                                  GreedyRun* run) {
  const auto best_first = [](const HeapEntry& a, const HeapEntry& b) {
    return Worse()(b, a);
  };
  const PreferenceGraph& graph = run->state.graph();
  const std::span<const double> bounds = graph.StaticGainBounds();
  const Bitset& retained = run->state.retained();
  std::vector<HeapEntry> keep;
  keep.reserve(2 * cap);
  double theta_gain = kNegInf;  // nothing is cut until the first compact
  NodeId theta_node = 0;
  const auto compact = [&] {
    std::nth_element(keep.begin(),
                     keep.begin() + static_cast<ptrdiff_t>(cap - 1),
                     keep.end(), best_first);
    keep.resize(cap);
    theta_gain = keep[cap - 1].gain;
    theta_node = keep[cap - 1].node;
  };
  for (const NodeId v : graph.NodesByStaticGainBound()) {
    // Strict: a bound that ties theta can still hide a gain that ties
    // theta with a smaller id, which would outrank it in pair order.
    if (bounds[v] < theta_gain) break;
    if (retained.Test(v) || run->excluded.Test(v)) continue;
    const double g = run->state.GainOf(v);
    ++run->pending_gain_evals;
    if (g < theta_gain || (g == theta_gain && v > theta_node)) continue;
    keep.push_back({g, v, round});
    if (keep.size() == 2 * cap) compact();
  }
  if (keep.size() > cap) compact();
  SeededHeap out;
  // Candidates below the cut — whether filtered or never visited — were
  // truncated exactly when fewer entries were kept than candidates exist.
  const size_t candidates =
      graph.NumNodes() - run->state.NumRetained() - run->num_excluded;
  out.truncated = candidates > keep.size();
  if (out.truncated) out.theta = {theta_gain, theta_node, round};
  out.heap = LazyHeap(Worse(), std::move(keep));
  return out;
}

constexpr size_t kDefaultSeedHeapCapacity = 1024;

size_t EffectiveSeedCapacity(const GreedyOptions& options, size_t n) {
  const size_t cap = options.seed_heap_capacity > 0
                         ? options.seed_heap_capacity
                         : kDefaultSeedHeapCapacity;
  return std::min(cap, n);
}

}  // namespace

Result<Solution> SolveGreedyLazy(const PreferenceGraph& graph, size_t k,
                                 const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  obs::Span solve_span("solver.solve", "solver");
  solve_span.Arg("algorithm", "greedy-lazy");
  solve_span.Arg("k", static_cast<uint64_t>(k));
  const size_t n = graph.NumNodes();
  GreedyRun run(&graph, options.variant);
  PREFCOVER_RETURN_NOT_OK(InitGreedyRun(graph, k, options, &run));
  solve_span.Arg("simd", SimdLevelName(run.state.simd_level()).data());

  const size_t seed_cap = EffectiveSeedCapacity(options, n);
  // The kernel tiers seed via the bound-ordered early-exit scan; the
  // scalar tier stays the literal reference — a full batch gain sweep
  // (values at retained/excluded positions are discarded by the
  // candidate scan) cut to the top seed_cap. Both build the exact same
  // SeededHeap, so the tiers select identical node sequences.
  const bool bounded_seed = run.state.simd_level() != SimdLevel::kScalar;
  std::unique_ptr<double[]> gains_buf;
  std::span<double> gains;
  if (!bounded_seed) {
    // Uninitialized on purpose — every sweep overwrites [0, n) first.
    gains_buf = std::make_unique_for_overwrite<double[]>(n);
    gains = std::span<double>(gains_buf.get(), n);
  }
  SeededHeap seeded;
  const auto reseed = [&](uint32_t seed_round) {
    obs::Span seed_span("solver.init_heap", "solver");
    seed_span.Arg("n", static_cast<uint64_t>(n));
    if (bounded_seed) {
      seeded = BuildSeededHeapBounded(seed_cap, seed_round, &run);
    } else {
      run.state.GainsInto(0, n, gains);
      seeded = BuildSeededHeap(gains, seed_cap, seed_round, &run);
    }
  };
  reseed(0);
  LazyHeap& heap = seeded.heap;

  uint32_t round = 0;
  run.iteration_timer.Reset();
  while (run.items.size() < k) {
    if (run.ShouldStop()) break;
    if (run.state.cover() >= options.stop_at_cover) break;
    if (heap.empty()) {
      if (!seeded.truncated) break;
      // The kept pool drained; pull the cut candidates back in.
      run.seed_refills->Increment();
      reseed(round);
      continue;
    }
    HeapEntry top = heap.top();
    heap.pop();
    ++run.pending_heap_pops;
    if (run.state.IsRetained(top.node)) continue;
    if (top.round != round) {
      // Submodularity: the true gain can only be <= the stale value, so
      // after refreshing, re-inserting preserves heap correctness.
      top.gain = run.state.GainOf(top.node);
      top.round = round;
      ++run.pending_gain_evals;
      ++run.pending_stale_refreshes;
      heap.push(top);
      continue;
    }
    if (seeded.truncated && Worse()(top, seeded.theta)) {
      // The fresh front fell below the seed cut: a cut candidate may now
      // be the true argmax. Rebuild from a fresh full sweep (top's node
      // is still a candidate, so the rebuild re-covers it).
      run.seed_refills->Increment();
      reseed(round);
      continue;
    }
    run.Select(top.node);
    ++round;
  }
  return FinishSolution(std::move(run), options.variant, "greedy-lazy",
                        timer.ElapsedSeconds());
}

Result<Solution> SolveGreedyLazyParallel(const PreferenceGraph& graph,
                                         size_t k, ThreadPool* pool,
                                         const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  obs::Span solve_span("solver.solve", "solver");
  solve_span.Arg("algorithm", "greedy-lazy-parallel");
  solve_span.Arg("k", static_cast<uint64_t>(k));
  const size_t n = graph.NumNodes();
  GreedyRun run(&graph, options.variant);
  PREFCOVER_RETURN_NOT_OK(InitGreedyRun(graph, k, options, &run));
  solve_span.Arg("simd", SimdLevelName(run.state.simd_level()).data());

  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  const size_t batch_size =
      options.batch_size > 0 ? options.batch_size
                             : std::max<size_t>(size_t{1}, 4 * threads);
  run.stats.threads = threads;
  run.stats.batch_size = batch_size;

  const size_t seed_cap = EffectiveSeedCapacity(options, n);
  // Kernel tiers: bound-ordered early-exit seed, serial — it touches so
  // few nodes that a pool dispatch costs more than it saves. Scalar
  // tier: full batch gain sweep as disjoint chunks on the pool. Gains
  // are independent of each other (GainOf is const), so chunk
  // boundaries cannot affect the values, and both builders keep the
  // exact same top seed_cap — the result, and every downstream refill
  // decision, is identical for every tier and thread count.
  const bool bounded_seed = run.state.simd_level() != SimdLevel::kScalar;
  std::unique_ptr<double[]> gains_buf;
  std::span<double> gains;
  if (!bounded_seed) {
    // Uninitialized on purpose — every sweep overwrites [0, n) first.
    gains_buf = std::make_unique_for_overwrite<double[]>(n);
    gains = std::span<double>(gains_buf.get(), n);
  }
  SeededHeap seeded;
  const auto reseed = [&](uint32_t seed_round) {
    obs::Span seed_span("solver.init_heap", "solver");
    seed_span.Arg("n", static_cast<uint64_t>(n));
    if (bounded_seed) {
      seeded = BuildSeededHeapBounded(seed_cap, seed_round, &run);
      return;
    }
    constexpr size_t kSeedChunk = 4096;
    const size_t num_chunks = (n + kSeedChunk - 1) / kSeedChunk;
    ParallelFor(pool, 0, num_chunks, [&run, &gains, n](size_t c) {
      const size_t chunk_begin = c * kSeedChunk;
      run.state.GainsInto(chunk_begin,
                          std::min(n, chunk_begin + kSeedChunk), gains);
    });
    run.parallel_batches->Increment();
    run.parallel_items->Increment(n);
    seeded = BuildSeededHeap(gains, seed_cap, seed_round, &run);
  };
  reseed(0);
  LazyHeap& heap = seeded.heap;

  std::vector<size_t> batch;
  std::vector<double> batch_gains;
  // The heap never holds more than n entries, so an oversized (or
  // size_t-max) batch_size must not translate into an oversized reserve.
  batch.reserve(std::min(batch_size, n));
  uint32_t round = 0;
  run.iteration_timer.Reset();
  while (run.items.size() < k) {
    if (run.ShouldStop()) break;
    if (run.state.cover() >= options.stop_at_cover) break;
    if (heap.empty()) {
      if (!seeded.truncated) break;
      // The kept pool drained; pull the cut candidates back in.
      run.seed_refills->Increment();
      reseed(round);
      continue;
    }
    HeapEntry top = heap.top();
    if (run.state.IsRetained(top.node)) {
      heap.pop();
      ++run.pending_heap_pops;
      continue;
    }
    if (top.round == round) {
      if (seeded.truncated && Worse()(top, seeded.theta)) {
        // The fresh front fell below the seed cut: a cut candidate may
        // now be the true argmax. Rebuild from a fresh full sweep.
        run.seed_refills->Increment();
        reseed(round);
        continue;
      }
      // A fresh top dominates every other entry's stored gain, and stored
      // gains upper-bound true gains (submodularity), so this is exactly
      // the plain-greedy argmax; the heap comparator already broke gain
      // ties toward the smaller id.
      heap.pop();
      ++run.pending_heap_pops;
      run.Select(top.node);
      ++round;
      continue;
    }

    // Batched CELF: pop up to B stale candidates and refresh their gains
    // concurrently. Stop early if a fresh entry surfaces — it may already
    // be the winner, no need to refresh anything beneath it.
    batch.clear();
    while (batch.size() < batch_size && !heap.empty()) {
      HeapEntry e = heap.top();
      if (run.state.IsRetained(e.node)) {
        heap.pop();
        ++run.pending_heap_pops;
        continue;
      }
      if (e.round == round) break;
      heap.pop();
      ++run.pending_heap_pops;
      batch.push_back(e.node);
    }

    // As in the parallel execution, only forward the token when a
    // truncation break is permissible; a cancelled refresh produces
    // partial gains that must be discarded, never reinserted.
    const CancelToken* round_cancel =
        run.items.empty() ? nullptr : options.cancel;
    double best_gain = kNegInf;
    size_t best_pos = ParallelArgMaxBatch(
        pool, batch,
        [&run](size_t v) {
          return run.state.GainOf(static_cast<NodeId>(v));
        },
        &batch_gains, &best_gain, round_cancel);
    if (round_cancel != nullptr && run.ShouldStop()) break;
    run.parallel_batches->Increment();
    run.parallel_items->Increment(batch.size());
    run.pending_gain_evals += batch.size();
    run.pending_stale_refreshes += batch.size();

    // Fast path: if the best refreshed gain strictly beats the top stored
    // gain left in the heap, it beats every remaining true gain (true <=
    // stored), and ParallelArgMaxBatch already resolved in-batch ties
    // toward the smaller id — so it is exactly the plain-greedy argmax.
    // On equality we cannot decide here (a remaining entry might refresh
    // to the same gain with a smaller id), so everything is reinserted
    // fresh and the next loop iteration selects via the heap comparator.
    // Under a truncated seed the winner must additionally clear the seed
    // cut — below theta a cut candidate could be the true argmax, so
    // everything is reinserted fresh and the next iteration's fresh-top
    // check routes into the reseed path.
    const bool select_now =
        best_pos != batch.size() &&
        (heap.empty() || best_gain > heap.top().gain) &&
        (!seeded.truncated ||
         !Worse()(HeapEntry{best_gain, static_cast<NodeId>(batch[best_pos]),
                            round},
                  seeded.theta));
    for (size_t j = 0; j < batch.size(); ++j) {
      if (select_now && j == best_pos) continue;
      heap.push({batch_gains[j], static_cast<NodeId>(batch[j]), round});
    }
    if (select_now) {
      run.Select(static_cast<NodeId>(batch[best_pos]));
      ++round;
    }
  }
  return FinishSolution(std::move(run), options.variant,
                        "greedy-lazy-parallel", timer.ElapsedSeconds());
}

double GreedyApproximationGuarantee(Variant variant, size_t k, size_t n) {
  const double one_minus_inv_e = 1.0 - 1.0 / std::numbers::e;
  if (variant == Variant::kIndependent || n == 0) return one_minus_inv_e;
  double ratio = static_cast<double>(k) / static_cast<double>(n);
  double vc_bound = 1.0 - (1.0 - ratio) * (1.0 - ratio);
  return std::max(one_minus_inv_e, vc_bound);
}

}  // namespace prefcover
