#include "core/greedy_solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <numbers>
#include <queue>
#include <span>
#include <vector>

#include "core/checkpoint.h"
#include "core/cover_function.h"
#include "core/cover_state.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace prefcover {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Word-parallel candidate enumeration over the full node range (the
// shard-ranged generalization lives in core/candidate_evaluator.h, shared
// with the distributed shard engine).
template <typename Fn>
void ForEachCandidate(const Bitset& retained, const Bitset& excluded,
                      Fn&& fn) {
  ForEachCandidateInRange(retained, excluded, 0, retained.size(),
                          std::forward<Fn>(fn));
}

// Working set shared by the four executions: the incremental cover state,
// the partial solution, the exclusion mask and the telemetry instruments.
//
// Telemetry lives in a run-scoped MetricsRegistry (SolverStats is built
// as a view over its snapshot at the end). Parallel workers bump the
// sharded counters directly; the serial hot loops accumulate into the
// `pending_*` tallies, flushed at each selection round so the inner scans
// stay plain integer increments.
struct GreedyRun {
  GreedyRun(const PreferenceGraph* graph, Variant variant)
      : state(graph, variant),
        iterations(metrics.GetCounter(solver_metric::kIterations)),
        gain_evaluations(
            metrics.GetCounter(solver_metric::kGainEvaluations)),
        heap_pops(metrics.GetCounter(solver_metric::kHeapPops)),
        stale_refreshes(
            metrics.GetCounter(solver_metric::kStaleRefreshes)),
        seed_refills(metrics.GetCounter(solver_metric::kSeedRefills)),
        parallel_batches(
            metrics.GetCounter(solver_metric::kParallelBatches)),
        parallel_items(metrics.GetCounter(solver_metric::kParallelItems)) {}

  CoverState state;
  std::vector<NodeId> items;
  std::vector<double> prefix_covers;
  Bitset excluded;
  size_t num_excluded = 0;  // popcount of `excluded`, fixed at init

  obs::MetricsRegistry metrics;  // run-scoped; declared before handles
  obs::Counter* iterations;
  obs::Counter* gain_evaluations;
  obs::Counter* heap_pops;
  obs::Counter* stale_refreshes;
  obs::Counter* seed_refills;
  obs::Counter* parallel_batches;
  obs::Counter* parallel_items;

  // Serial-path tallies, flushed into the counters once per round.
  uint64_t pending_gain_evals = 0;
  uint64_t pending_heap_pops = 0;
  uint64_t pending_stale_refreshes = 0;

  // Counter readings at the previous round boundary, for the per-round
  // deltas attached to "solver.round" trace events.
  uint64_t prev_gain_evals = 0;
  uint64_t prev_stale_refreshes = 0;

  SolverStats stats;  // timing / threads / batch fields only, until Finish
  Stopwatch iteration_timer;

  // Cooperative cancellation + periodic checkpointing (both optional).
  const CancelToken* cancel = nullptr;
  const CheckpointConfig* checkpoint_cfg = nullptr;
  Checkpoint checkpoint_base;  // digest/hash/variant/k; prefix per write
  bool checkpoint_warned = false;
  bool truncated = false;

  // Round-boundary cancellation check. True when the search must stop:
  // the token tripped AND at least one item is already selected — the
  // nonempty-prefix guarantee means even a pre-expired deadline yields
  // the first selection. Sticky: the first firing marks the run
  // truncated and bumps the global solver.cancelled counter.
  bool ShouldStop() {
    if (cancel == nullptr || items.empty()) return false;
    if (!truncated) {
      if (!cancel->IsCancelled()) return false;
      truncated = true;
      obs::MetricsRegistry::Global()
          .GetCounter(solver_metric::kCancelled)
          ->Increment();
    }
    return true;
  }

  // Writes a checkpoint when one is due (`force` ignores the cadence —
  // the final write of a truncated run). Checkpoint IO never affects the
  // solve: a failure warns once, bumps checkpoint.write_failures and the
  // search carries on without durability.
  void MaybeCheckpoint(bool force) {
    if (checkpoint_cfg == nullptr || checkpoint_cfg->path.empty()) return;
    const uint32_t every = std::max(1u, checkpoint_cfg->every_rounds);
    if (!force && items.size() % every != 0) return;
    Checkpoint ckpt = checkpoint_base;
    ckpt.prefix = items;
    Status st = WriteCheckpoint(checkpoint_cfg->path, ckpt);
    if (!st.ok()) {
      obs::MetricsRegistry::Global()
          .GetCounter(checkpoint_metric::kWriteFailures)
          ->Increment();
      if (!checkpoint_warned) {
        checkpoint_warned = true;
        PREFCOVER_LOG(Warning)
            << "checkpoint write failed (solve continues, further "
               "failures suppressed): "
            << st.ToString();
      }
    }
  }

  void FlushPending() {
    if (pending_gain_evals > 0) {
      gain_evaluations->Increment(pending_gain_evals);
      pending_gain_evals = 0;
    }
    if (pending_heap_pops > 0) {
      heap_pops->Increment(pending_heap_pops);
      pending_heap_pops = 0;
    }
    if (pending_stale_refreshes > 0) {
      stale_refreshes->Increment(pending_stale_refreshes);
      pending_stale_refreshes = 0;
    }
  }

  // Commits one greedy selection, records its wall time, and emits the
  // per-round trace event with the round's cost deltas.
  void Select(NodeId v) {
    state.AddNode(v);
    items.push_back(v);
    prefix_covers.push_back(state.cover());
    FlushPending();
    iterations->Increment();
    double seconds = iteration_timer.ElapsedSeconds();
    stats.total_iteration_seconds += seconds;
    stats.max_iteration_seconds =
        std::max(stats.max_iteration_seconds, seconds);
    if (obs::Tracing::IsEnabled()) {
      const uint64_t evals = gain_evaluations->Value();
      const uint64_t stale = stale_refreshes->Value();
      obs::TraceArgs args;
      args.Add("round", static_cast<uint64_t>(items.size() - 1))
          .Add("node", static_cast<uint64_t>(v))
          .Add("gain_evals", evals - prev_gain_evals)
          .Add("stale_refreshes", stale - prev_stale_refreshes)
          .Add("cover", prefix_covers.back());
      prev_gain_evals = evals;
      prev_stale_refreshes = stale;
      const uint64_t dur_ns = static_cast<uint64_t>(seconds * 1e9);
      const uint64_t now_ns = obs::Tracing::NowNanos();
      obs::Tracing::RecordComplete(
          "solver.round", "solver",
          now_ns > dur_ns ? now_ns - dur_ns : 0, dur_ns, args.body());
    }
    iteration_timer.Reset();
    MaybeCheckpoint(/*force=*/false);
  }
};

// Validates options (exactly ValidateGreedyOptions) and seeds the run with
// the forced items, recording them as the first selections. Forced picks
// are not search iterations, so they bypass Select() and its counters.
Status InitGreedyRun(const PreferenceGraph& graph, size_t k,
                     const GreedyOptions& options, GreedyRun* run) {
  PREFCOVER_RETURN_NOT_OK(ValidateGreedyOptions(graph, k, options));
  run->cancel = options.cancel;
  run->items.reserve(k);
  run->prefix_covers.reserve(k);
  run->excluded = Bitset(graph.NumNodes());
  for (NodeId v : options.force_exclude) run->excluded.Set(v);
  run->num_excluded = options.force_exclude.size();  // validated distinct
  // A resume prefix replaces force_include seeding: a validated
  // checkpoint prefix already begins with the forced items. Replaying
  // AddNode over it reproduces the exact cover state (and the exact
  // floating-point prefix covers) of the run that wrote the checkpoint.
  const std::vector<NodeId>& seed =
      options.checkpoint.resume_prefix.empty()
          ? options.force_include
          : options.checkpoint.resume_prefix;
  if (!options.checkpoint.resume_prefix.empty()) {
    if (seed.size() > k) {
      return Status::InvalidArgument(
          "resume prefix larger than the budget k");
    }
    Bitset seen(graph.NumNodes());
    for (NodeId v : seed) {
      if (v >= graph.NumNodes()) {
        return Status::InvalidArgument(
            "resume prefix item out of range: " + std::to_string(v));
      }
      if (seen.Test(v)) {
        return Status::InvalidArgument(
            "resume prefix item duplicated: " + std::to_string(v));
      }
      if (run->excluded.Test(v)) {
        return Status::InvalidArgument(
            "resume prefix item is force-excluded: " + std::to_string(v));
      }
      seen.Set(v);
    }
  }
  for (NodeId v : seed) {
    run->state.AddNode(v);
    run->items.push_back(v);
    run->prefix_covers.push_back(run->state.cover());
  }
  if (!options.checkpoint.path.empty()) {
    run->checkpoint_cfg = &options.checkpoint;
    run->checkpoint_base.graph_digest = GraphDigest(graph);
    run->checkpoint_base.options_hash = GreedyOptionsHash(options, k);
    run->checkpoint_base.variant = options.variant;
    run->checkpoint_base.k = k;
  }
  run->iteration_timer.Reset();
  return Status::OK();
}

Solution FinishSolution(GreedyRun&& run, Variant variant,
                        const char* algorithm, double seconds) {
  run.FlushPending();
  // A truncated run writes one final checkpoint so a later resume starts
  // from everything that was selected, not the last cadence boundary.
  if (run.truncated) run.MaybeCheckpoint(/*force=*/true);
  run.stats.truncated = run.truncated;
  // SolverStats is a view over the run registry; the totals also feed the
  // process-wide registry so cross-run snapshots see solver work.
  obs::MetricsSnapshot run_metrics = run.metrics.Snapshot();
  run.stats.LoadCounters(run_metrics);
  obs::MetricsRegistry::Global().MergeCounters(run_metrics);
  Solution sol;
  sol.items = std::move(run.items);
  sol.cover_after_prefix = std::move(run.prefix_covers);
  sol.cover = run.state.cover();
  sol.item_contributions = run.state.TakeItemContributions();
  sol.variant = variant;
  sol.algorithm = algorithm;
  sol.solve_seconds = seconds;
  sol.stats = run.stats;
  return sol;
}

}  // namespace

Status ValidateGreedyOptions(const PreferenceGraph& graph, size_t k,
                             const GreedyOptions& options) {
  if (std::isnan(options.stop_at_cover)) {
    return Status::InvalidArgument("stop_at_cover must not be NaN");
  }
  const size_t n = graph.NumNodes();
  Bitset excluded(n);
  for (NodeId v : options.force_exclude) {
    if (v >= n) {
      return Status::InvalidArgument("force_exclude item out of range: " +
                                     std::to_string(v));
    }
    if (excluded.Test(v)) {
      return Status::InvalidArgument("force_exclude item duplicated: " +
                                     std::to_string(v));
    }
    excluded.Set(v);
  }
  if (options.force_include.size() > k) {
    return Status::InvalidArgument("force_include larger than the budget k");
  }
  Bitset included(n);
  for (NodeId v : options.force_include) {
    if (v >= n) {
      return Status::InvalidArgument("force_include item out of range: " +
                                     std::to_string(v));
    }
    if (excluded.Test(v)) {
      return Status::InvalidArgument(
          "item " + std::to_string(v) +
          " is both force_include and force_exclude");
    }
    if (included.Test(v)) {
      return Status::InvalidArgument("force_include item duplicated: " +
                                     std::to_string(v));
    }
    included.Set(v);
  }
  return Status::OK();
}

Result<Solution> SolveGreedy(const PreferenceGraph& graph, size_t k,
                             const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  obs::Span solve_span("solver.solve", "solver");
  solve_span.Arg("algorithm", "greedy");
  solve_span.Arg("k", static_cast<uint64_t>(k));
  GreedyRun run(&graph, options.variant);
  PREFCOVER_RETURN_NOT_OK(InitGreedyRun(graph, k, options, &run));
  solve_span.Arg("simd", SimdLevelName(run.state.simd_level()).data());

  // Per-round scratch for the batch gain sweep: one streaming kernel
  // call computes every node's gain, then the candidate scan reduces.
  // Uninitialized on purpose — every sweep overwrites [0, n) first.
  const auto gains_buf =
      std::make_unique_for_overwrite<double[]>(graph.NumNodes());
  const std::span<double> gains(gains_buf.get(), graph.NumNodes());
  while (run.items.size() < k) {
    if (run.ShouldStop()) break;
    if (run.state.cover() >= options.stop_at_cover) break;
    run.state.GainsInto(0, graph.NumNodes(), gains);
    double best_gain = -1.0;
    NodeId best = kInvalidNode;
    ForEachCandidate(run.state.retained(), run.excluded, [&](NodeId v) {
      double gain = gains[v];
      ++run.pending_gain_evals;
      if (gain > best_gain) {  // strict: ties keep the smaller id
        best_gain = gain;
        best = v;
      }
    });
    if (best == kInvalidNode) break;  // all nodes retained
    run.Select(best);
  }
  return FinishSolution(std::move(run), options.variant, "greedy",
                        timer.ElapsedSeconds());
}

Result<Solution> SolveGreedyParallel(const PreferenceGraph& graph, size_t k,
                                     ThreadPool* pool,
                                     const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  obs::Span solve_span("solver.solve", "solver");
  solve_span.Arg("algorithm", "greedy-parallel");
  solve_span.Arg("k", static_cast<uint64_t>(k));
  const size_t n = graph.NumNodes();
  GreedyRun run(&graph, options.variant);
  PREFCOVER_RETURN_NOT_OK(InitGreedyRun(graph, k, options, &run));
  solve_span.Arg("simd", SimdLevelName(run.state.simd_level()).data());
  run.stats.threads = pool == nullptr ? 1 : pool->num_threads();

  while (run.items.size() < k) {
    if (run.ShouldStop()) break;
    if (run.state.cover() >= options.stop_at_cover) break;
    // Forward the token only once truncation is permissible: the first
    // selection's scan must run to completion (both the nonempty-prefix
    // guarantee and the prefix-of-the-deterministic-order property need
    // a complete argmax).
    const CancelToken* round_cancel =
        run.items.empty() ? nullptr : options.cancel;
    double best_gain = kNegInf;
    size_t best = ParallelArgMax(
        pool, n,
        [&run](size_t v) {
          NodeId node = static_cast<NodeId>(v);
          if (run.state.IsRetained(node) || run.excluded.Test(node)) {
            return kNegInf;
          }
          // Sharded counter: workers each hit their own cell.
          run.gain_evaluations->Increment();
          return run.state.GainOf(node);
        },
        &best_gain, round_cancel);
    // A cancelled argmax may have skipped chunks; discard the round
    // rather than select from a partial scan.
    if (round_cancel != nullptr && run.ShouldStop()) break;
    run.parallel_batches->Increment();
    run.parallel_items->Increment(n);
    if (best == n || best_gain == kNegInf) break;
    run.Select(static_cast<NodeId>(best));
  }
  return FinishSolution(std::move(run), options.variant, "greedy-parallel",
                        timer.ElapsedSeconds());
}

namespace {

// The CELF heap machinery — entries, comparator, the threshold-seeded
// heap (exactness argument: see the comment blocks there) and its two
// builders — lives in core/candidate_evaluator.{h,cc} since the solver
// loop was refactored behind CandidateEvaluator: the distributed shard
// engine seeds with the exact same code. These aliases keep the batched
// lazy-parallel execution below reading as before.
using HeapEntry = CelfHeapEntry;
using Worse = CelfWorse;
using LazyHeap = CelfHeap;
using SeededHeap = CelfSeededHeap;

constexpr size_t kDefaultSeedHeapCapacity = 1024;

size_t EffectiveSeedCapacity(const GreedyOptions& options, size_t n) {
  const size_t cap = options.seed_heap_capacity > 0
                         ? options.seed_heap_capacity
                         : kDefaultSeedHeapCapacity;
  return std::min(cap, n);
}

}  // namespace

namespace {

// Folds an evaluator's drained tallies into the run's pending counters
// (flushed by the next Select / FinishSolution, preserving the per-round
// trace deltas the serial executions always emitted). seed_refills has
// no pending slot — it was always incremented directly.
void ApplyEvaluatorTally(EvaluatorCounters* tally, GreedyRun* run) {
  run->pending_gain_evals += tally->gain_evaluations;
  run->pending_heap_pops += tally->heap_pops;
  run->pending_stale_refreshes += tally->stale_refreshes;
  if (tally->seed_refills > 0) {
    run->seed_refills->Increment(tally->seed_refills);
  }
  *tally = EvaluatorCounters();
}

}  // namespace

Result<Solution> SolveGreedyWithEvaluator(
    const PreferenceGraph& graph, size_t k, const GreedyOptions& options,
    const CandidateEvaluatorFactory& factory, const char* algorithm) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  obs::Span solve_span("solver.solve", "solver");
  solve_span.Arg("algorithm", algorithm);
  solve_span.Arg("k", static_cast<uint64_t>(k));
  GreedyRun run(&graph, options.variant);
  PREFCOVER_RETURN_NOT_OK(InitGreedyRun(graph, k, options, &run));
  solve_span.Arg("simd", SimdLevelName(run.state.simd_level()).data());

  EvaluatorContext context;
  context.graph = &graph;
  context.state = &run.state;
  context.excluded = &run.excluded;
  context.num_excluded = run.num_excluded;
  context.committed = &run.items;
  context.k = k;
  context.options = &options;
  PREFCOVER_ASSIGN_OR_RETURN(std::unique_ptr<CandidateEvaluator> evaluator,
                             factory(context));

  EvaluatorCounters tally;
  run.iteration_timer.Reset();
  while (run.items.size() < k) {
    if (run.ShouldStop()) break;
    if (run.state.cover() >= options.stop_at_cover) break;
    PREFCOVER_ASSIGN_OR_RETURN(CandidateProposal best,
                               evaluator->BestCandidate());
    // Drained before Select so the round's work lands in this round's
    // flush (and trace deltas), exactly as the inline loop tallied.
    evaluator->DrainCounters(&tally);
    ApplyEvaluatorTally(&tally, &run);
    if (!best.found) break;  // every candidate retained or excluded
    run.Select(best.node);
    PREFCOVER_RETURN_NOT_OK(evaluator->CommitWinner(best.node));
  }
  // Work done while discovering exhaustion (or after the last commit)
  // still belongs to the run's totals.
  evaluator->DrainCounters(&tally);
  ApplyEvaluatorTally(&tally, &run);
  PREFCOVER_RETURN_NOT_OK(evaluator->Finish(&run.stats));
  return FinishSolution(std::move(run), options.variant, algorithm,
                        timer.ElapsedSeconds());
}

Result<Solution> SolveGreedyLazy(const PreferenceGraph& graph, size_t k,
                                 const GreedyOptions& options) {
  // The generic driver over the in-process CELF evaluator: the same
  // threshold-seeded lazy loop this function always ran, now shared
  // line-for-line with the distributed shard engine
  // (core/candidate_evaluator.cc).
  return SolveGreedyWithEvaluator(
      graph, k, options,
      [](const EvaluatorContext& context)
          -> Result<std::unique_ptr<CandidateEvaluator>> {
        return std::unique_ptr<CandidateEvaluator>(
            std::make_unique<LazyCandidateEvaluator>(context));
      },
      "greedy-lazy");
}

Result<Solution> SolveGreedyLazyParallel(const PreferenceGraph& graph,
                                         size_t k, ThreadPool* pool,
                                         const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  obs::Span solve_span("solver.solve", "solver");
  solve_span.Arg("algorithm", "greedy-lazy-parallel");
  solve_span.Arg("k", static_cast<uint64_t>(k));
  const size_t n = graph.NumNodes();
  GreedyRun run(&graph, options.variant);
  PREFCOVER_RETURN_NOT_OK(InitGreedyRun(graph, k, options, &run));
  solve_span.Arg("simd", SimdLevelName(run.state.simd_level()).data());

  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  const size_t batch_size =
      options.batch_size > 0 ? options.batch_size
                             : std::max<size_t>(size_t{1}, 4 * threads);
  run.stats.threads = threads;
  run.stats.batch_size = batch_size;

  const size_t seed_cap = EffectiveSeedCapacity(options, n);
  // Kernel tiers: bound-ordered early-exit seed, serial — it touches so
  // few nodes that a pool dispatch costs more than it saves. Scalar
  // tier: full batch gain sweep as disjoint chunks on the pool. Gains
  // are independent of each other (GainOf is const), so chunk
  // boundaries cannot affect the values, and both builders keep the
  // exact same top seed_cap — the result, and every downstream refill
  // decision, is identical for every tier and thread count.
  const bool bounded_seed = run.state.simd_level() != SimdLevel::kScalar;
  std::unique_ptr<double[]> gains_buf;
  std::span<double> gains;
  if (!bounded_seed) {
    // Uninitialized on purpose — every sweep overwrites [0, n) first.
    gains_buf = std::make_unique_for_overwrite<double[]>(n);
    gains = std::span<double>(gains_buf.get(), n);
  }
  SeededHeap seeded;
  const auto reseed = [&](uint32_t seed_round) {
    obs::Span seed_span("solver.init_heap", "solver");
    seed_span.Arg("n", static_cast<uint64_t>(n));
    if (bounded_seed) {
      seeded = BuildCelfSeedBounded(
          run.state, run.excluded, 0, n, seed_cap, seed_round,
          n - run.state.NumRetained() - run.num_excluded,
          &run.pending_gain_evals);
      return;
    }
    constexpr size_t kSeedChunk = 4096;
    const size_t num_chunks = (n + kSeedChunk - 1) / kSeedChunk;
    ParallelFor(pool, 0, num_chunks, [&run, &gains, n](size_t c) {
      const size_t chunk_begin = c * kSeedChunk;
      run.state.GainsInto(chunk_begin,
                          std::min(n, chunk_begin + kSeedChunk), gains);
    });
    run.parallel_batches->Increment();
    run.parallel_items->Increment(n);
    seeded = BuildCelfSeed(run.state, run.excluded, 0, n, gains, seed_cap,
                           seed_round, &run.pending_gain_evals);
  };
  reseed(0);
  LazyHeap& heap = seeded.heap;

  std::vector<size_t> batch;
  std::vector<double> batch_gains;
  // The heap never holds more than n entries, so an oversized (or
  // size_t-max) batch_size must not translate into an oversized reserve.
  batch.reserve(std::min(batch_size, n));
  uint32_t round = 0;
  run.iteration_timer.Reset();
  while (run.items.size() < k) {
    if (run.ShouldStop()) break;
    if (run.state.cover() >= options.stop_at_cover) break;
    if (heap.empty()) {
      if (!seeded.truncated) break;
      // The kept pool drained; pull the cut candidates back in.
      run.seed_refills->Increment();
      reseed(round);
      continue;
    }
    HeapEntry top = heap.top();
    if (run.state.IsRetained(top.node)) {
      heap.pop();
      ++run.pending_heap_pops;
      continue;
    }
    if (top.round == round) {
      if (seeded.truncated && Worse()(top, seeded.theta)) {
        // The fresh front fell below the seed cut: a cut candidate may
        // now be the true argmax. Rebuild from a fresh full sweep.
        run.seed_refills->Increment();
        reseed(round);
        continue;
      }
      // A fresh top dominates every other entry's stored gain, and stored
      // gains upper-bound true gains (submodularity), so this is exactly
      // the plain-greedy argmax; the heap comparator already broke gain
      // ties toward the smaller id.
      heap.pop();
      ++run.pending_heap_pops;
      run.Select(top.node);
      ++round;
      continue;
    }

    // Batched CELF: pop up to B stale candidates and refresh their gains
    // concurrently. Stop early if a fresh entry surfaces — it may already
    // be the winner, no need to refresh anything beneath it.
    batch.clear();
    while (batch.size() < batch_size && !heap.empty()) {
      HeapEntry e = heap.top();
      if (run.state.IsRetained(e.node)) {
        heap.pop();
        ++run.pending_heap_pops;
        continue;
      }
      if (e.round == round) break;
      heap.pop();
      ++run.pending_heap_pops;
      batch.push_back(e.node);
    }

    // As in the parallel execution, only forward the token when a
    // truncation break is permissible; a cancelled refresh produces
    // partial gains that must be discarded, never reinserted.
    const CancelToken* round_cancel =
        run.items.empty() ? nullptr : options.cancel;
    double best_gain = kNegInf;
    size_t best_pos = ParallelArgMaxBatch(
        pool, batch,
        [&run](size_t v) {
          return run.state.GainOf(static_cast<NodeId>(v));
        },
        &batch_gains, &best_gain, round_cancel);
    if (round_cancel != nullptr && run.ShouldStop()) break;
    run.parallel_batches->Increment();
    run.parallel_items->Increment(batch.size());
    run.pending_gain_evals += batch.size();
    run.pending_stale_refreshes += batch.size();

    // Fast path: if the best refreshed gain strictly beats the top stored
    // gain left in the heap, it beats every remaining true gain (true <=
    // stored), and ParallelArgMaxBatch already resolved in-batch ties
    // toward the smaller id — so it is exactly the plain-greedy argmax.
    // On equality we cannot decide here (a remaining entry might refresh
    // to the same gain with a smaller id), so everything is reinserted
    // fresh and the next loop iteration selects via the heap comparator.
    // Under a truncated seed the winner must additionally clear the seed
    // cut — below theta a cut candidate could be the true argmax, so
    // everything is reinserted fresh and the next iteration's fresh-top
    // check routes into the reseed path.
    const bool select_now =
        best_pos != batch.size() &&
        (heap.empty() || best_gain > heap.top().gain) &&
        (!seeded.truncated ||
         !Worse()(HeapEntry{best_gain, static_cast<NodeId>(batch[best_pos]),
                            round},
                  seeded.theta));
    for (size_t j = 0; j < batch.size(); ++j) {
      if (select_now && j == best_pos) continue;
      heap.push({batch_gains[j], static_cast<NodeId>(batch[j]), round});
    }
    if (select_now) {
      run.Select(static_cast<NodeId>(batch[best_pos]));
      ++round;
    }
  }
  return FinishSolution(std::move(run), options.variant,
                        "greedy-lazy-parallel", timer.ElapsedSeconds());
}

double GreedyApproximationGuarantee(Variant variant, size_t k, size_t n) {
  const double one_minus_inv_e = 1.0 - 1.0 / std::numbers::e;
  if (variant == Variant::kIndependent || n == 0) return one_minus_inv_e;
  double ratio = static_cast<double>(k) / static_cast<double>(n);
  double vc_bound = 1.0 - (1.0 - ratio) * (1.0 - ratio);
  return std::max(one_minus_inv_e, vc_bound);
}

}  // namespace prefcover
