#include "core/greedy_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <queue>
#include <vector>

#include "core/cover_function.h"
#include "core/cover_state.h"
#include "util/bitset.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace prefcover {

namespace {

Solution FinishSolution(const CoverState& state, std::vector<NodeId> items,
                        std::vector<double> prefix_covers, Variant variant,
                        const char* algorithm, double seconds) {
  Solution sol;
  sol.items = std::move(items);
  sol.cover_after_prefix = std::move(prefix_covers);
  sol.cover = state.cover();
  sol.item_contributions = state.item_contributions();
  sol.variant = variant;
  sol.algorithm = algorithm;
  sol.solve_seconds = seconds;
  return sol;
}

// Validates force_include / force_exclude and seeds the solver state with
// the forced items (recording them as the first selections). On return
// `excluded` marks the nodes barred from selection.
Status ApplyConstraints(const PreferenceGraph& graph, size_t k,
                        const GreedyOptions& options, CoverState* state,
                        std::vector<NodeId>* items,
                        std::vector<double>* prefix_covers,
                        Bitset* excluded) {
  *excluded = Bitset(graph.NumNodes());
  for (NodeId v : options.force_exclude) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("force_exclude item out of range: " +
                                     std::to_string(v));
    }
    excluded->Set(v);
  }
  if (options.force_include.size() > k) {
    return Status::InvalidArgument(
        "force_include larger than the budget k");
  }
  for (NodeId v : options.force_include) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("force_include item out of range: " +
                                     std::to_string(v));
    }
    if (excluded->Test(v)) {
      return Status::InvalidArgument(
          "item " + std::to_string(v) +
          " is both force_include and force_exclude");
    }
    if (state->IsRetained(v)) {
      return Status::InvalidArgument("force_include item duplicated: " +
                                     std::to_string(v));
    }
    state->AddNode(v);
    items->push_back(v);
    prefix_covers->push_back(state->cover());
  }
  return Status::OK();
}

}  // namespace
Result<Solution> SolveGreedy(const PreferenceGraph& graph, size_t k,
                             const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  const size_t n = graph.NumNodes();
  CoverState state(&graph, options.variant);
  std::vector<NodeId> items;
  std::vector<double> prefix_covers;
  items.reserve(k);
  prefix_covers.reserve(k);
  Bitset excluded;
  PREFCOVER_RETURN_NOT_OK(ApplyConstraints(graph, k, options, &state,
                                           &items, &prefix_covers,
                                           &excluded));

  while (items.size() < k) {
    if (state.cover() >= options.stop_at_cover) break;
    double best_gain = -1.0;
    NodeId best = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (state.IsRetained(v) || excluded.Test(v)) continue;
      double gain = state.GainOf(v);
      if (gain > best_gain) {  // strict: ties keep the smaller id
        best_gain = gain;
        best = v;
      }
    }
    if (best == kInvalidNode) break;  // all nodes retained
    state.AddNode(best);
    items.push_back(best);
    prefix_covers.push_back(state.cover());
  }
  return FinishSolution(state, std::move(items), std::move(prefix_covers),
                        options.variant, "greedy", timer.ElapsedSeconds());
}

Result<Solution> SolveGreedyParallel(const PreferenceGraph& graph, size_t k,
                                     ThreadPool* pool,
                                     const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  const size_t n = graph.NumNodes();
  CoverState state(&graph, options.variant);
  std::vector<NodeId> items;
  std::vector<double> prefix_covers;
  items.reserve(k);
  prefix_covers.reserve(k);
  Bitset excluded;
  PREFCOVER_RETURN_NOT_OK(ApplyConstraints(graph, k, options, &state,
                                           &items, &prefix_covers,
                                           &excluded));

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  while (items.size() < k) {
    if (state.cover() >= options.stop_at_cover) break;
    double best_gain = kNegInf;
    size_t best = ParallelArgMax(
        pool, n,
        [&state, &excluded](size_t v) {
          NodeId node = static_cast<NodeId>(v);
          if (state.IsRetained(node) || excluded.Test(node)) {
            return -std::numeric_limits<double>::infinity();
          }
          return state.GainOf(node);
        },
        &best_gain);
    if (best == n || best_gain == kNegInf) break;
    NodeId chosen = static_cast<NodeId>(best);
    state.AddNode(chosen);
    items.push_back(chosen);
    prefix_covers.push_back(state.cover());
  }
  return FinishSolution(state, std::move(items), std::move(prefix_covers),
                        options.variant, "greedy-parallel",
                        timer.ElapsedSeconds());
}

Result<Solution> SolveGreedyLazy(const PreferenceGraph& graph, size_t k,
                                 const GreedyOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  Stopwatch timer;
  const size_t n = graph.NumNodes();
  CoverState state(&graph, options.variant);
  std::vector<NodeId> items;
  std::vector<double> prefix_covers;
  items.reserve(k);
  prefix_covers.reserve(k);
  Bitset excluded;
  PREFCOVER_RETURN_NOT_OK(ApplyConstraints(graph, k, options, &state,
                                           &items, &prefix_covers,
                                           &excluded));

  struct HeapEntry {
    double gain;
    NodeId node;
    // Selection round the gain was computed in; stale entries are
    // re-evaluated before they can win.
    uint32_t round;
  };
  struct Worse {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.gain != b.gain) return a.gain < b.gain;
      return a.node > b.node;  // smaller id wins ties, as in plain greedy
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Worse> heap;

  {
    // Initial gains: I is all zeros, so GainOf reduces to the static
    // standalone value; one pass over the in-adjacency.
    std::vector<HeapEntry> initial;
    initial.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (state.IsRetained(v) || excluded.Test(v)) continue;
      initial.push_back({state.GainOf(v), v, 0});
    }
    heap = std::priority_queue<HeapEntry, std::vector<HeapEntry>, Worse>(
        Worse(), std::move(initial));
  }

  uint32_t round = 0;
  while (items.size() < k && !heap.empty()) {
    if (state.cover() >= options.stop_at_cover) break;
    HeapEntry top = heap.top();
    heap.pop();
    if (state.IsRetained(top.node)) continue;
    if (top.round != round) {
      // Submodularity: the true gain can only be <= the stale value, so
      // after refreshing, re-inserting preserves heap correctness.
      top.gain = state.GainOf(top.node);
      top.round = round;
      heap.push(top);
      continue;
    }
    state.AddNode(top.node);
    items.push_back(top.node);
    prefix_covers.push_back(state.cover());
    ++round;
  }
  return FinishSolution(state, std::move(items), std::move(prefix_covers),
                        options.variant, "greedy-lazy",
                        timer.ElapsedSeconds());
}

double GreedyApproximationGuarantee(Variant variant, size_t k, size_t n) {
  const double one_minus_inv_e = 1.0 - 1.0 / std::numbers::e;
  if (variant == Variant::kIndependent || n == 0) return one_minus_inv_e;
  double ratio = static_cast<double>(k) / static_cast<double>(n);
  double vc_bound = 1.0 - (1.0 - ratio) * (1.0 - ratio);
  return std::max(one_minus_inv_e, vc_bound);
}

}  // namespace prefcover
