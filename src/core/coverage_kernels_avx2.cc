// AVX2 implementations of the coverage kernels. This translation unit is
// compiled with -mavx2 (and ONLY -mavx2 — no FMA: contraction would break
// the byte-identity contract) and entered only after a runtime CPU check
// (ClampKernelLevel), so the rest of the binary stays runnable on any
// x86-64.
//
// The vector work computes gain/delta *terms* — index loads, residual or
// retained-word gathers, multiplies, self-loop and retained masking — four
// lanes at a time; accumulation into the running sum is done lane by lane
// in the reference's sequential order, so no floating-point reassociation
// occurs anywhere (see coverage_kernels.h for the full argument).
//
// Gathers use signed 32-bit indices; ClampKernelLevel rejects instances
// with >= 2^31 nodes before this code can be reached.

#if defined(PREFCOVER_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "graph/preference_graph.h"

// The gather intrinsics are macros that expand to C-style casts and to
// an undefined-source builtin inside this TU; silence the project-wide
// style warnings those expansions trip.
#pragma GCC diagnostic ignored "-Wold-style-cast"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace prefcover {
namespace internal {

namespace {

// Expands four 32-bit lane masks (0 / -1) to 64-bit and clears the
// corresponding double lanes.
inline __m256d MaskOutLanes(__m256d terms, __m128i lane_mask32) {
  const __m256i mask64 = _mm256_cvtepi32_epi64(lane_mask32);
  return _mm256_andnot_pd(_mm256_castsi256_pd(mask64), terms);
}

// 0/-1 64-bit lane masks for "retained bit of ids[lane] is set", read
// from the packed bitset words.
inline __m256i RetainedLaneMask(__m128i ids, const uint64_t* words) {
  const __m128i word_idx = _mm_srli_epi32(ids, 6);
  const __m256i word_vals = _mm256_i32gather_epi64(
      reinterpret_cast<const long long*>(words), word_idx, 8);
  const __m256i shift =
      _mm256_cvtepi32_epi64(_mm_and_si128(ids, _mm_set1_epi32(63)));
  const __m256i bit = _mm256_and_si256(_mm256_srlv_epi64(word_vals, shift),
                                       _mm256_set1_epi64x(1));
  return _mm256_sub_epi64(_mm256_setzero_si256(), bit);  // 0 or ~0
}

// Adds the four lanes of `terms` into `gain` in lane order — the exact
// association of the scalar reference loop. Lanes are extracted with
// register shuffles; a round-trip through a stack buffer costs a
// store-forwarding stall per element in this hot loop.
inline double AccumulateLanes(double gain, __m256d terms) {
  const __m128d lo = _mm256_castpd256_pd128(terms);
  const __m128d hi = _mm256_extractf128_pd(terms, 1);
  gain += _mm_cvtsd_f64(lo);
  gain += _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  gain += _mm_cvtsd_f64(hi);
  gain += _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return gain;
}

}  // namespace

double GainIndependentAvx2(const NodeId* nodes, const double* weights,
                           size_t degree, const double* residual, NodeId v,
                           double gain) {
  const __m128i self = _mm_set1_epi32(static_cast<int>(v));
  size_t i = 0;
  for (; i + 4 <= degree; i += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + i));
    const __m256d res = _mm256_i32gather_pd(residual, ids, 8);
    __m256d terms = _mm256_mul_pd(_mm256_loadu_pd(weights + i), res);
    terms = MaskOutLanes(terms, _mm_cmpeq_epi32(ids, self));
    gain = AccumulateLanes(gain, terms);
  }
  for (; i < degree; ++i) {
    const NodeId u = nodes[i];
    const double term = weights[i] * residual[u];
    gain += (u == v) ? 0.0 : term;
  }
  return gain;
}

double GainNormalizedAvx2(const NodeId* nodes, const double* static_gain,
                          size_t degree, const uint64_t* retained_words,
                          NodeId v, double gain) {
  const __m128i self = _mm_set1_epi32(static_cast<int>(v));
  size_t i = 0;
  for (; i + 4 <= degree; i += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + i));
    __m256d terms = _mm256_loadu_pd(static_gain + i);
    terms = _mm256_andnot_pd(
        _mm256_castsi256_pd(RetainedLaneMask(ids, retained_words)), terms);
    terms = MaskOutLanes(terms, _mm_cmpeq_epi32(ids, self));
    gain = AccumulateLanes(gain, terms);
  }
  for (; i < degree; ++i) {
    const NodeId u = nodes[i];
    const bool masked =
        (u == v) || ((retained_words[u >> 6] >> (u & 63)) & 1ULL);
    gain += masked ? 0.0 : static_gain[i];
  }
  return gain;
}

void AddNodeIndependentAvx2(const NodeId* nodes, const double* weights,
                            size_t degree, const double* node_weights,
                            double* item, double* residual, double* cover) {
  // Deltas are vectorized; the scattered item/residual writes have no
  // AVX2 scatter and stay scalar. Retained u (incl. v's self-loop) carry
  // residual == +0.0, so their delta is +0.0 and every write below is a
  // bitwise no-op — no membership test needed.
  size_t i = 0;
  for (; i + 4 <= degree; i += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + i));
    const __m256d res = _mm256_i32gather_pd(residual, ids, 8);
    const __m256d deltas =
        _mm256_mul_pd(_mm256_loadu_pd(weights + i), res);
    alignas(32) double lane[4];
    _mm256_store_pd(lane, deltas);
    for (size_t j = 0; j < 4; ++j) {
      const NodeId u = nodes[i + j];
      *cover += lane[j];
      item[u] += lane[j];
      residual[u] = node_weights[u] - item[u];
    }
  }
  for (; i < degree; ++i) {
    const NodeId u = nodes[i];
    const double delta = weights[i] * residual[u];
    *cover += delta;
    item[u] += delta;
    residual[u] = node_weights[u] - item[u];
  }
}

void AddNodeNormalizedAvx2(const NodeId* nodes, const double* static_gain,
                           size_t degree, const uint64_t* retained_words,
                           const double* node_weights, double* item,
                           double* residual, double* cover) {
  size_t i = 0;
  for (; i + 4 <= degree; i += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + i));
    __m256d deltas = _mm256_loadu_pd(static_gain + i);
    deltas = _mm256_andnot_pd(
        _mm256_castsi256_pd(RetainedLaneMask(ids, retained_words)), deltas);
    alignas(32) double lane[4];
    _mm256_store_pd(lane, deltas);
    for (size_t j = 0; j < 4; ++j) {
      const NodeId u = nodes[i + j];
      *cover += lane[j];
      item[u] += lane[j];
      residual[u] = node_weights[u] - item[u];
    }
  }
  for (; i < degree; ++i) {
    const NodeId u = nodes[i];
    const bool retained = (retained_words[u >> 6] >> (u & 63)) & 1ULL;
    const double delta = retained ? 0.0 : static_gain[i];
    *cover += delta;
    item[u] += delta;
    residual[u] = node_weights[u] - item[u];
  }
}

// Range forms of the gain kernels: the per-node bodies inline into the
// sweep, so the greedy heap seed pays one call for the whole range
// instead of one dispatch per node.
void GainRangeIndependentAvx2(const NodeId* src, const double* weights,
                              const size_t* off, size_t begin, size_t end,
                              const double* residual, double* out) {
  for (size_t v = begin; v < end; ++v) {
    out[v] = GainIndependentAvx2(src + off[v], weights + off[v],
                                 off[v + 1] - off[v], residual,
                                 static_cast<NodeId>(v), residual[v]);
  }
}

void GainRangeNormalizedAvx2(const NodeId* src, const double* static_gain,
                             const size_t* off, size_t begin, size_t end,
                             const uint64_t* retained_words,
                             const double* residual, double* out) {
  for (size_t v = begin; v < end; ++v) {
    out[v] = GainNormalizedAvx2(src + off[v], static_gain + off[v],
                                off[v + 1] - off[v], retained_words,
                                static_cast<NodeId>(v), residual[v]);
  }
}

void RefreshResidualsAvx2(const double* node_weights, const double* item,
                          double* residual, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(residual + i,
                     _mm256_sub_pd(_mm256_loadu_pd(node_weights + i),
                                   _mm256_loadu_pd(item + i)));
  }
  for (; i < n; ++i) residual[i] = node_weights[i] - item[i];
}

}  // namespace internal
}  // namespace prefcover

#endif  // PREFCOVER_HAVE_AVX2
