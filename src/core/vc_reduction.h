// The approximation-preserving reductions between NPC_k and VC_k from the
// proof of Theorem 3.1.
//
// Forward (NPC_k -> VC_k): complete each node's outgoing weight to 1 with a
// self-loop, drop orientations, and scale each edge (v, u) by its origin's
// node weight: w' = W(v) * W(v, u). For every S, the VC_k covered weight of
// S in the result equals C(S) in the original graph.
//
// Backward (VC_k -> NPC_k): orient edges arbitrarily (self-loops stay),
// set each node's weight to the total weight of its outgoing edges, divide
// each outgoing edge by that total, and finally normalize node weights by
// their grand total N. Covers scale by exactly 1/N, preserving ratios.

#ifndef PREFCOVER_CORE_VC_REDUCTION_H_
#define PREFCOVER_CORE_VC_REDUCTION_H_

#include "core/max_vertex_cover.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief NPC_k instance -> equivalent VC_k instance.
///
/// Requires out-weight sums <= 1 (Normalized admissibility). Zero-weight
/// nodes contribute zero-weight edges, which are dropped (they cannot
/// affect any cover).
Result<VertexCoverInstance> ReduceNpcToVc(const PreferenceGraph& graph);

/// \brief VC_k instance -> equivalent NPC_k instance (node weights
/// normalized to sum to 1; covers are scaled by 1 / `*scale_out`).
///
/// `*scale_out` receives N, the pre-normalization total node weight, so
/// callers can map covers back: VC covered weight == N * C(S).
Result<PreferenceGraph> ReduceVcToNpc(const VertexCoverInstance& instance,
                                      double* scale_out);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_VC_REDUCTION_H_
