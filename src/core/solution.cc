#include "core/solution.h"

#include <cmath>

#include "core/cover_function.h"
#include "util/bitset.h"

namespace prefcover {

double Solution::ItemCoverage(const PreferenceGraph& graph, NodeId v) const {
  for (NodeId s : items) {
    if (s == v) return 1.0;
  }
  double w = graph.NodeWeight(v);
  if (w <= 0.0) return 0.0;
  return item_contributions[v] / w;
}

double Solution::PrefixCover(size_t k) const {
  PREFCOVER_CHECK(k <= cover_after_prefix.size());
  if (k == 0) return 0.0;
  return cover_after_prefix[k - 1];
}

std::vector<NodeId> Solution::PrefixItems(size_t k) const {
  PREFCOVER_CHECK(k <= items.size());
  return std::vector<NodeId>(items.begin(),
                             items.begin() + static_cast<ptrdiff_t>(k));
}

size_t Solution::SmallestPrefixReaching(double threshold) const {
  if (threshold <= 0.0) return 0;  // the empty prefix already qualifies
  for (size_t i = 0; i < cover_after_prefix.size(); ++i) {
    if (cover_after_prefix[i] >= threshold) return i + 1;
  }
  return items.size() + 1;
}

Status Solution::Validate(const PreferenceGraph& graph) const {
  Bitset seen(graph.NumNodes());
  for (NodeId v : items) {
    if (v >= graph.NumNodes()) {
      return Status::Internal("solution item out of range: " +
                              std::to_string(v));
    }
    if (seen.Test(v)) {
      return Status::Internal("solution item duplicated: " +
                              std::to_string(v));
    }
    seen.Set(v);
  }
  double exact = EvaluateCover(graph, seen, variant);
  if (std::fabs(exact - cover) > 1e-6) {
    return Status::Internal("solution cover " + std::to_string(cover) +
                            " disagrees with exact evaluation " +
                            std::to_string(exact));
  }
  if (items.size() != cover_after_prefix.size()) {
    return Status::Internal("prefix cover length mismatch");
  }
  if (!cover_after_prefix.empty() &&
      std::fabs(cover_after_prefix.back() - cover) > 1e-9) {
    return Status::Internal("final prefix cover disagrees with cover");
  }
  return Status::OK();
}

}  // namespace prefcover
