// The paper's greedy scheme (Algorithm 1) in four executions that produce
// identical solutions:
//
//   - plain:         the literal O(nkD) loop — each of the k iterations
//                    scans every unretained candidate's Gain;
//   - parallel:      the paper's parallelization — the per-iteration
//                    candidate scan fans out over a thread pool,
//                    O(k + nkD/N) for N threads;
//   - lazy:          CELF-style stale-gain pruning. Both variants' cover
//                    functions are monotone submodular, so a candidate's
//                    gain only decreases as S grows; re-evaluating the heap
//                    top until it is fresh selects exactly the plain-greedy
//                    argmax (ties break to the smaller id in every
//                    execution);
//   - lazy-parallel: batched CELF — pops the top-B stale candidates,
//                    re-evaluates their gains concurrently on the pool, and
//                    reinserts until the top is fresh. Combines the lazy
//                    execution's pruning with the parallel execution's
//                    throughput while still selecting the identical node
//                    sequence (see docs/ALGORITHMS.md for the argument).
//
// Every execution fills `Solution::stats` (SolverStats) so pruning
// effectiveness and parallel utilization are measurable.
//
// Approximation guarantees (paper Theorems 3.1 / 4.1 and Table 1):
//   Independent: (1 - 1/e), tight unless P = NP.
//   Normalized:  max{(1 - 1/e), 1 - (1 - k/n)^2}.

#ifndef PREFCOVER_CORE_GREEDY_SOLVER_H_
#define PREFCOVER_CORE_GREEDY_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/candidate_evaluator.h"
#include "core/solution.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prefcover {

/// \brief Periodic crash-safe checkpointing of a greedy solve (see
/// core/checkpoint.h for the file format and ROBUSTNESS.md for the
/// model).
///
/// When `path` is set, the solver writes the selected prefix every
/// `every_rounds` selections (and once more if the solve is truncated by
/// cancellation), via util::WriteFileAtomic so a crash never leaves a
/// torn file. A write failure degrades gracefully: the solve continues,
/// logs one warning, and bumps `checkpoint.write_failures` — the
/// solution is never affected by checkpoint IO.
struct CheckpointConfig {
  /// Checkpoint file path; empty disables checkpointing.
  std::string path;

  /// Write cadence in selection rounds (>= 1).
  uint32_t every_rounds = 16;

  /// Selections to replay before the search starts (loaded from a
  /// checkpoint by ReadCheckpoint + ValidateCheckpointForResume). The
  /// greedy prefix property guarantees the resumed run re-joins the
  /// deterministic selection order, so the final solution is identical
  /// to an uninterrupted run. When set, `force_include` is ignored (the
  /// prefix already contains it).
  std::vector<NodeId> resume_prefix;
};

/// \brief Options shared by the greedy-family entry points.
struct GreedyOptions {
  Variant variant = Variant::kIndependent;

  /// Stop early once C(S) reaches this threshold (the complementary
  /// minimization problem of Section 3.2); 1.0 keeps the budget semantics
  /// (C(S) can reach 1 exactly only when S covers everything).
  /// Must not be NaN.
  double stop_at_cover = 2.0;  // > 1 == never stop early

  /// Items that MUST be retained (e.g. contracted with a vendor). They are
  /// selected first, in the given order, and count toward the budget k.
  /// Must be distinct, within range, of size <= k, and disjoint from
  /// force_exclude.
  std::vector<NodeId> force_include;

  /// Items that must NOT be retained (e.g. restricted from cross-border
  /// shipping). They can still be *covered* by retained alternatives.
  /// Must be distinct and within range.
  std::vector<NodeId> force_exclude;

  /// Batch size B for SolveGreedyLazyParallel: how many stale heap entries
  /// are re-evaluated per parallel dispatch. 0 = auto (4x the pool width).
  /// The selected node sequence is identical for every value.
  size_t batch_size = 0;

  /// Heap seed capacity T for the lazy executions: the seed keeps only
  /// the top-T candidates by (gain, id) and pulls the cut-off rest back
  /// in through exact threshold refills when the selection front drops
  /// below the cut (counted in `SolverStats::seed_refills`). 0 = default
  /// (1024). The selected node sequence is identical for every value —
  /// this is purely a performance knob; see greedy_solver.cc for the
  /// exactness argument.
  size_t seed_heap_capacity = 0;

  /// Cooperative cancellation (explicit Cancel() or a deadline). Checked
  /// at round boundaries: a tripped token stops the search and returns
  /// the best greedy prefix selected so far — never an error, never an
  /// empty solution when at least one selection was possible — with
  /// `Solution::stats.truncated` set and the `solver.cancelled` counter
  /// bumped. nullptr (the default) costs one pointer test per round.
  const CancelToken* cancel = nullptr;

  /// Periodic crash-safe checkpointing / resume; disabled by default.
  CheckpointConfig checkpoint;
};

/// \brief Validates a GreedyOptions instance against the problem size: NaN
/// stop_at_cover, duplicate or out-of-range force_include/force_exclude,
/// overlap between the two lists, force_include larger than k. Every
/// greedy entry point applies exactly this check, so all four executions
/// accept and reject the same inputs with the same errors.
Status ValidateGreedyOptions(const PreferenceGraph& graph, size_t k,
                             const GreedyOptions& options);

/// \brief Plain greedy (Algorithm 1). k must be <= NumNodes().
Result<Solution> SolveGreedy(const PreferenceGraph& graph, size_t k,
                             const GreedyOptions& options = GreedyOptions());

/// \brief Parallel greedy: candidate gains are evaluated on `pool`
/// (nullptr degrades to the plain loop). Produces the same solution as
/// SolveGreedy for any thread count.
Result<Solution> SolveGreedyParallel(
    const PreferenceGraph& graph, size_t k, ThreadPool* pool,
    const GreedyOptions& options = GreedyOptions());

/// \brief Lazy (CELF) greedy. Produces the same solution as SolveGreedy,
/// typically orders of magnitude faster for large n with small k/n.
Result<Solution> SolveGreedyLazy(
    const PreferenceGraph& graph, size_t k,
    const GreedyOptions& options = GreedyOptions());

/// \brief Builds the evaluator a SolveGreedyWithEvaluator run solves
/// against. Called once, after option validation and prefix seeding, with
/// a context whose CoverState already reflects any force_include / resume
/// prefix. Returning an error aborts the solve before any search round.
using CandidateEvaluatorFactory =
    std::function<Result<std::unique_ptr<CandidateEvaluator>>(
        const EvaluatorContext&)>;

/// \brief The generic greedy driver (Algorithm 1's round loop) over a
/// CandidateEvaluator: per round — cancellation / stop_at_cover checks,
/// one BestCandidate() argmax, AddNode on the shared state, one
/// CommitWinner() — with the usual prefix seeding, checkpoint cadence,
/// telemetry and Solution assembly shared with the other executions.
///
/// SolveGreedyLazy is exactly this driver over LazyCandidateEvaluator;
/// SolveGreedyDistributed (src/dist/) is this driver over the
/// coordinator-side evaluator. Any evaluator whose BestCandidate returns
/// the exact (gain, id)-argmax yields the canonical greedy solution,
/// byte-identical across executions.
Result<Solution> SolveGreedyWithEvaluator(
    const PreferenceGraph& graph, size_t k, const GreedyOptions& options,
    const CandidateEvaluatorFactory& factory, const char* algorithm);

/// \brief Batched-CELF greedy: lazy pruning with the stale re-evaluations
/// fanned out over `pool` (nullptr degrades to a serial batched loop).
/// Produces the same solution as SolveGreedy for any thread count and any
/// batch size, including under force_include/force_exclude and
/// stop_at_cover.
Result<Solution> SolveGreedyLazyParallel(
    const PreferenceGraph& graph, size_t k, ThreadPool* pool,
    const GreedyOptions& options = GreedyOptions());

/// \brief The theoretical greedy approximation guarantee for a problem
/// size (Table 1, "Greedy Algorithm" column):
/// Independent -> 1 - 1/e; Normalized -> max{1 - 1/e, 1 - (1 - k/n)^2}.
double GreedyApproximationGuarantee(Variant variant, size_t k, size_t n);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_GREEDY_SOLVER_H_
