#include "core/candidate_evaluator.h"

#include <algorithm>
#include <limits>

#include "core/greedy_solver.h"
#include "obs/trace.h"

namespace prefcover {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr size_t kDefaultCelfSeedCapacity = 1024;

}  // namespace

// Collect-and-compact top-cap selection (see the exactness comment block
// in greedy_solver.cc, which this generalizes to a shard range):
// candidates above the running threshold are appended to a 2*cap buffer
// cut back to the exact top `cap` (nth_element by pair order) whenever it
// fills — O(1) amortized per survivor instead of a push_heap. (gain, id)
// pairs are unique, so the kept set does not depend on nth_element's
// implementation.
CelfSeededHeap BuildCelfSeed(const CoverState& state, const Bitset& excluded,
                             size_t begin, size_t end,
                             std::span<const double> gains, size_t cap,
                             uint32_t round, uint64_t* gain_evals) {
  const auto best_first = [](const CelfHeapEntry& a, const CelfHeapEntry& b) {
    return CelfWorse()(b, a);
  };
  std::vector<CelfHeapEntry> keep;
  keep.reserve(2 * cap);
  size_t candidates = 0;
  double theta_gain = kNegInf;  // nothing is cut until the first compact
  NodeId theta_node = 0;
  const auto compact = [&] {
    std::nth_element(keep.begin(),
                     keep.begin() + static_cast<ptrdiff_t>(cap - 1),
                     keep.end(), best_first);
    keep.resize(cap);
    theta_gain = keep[cap - 1].gain;
    theta_node = keep[cap - 1].node;
  };
  ForEachCandidateInRange(state.retained(), excluded, begin, end,
                          [&](NodeId v) {
    ++candidates;
    ++*gain_evals;
    const double g = gains[v];
    if (g < theta_gain || (g == theta_gain && v > theta_node)) return;
    keep.push_back({g, v, round});
    if (keep.size() == 2 * cap) compact();
  });
  if (keep.size() > cap) compact();
  CelfSeededHeap out;
  out.truncated = candidates > keep.size();
  if (out.truncated) out.theta = {theta_gain, theta_node, round};
  out.heap = CelfHeap(CelfWorse(), std::move(keep));
  return out;
}

// Bound-ordered walk with exact early exit (the kernel-tier seed; see the
// comment block in greedy_solver.cc). theta is the last compact's cut — a
// lower bound on the running exact threshold — so the stop test is
// conservative: it can only visit extra nodes, never skip a needed one.
CelfSeededHeap BuildCelfSeedBounded(const CoverState& state,
                                    const Bitset& excluded, size_t begin,
                                    size_t end, size_t cap, uint32_t round,
                                    size_t live_candidates,
                                    uint64_t* gain_evals) {
  const auto best_first = [](const CelfHeapEntry& a, const CelfHeapEntry& b) {
    return CelfWorse()(b, a);
  };
  const PreferenceGraph& graph = state.graph();
  const std::span<const double> bounds = graph.StaticGainBounds();
  const Bitset& retained = state.retained();
  std::vector<CelfHeapEntry> keep;
  keep.reserve(2 * cap);
  double theta_gain = kNegInf;  // nothing is cut until the first compact
  NodeId theta_node = 0;
  const auto compact = [&] {
    std::nth_element(keep.begin(),
                     keep.begin() + static_cast<ptrdiff_t>(cap - 1),
                     keep.end(), best_first);
    keep.resize(cap);
    theta_gain = keep[cap - 1].gain;
    theta_node = keep[cap - 1].node;
  };
  for (const NodeId v : graph.NodesByStaticGainBound()) {
    // Strict: a bound that ties theta can still hide a gain that ties
    // theta with a smaller id, which would outrank it in pair order.
    if (bounds[v] < theta_gain) break;
    if (v < begin || v >= end) continue;
    if (retained.Test(v) || excluded.Test(v)) continue;
    const double g = state.GainOf(v);
    ++*gain_evals;
    if (g < theta_gain || (g == theta_gain && v > theta_node)) continue;
    keep.push_back({g, v, round});
    if (keep.size() == 2 * cap) compact();
  }
  if (keep.size() > cap) compact();
  CelfSeededHeap out;
  // Candidates below the cut — whether filtered or never visited — were
  // truncated exactly when fewer entries were kept than candidates exist.
  out.truncated = live_candidates > keep.size();
  if (out.truncated) out.theta = {theta_gain, theta_node, round};
  out.heap = CelfHeap(CelfWorse(), std::move(keep));
  return out;
}

CelfShardEngine::CelfShardEngine(const CoverState* state,
                                 const Bitset* excluded, Config config)
    : state_(state),
      excluded_(excluded),
      shard_begin_(config.shard_begin),
      shard_end_(config.shard_end),
      live_candidates_(0) {
  const size_t n = state_->graph().NumNodes();
  if (shard_end_ == 0 && shard_begin_ == 0) shard_end_ = n;
  shard_end_ = std::min(shard_end_, n);
  shard_begin_ = std::min(shard_begin_, shard_end_);
  const size_t cap = config.seed_heap_capacity > 0
                         ? config.seed_heap_capacity
                         : kDefaultCelfSeedCapacity;
  seed_cap_ = std::max<size_t>(
      1, std::min(cap, shard_end_ - shard_begin_));
  ForEachCandidateInRange(state_->retained(), *excluded_, shard_begin_,
                          shard_end_, [&](NodeId) { ++live_candidates_; });
}

void CelfShardEngine::Reseed() {
  obs::Span seed_span("solver.init_heap", "solver");
  seed_span.Arg("n", static_cast<uint64_t>(shard_end_ - shard_begin_));
  if (state_->simd_level() != SimdLevel::kScalar) {
    seeded_ = BuildCelfSeedBounded(*state_, *excluded_, shard_begin_,
                                   shard_end_, seed_cap_, round_,
                                   live_candidates_,
                                   &counters_.gain_evaluations);
    return;
  }
  // Scalar tier: the literal reference — one batch gain sweep over the
  // shard, cut to the top seed_cap_. The buffer is indexed by absolute
  // node id (GainsInto's contract), so it spans [0, shard_end_) even for
  // a tail shard; allocated once and reused across refills.
  if (gains_.empty()) {
    gains_.resize(shard_end_);
  }
  state_->GainsInto(shard_begin_, shard_end_, gains_);
  seeded_ = BuildCelfSeed(*state_, *excluded_, shard_begin_, shard_end_,
                          gains_, seed_cap_, round_,
                          &counters_.gain_evaluations);
}

CandidateProposal CelfShardEngine::Propose() {
  if (pending_.has_value()) {
    return {true, pending_->gain, pending_->node};
  }
  if (!seeded_once_) {
    seeded_once_ = true;
    Reseed();
  }
  CelfHeap& heap = seeded_.heap;
  for (;;) {
    if (heap.empty()) {
      if (!seeded_.truncated) return CandidateProposal{};  // exhausted
      // The kept pool drained; pull the cut candidates back in.
      ++counters_.seed_refills;
      Reseed();
      continue;
    }
    CelfHeapEntry top = heap.top();
    heap.pop();
    ++counters_.heap_pops;
    if (state_->IsRetained(top.node)) continue;
    if (top.round != round_) {
      // Submodularity: the true gain can only be <= the stale value, so
      // after refreshing, re-inserting preserves heap correctness.
      top.gain = state_->GainOf(top.node);
      top.round = round_;
      ++counters_.gain_evaluations;
      ++counters_.stale_refreshes;
      heap.push(top);
      continue;
    }
    if (seeded_.truncated && CelfWorse()(top, seeded_.theta)) {
      // The fresh front fell below the seed cut: a cut candidate may now
      // be the true argmax. Rebuild from a fresh sweep (top's node is
      // still a candidate, so the rebuild re-covers it).
      ++counters_.seed_refills;
      Reseed();
      continue;
    }
    // A fresh top dominates every other entry's stored gain, and stored
    // gains upper-bound true gains, so this is exactly the shard's
    // plain-greedy argmax. Held out of the heap until OnCommitted.
    pending_ = top;
    return {true, top.gain, top.node};
  }
}

void CelfShardEngine::OnCommitted(NodeId winner) {
  if (pending_.has_value()) {
    if (pending_->node != winner) {
      // A remote shard won the round: recycle the held proposal. Its
      // round tag predates the commit, so it re-enters as a stale upper
      // bound and gets refreshed before it can win again.
      seeded_.heap.push(*pending_);
    }
    pending_.reset();
  }
  if (winner >= shard_begin_ && winner < shard_end_) {
    --live_candidates_;  // the winner left this shard's candidate pool
  }
  ++round_;
}

LazyCandidateEvaluator::LazyCandidateEvaluator(const EvaluatorContext& context)
    : engine_(context.state, context.excluded,
              CelfShardEngine::Config{
                  0, context.graph->NumNodes(),
                  context.options != nullptr
                      ? context.options->seed_heap_capacity
                      : 0}) {}

Result<CandidateProposal> LazyCandidateEvaluator::BestCandidate() {
  return engine_.Propose();
}

Status LazyCandidateEvaluator::CommitWinner(NodeId v) {
  engine_.OnCommitted(v);
  return Status::OK();
}

void LazyCandidateEvaluator::DrainCounters(EvaluatorCounters* into) {
  engine_.DrainCounters(into);
}

}  // namespace prefcover
