#include "core/vc_reduction.h"

#include <unordered_map>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_stats.h"

namespace prefcover {

Result<VertexCoverInstance> ReduceNpcToVc(const PreferenceGraph& graph) {
  constexpr double kTolerance = 1e-9;
  if (!IsNormalizedAdmissible(graph, kTolerance)) {
    return Status::FailedPrecondition(
        "NPC->VC reduction requires out-weight sums <= 1");
  }
  VertexCoverInstance instance(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const double node_weight = graph.NodeWeight(v);
    double out_sum = 0.0;
    AdjacencyView out = graph.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      out_sum += out.weights[i];
      double scaled = node_weight * out.weights[i];
      if (scaled > 0.0) {
        PREFCOVER_RETURN_NOT_OK(
            instance.AddEdge(v, out.nodes[i], scaled));
      }
    }
    // Self-loop completion: the uncoverable share of requests for v.
    double residual = 1.0 - out_sum;
    if (residual > kTolerance && node_weight * residual > 0.0) {
      PREFCOVER_RETURN_NOT_OK(instance.AddEdge(v, v, node_weight * residual));
    }
  }
  return instance;
}

Result<PreferenceGraph> ReduceVcToNpc(const VertexCoverInstance& instance,
                                      double* scale_out) {
  const size_t n = instance.NumNodes();

  // Orient each undirected edge from its smaller to its larger endpoint
  // (self-loops stay), accumulating parallel edges — combining them is
  // cover-equivalent, as the paper notes.
  std::unordered_map<uint64_t, double> oriented;
  oriented.reserve(instance.NumEdges());
  for (size_t e = 0; e < instance.NumEdges(); ++e) {
    NodeId u = instance.EdgeU(e);
    NodeId v = instance.EdgeV(e);
    if (u > v) std::swap(u, v);
    oriented[(static_cast<uint64_t>(u) << 32) | v] += instance.EdgeWeight(e);
  }

  // M_v: total outgoing weight per node under this orientation.
  std::vector<double> out_total(n, 0.0);
  for (const auto& [key, w] : oriented) {
    out_total[static_cast<NodeId>(key >> 32)] += w;
  }
  double grand_total = 0.0;
  for (double m : out_total) grand_total += m;
  if (!(grand_total > 0.0)) {
    return Status::InvalidArgument(
        "VC->NPC reduction needs at least one positive-weight edge");
  }

  GraphBuilder builder;
  builder.Reserve(n, oriented.size());
  builder.AddNodes(n);
  for (NodeId v = 0; v < n; ++v) {
    // W(v) = M_v / N: nodes with no outgoing edges get weight 0, per the
    // proof of Theorem 3.1.
    PREFCOVER_RETURN_NOT_OK(
        builder.SetNodeWeight(v, out_total[v] / grand_total));
  }
  for (const auto& [key, w] : oriented) {
    NodeId from = static_cast<NodeId>(key >> 32);
    NodeId to = static_cast<NodeId>(key & 0xFFFFFFFFu);
    PREFCOVER_RETURN_NOT_OK(builder.AddEdge(from, to, w / out_total[from]));
  }
  if (scale_out != nullptr) *scale_out = grand_total;

  GraphValidationOptions options;
  options.allow_self_loops = true;
  options.require_normalized_out_weights = true;
  return builder.Finalize(options);
}

}  // namespace prefcover
