#include "core/complementary_solver.h"

#include <utility>

#include "core/baseline_solvers.h"
#include "core/cover_state.h"
#include "core/greedy_solver.h"

namespace prefcover {

namespace {

// Truncates an ordered solution to its first `size` items, recomputing the
// dependent fields from the prefix data.
Solution TruncateToPrefix(const PreferenceGraph& graph, Solution full,
                          size_t size, Variant variant) {
  Solution out;
  out.items = full.PrefixItems(size);
  out.cover_after_prefix.assign(
      full.cover_after_prefix.begin(),
      full.cover_after_prefix.begin() + static_cast<ptrdiff_t>(size));
  out.cover = size == 0 ? 0.0 : out.cover_after_prefix.back();
  out.variant = variant;
  out.algorithm = std::move(full.algorithm);
  out.solve_seconds = full.solve_seconds;
  // I must describe the truncated set, not the full one; replaying the
  // prefix is O(prefix * D) which the callers' sizes tolerate.
  CoverState state(&graph, variant);
  for (NodeId v : out.items) state.AddNode(v);
  out.item_contributions = state.item_contributions();
  return out;
}

}  // namespace

Result<ThresholdResult> SolveCoverageThreshold(const PreferenceGraph& graph,
                                               double threshold,
                                               Variant variant,
                                               ThresholdAlgorithm algorithm) {
  if (threshold < 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in [0, 1]");
  }

  Solution full;
  switch (algorithm) {
    case ThresholdAlgorithm::kGreedy: {
      // Direct greedy: stop as soon as the running cover clears the
      // threshold — no binary search, per Section 3.2.
      GreedyOptions options;
      options.variant = variant;
      options.stop_at_cover = threshold;
      PREFCOVER_ASSIGN_OR_RETURN(
          full, SolveGreedyLazy(graph, graph.NumNodes(), options));
      break;
    }
    case ThresholdAlgorithm::kTopKWeight: {
      PREFCOVER_ASSIGN_OR_RETURN(
          full, SolveTopKWeight(graph, graph.NumNodes(), variant));
      break;
    }
    case ThresholdAlgorithm::kTopKCoverage: {
      PREFCOVER_ASSIGN_OR_RETURN(
          full, SolveTopKCoverage(graph, graph.NumNodes(), variant));
      break;
    }
  }

  ThresholdResult result;
  size_t needed = full.SmallestPrefixReaching(threshold);
  if (needed > full.items.size()) {
    // Unreachable even with everything retained.
    result.set_size = full.items.size();
    result.reached = false;
    result.solution = std::move(full);
    return result;
  }
  result.set_size = needed;
  result.reached = true;
  result.solution = TruncateToPrefix(graph, std::move(full), needed, variant);
  return result;
}

}  // namespace prefcover
