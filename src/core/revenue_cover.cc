#include "core/revenue_cover.h"

#include <cmath>

#include "core/cover_function.h"
#include "core/cover_state.h"
#include "graph/graph_builder.h"
#include "util/bitset.h"

namespace prefcover {

namespace {

// Builds the revenue-scaled twin of `graph`: node weights W(v)*r(v)/scale
// so that the plain cover function on it, multiplied by `scale`, is the
// expected revenue. Edge probabilities are untouched.
Result<PreferenceGraph> BuildScaledGraph(const PreferenceGraph& graph,
                                         const std::vector<double>& revenues,
                                         double* scale_out) {
  double scale = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    scale += graph.NodeWeight(v) * revenues[v];
  }
  if (!(scale > 0.0)) {
    return Status::InvalidArgument(
        "total weighted revenue must be positive");
  }
  GraphBuilder builder;
  builder.Reserve(graph.NumNodes(), graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    builder.AddNode(graph.NodeWeight(v) * revenues[v] / scale,
                    graph.HasLabels() ? graph.Label(v) : "");
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    AdjacencyView out = graph.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      PREFCOVER_RETURN_NOT_OK(
          builder.AddEdge(v, out.nodes[i], out.weights[i]));
    }
  }
  *scale_out = scale;
  return builder.Finalize();  // weights sum to 1 by construction
}

Status ValidateOptions(const PreferenceGraph& graph,
                       const RevenueCoverOptions& options) {
  if (options.revenues.size() != graph.NumNodes() ||
      options.costs.size() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "revenue/cost vectors must match the graph size");
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (!(options.revenues[v] > 0.0) || std::isnan(options.revenues[v])) {
      return Status::InvalidArgument("revenues must be positive");
    }
    if (!(options.costs[v] > 0.0) || std::isnan(options.costs[v])) {
      return Status::InvalidArgument("costs must be positive");
    }
  }
  if (!(options.capacity > 0.0)) {
    return Status::InvalidArgument("capacity must be positive");
  }
  return ValidateInstance(graph, 0, options.variant);
}

}  // namespace

Result<RevenueSolution> SolveRevenueCover(const PreferenceGraph& graph,
                                          const RevenueCoverOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateOptions(graph, options));
  double scale = 0.0;
  PREFCOVER_ASSIGN_OR_RETURN(
      PreferenceGraph scaled,
      BuildScaledGraph(graph, options.revenues, &scale));

  // Cost-benefit greedy on the scaled graph.
  CoverState state(&scaled, options.variant);
  RevenueSolution result;
  result.revenue_upper_bound = scale;
  double remaining = options.capacity;
  for (;;) {
    NodeId best = kInvalidNode;
    double best_ratio = -1.0;
    for (NodeId v = 0; v < scaled.NumNodes(); ++v) {
      if (state.IsRetained(v) || options.costs[v] > remaining) continue;
      double ratio = state.GainOf(v) / options.costs[v];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = v;
      }
    }
    if (best == kInvalidNode) break;
    state.AddNode(best);
    result.items.push_back(best);
    result.total_cost += options.costs[best];
    remaining -= options.costs[best];
  }
  result.expected_revenue = state.cover() * scale;

  // Best-singleton guard: without it the cost-benefit rule has no
  // constant-factor guarantee (a cheap low-value item can crowd out one
  // expensive high-value item).
  NodeId best_single = kInvalidNode;
  double best_single_value = -1.0;
  {
    CoverState probe(&scaled, options.variant);
    for (NodeId v = 0; v < scaled.NumNodes(); ++v) {
      if (options.costs[v] > options.capacity) continue;
      double value = probe.GainOf(v);
      if (value > best_single_value) {
        best_single_value = value;
        best_single = v;
      }
    }
  }
  if (best_single != kInvalidNode &&
      best_single_value * scale > result.expected_revenue) {
    result.items = {best_single};
    result.total_cost = options.costs[best_single];
    result.expected_revenue = best_single_value * scale;
    result.greedy_won = false;
  }
  return result;
}

Result<double> EvaluateExpectedRevenue(const PreferenceGraph& graph,
                                       const std::vector<NodeId>& retained,
                                       const std::vector<double>& revenues,
                                       Variant variant) {
  if (revenues.size() != graph.NumNodes()) {
    return Status::InvalidArgument("revenue vector must match graph size");
  }
  Bitset set(graph.NumNodes());
  for (NodeId v : retained) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("retained item out of range");
    }
    if (set.Test(v)) {
      return Status::InvalidArgument("duplicate retained item");
    }
    set.Set(v);
  }
  double revenue = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    revenue += revenues[v] * graph.NodeWeight(v) *
               CoverOfItem(graph, set, v, variant);
  }
  return revenue;
}

}  // namespace prefcover
