#include "core/revenue_cover.h"

#include <cmath>

#include "core/constrained_solver.h"
#include "core/cover_function.h"
#include "graph/graph_builder.h"
#include "util/bitset.h"

namespace prefcover {

namespace {

// Builds the revenue-scaled twin of `graph`: node weights W(v)*r(v)/scale
// so that the plain cover function on it, multiplied by `scale`, is the
// expected revenue. Edge probabilities are untouched.
Result<PreferenceGraph> BuildScaledGraph(const PreferenceGraph& graph,
                                         const std::vector<double>& revenues,
                                         double* scale_out) {
  double scale = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    scale += graph.NodeWeight(v) * revenues[v];
  }
  if (!(scale > 0.0)) {
    return Status::InvalidArgument(
        "total weighted revenue must be positive");
  }
  GraphBuilder builder;
  builder.Reserve(graph.NumNodes(), graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    builder.AddNode(graph.NodeWeight(v) * revenues[v] / scale,
                    graph.HasLabels() ? graph.Label(v) : "");
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    AdjacencyView out = graph.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      PREFCOVER_RETURN_NOT_OK(
          builder.AddEdge(v, out.nodes[i], out.weights[i]));
    }
  }
  *scale_out = scale;
  return builder.Finalize();  // weights sum to 1 by construction
}

Status ValidateOptions(const PreferenceGraph& graph,
                       const RevenueCoverOptions& options) {
  if (options.revenues.size() != graph.NumNodes() ||
      options.costs.size() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "revenue/cost vectors must match the graph size");
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (!std::isfinite(options.revenues[v]) || options.revenues[v] <= 0.0) {
      return Status::InvalidArgument(
          "revenues must be finite and positive");
    }
    if (!std::isfinite(options.costs[v]) || options.costs[v] <= 0.0) {
      return Status::InvalidArgument("costs must be finite and positive");
    }
  }
  if (!std::isfinite(options.capacity) || options.capacity <= 0.0) {
    return Status::InvalidArgument("capacity must be finite and positive");
  }
  return ValidateInstance(graph, 0, options.variant);
}

}  // namespace

Result<RevenueSolution> SolveRevenueCover(const PreferenceGraph& graph,
                                          const RevenueCoverOptions& options) {
  PREFCOVER_RETURN_NOT_OK(ValidateOptions(graph, options));
  double scale = 0.0;
  PREFCOVER_ASSIGN_OR_RETURN(
      PreferenceGraph scaled,
      BuildScaledGraph(graph, options.revenues, &scale));

  // The budgeted solve is the constrained family's knapsack case on the
  // scaled graph: cost-ratio lazy greedy plus the best-affordable-
  // singleton guard (see core/constrained_solver.h for the guarantee).
  ConstraintSpec spec;
  spec.costs = options.costs;
  spec.budget = options.capacity;
  ConstrainedCoverOptions solve_options;
  solve_options.variant = options.variant;
  PREFCOVER_ASSIGN_OR_RETURN(
      ConstrainedSolution solved,
      SolveConstrainedCover(scaled, spec, solve_options));

  RevenueSolution result;
  result.items = std::move(solved.solution.items);
  result.expected_revenue = solved.solution.cover * scale;
  result.total_cost = solved.total_cost;
  result.revenue_upper_bound = scale;
  result.greedy_won = solved.greedy_won;
  return result;
}

Result<double> EvaluateExpectedRevenue(const PreferenceGraph& graph,
                                       const std::vector<NodeId>& retained,
                                       const std::vector<double>& revenues,
                                       Variant variant) {
  if (revenues.size() != graph.NumNodes()) {
    return Status::InvalidArgument("revenue vector must match graph size");
  }
  Bitset set(graph.NumNodes());
  for (NodeId v : retained) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("retained item out of range");
    }
    if (set.Test(v)) {
      return Status::InvalidArgument("duplicate retained item");
    }
    set.Set(v);
  }
  double revenue = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    revenue += revenues[v] * graph.NodeWeight(v) *
               CoverOfItem(graph, set, v, variant);
  }
  return revenue;
}

}  // namespace prefcover
