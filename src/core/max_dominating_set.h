// The Directed Max Dominating Set problem (DS_k, Definition 2.7) and the
// reduction of Theorem 4.1's hardness direction, as executable code.
//
// A vertex is dominated by S if it is in S or has an incoming edge from a
// node of S. DS_k asks for the size-k set dominating the most vertices.
// The paper proves IPC_k's (1 - 1/e) inapproximability by mapping a DS_k
// instance to an IPC_k instance — reverse every edge, give each edge
// probability 1 and each node weight 1/n — so that #dominated(S) = n·C(S)
// for every S. Both sides and the mapping live here, with the equality
// property-tested.

#ifndef PREFCOVER_CORE_MAX_DOMINATING_SET_H_
#define PREFCOVER_CORE_MAX_DOMINATING_SET_H_

#include <cstdint>
#include <vector>

#include "graph/preference_graph.h"  // NodeId
#include "util/status.h"

namespace prefcover {

/// \brief A plain directed graph for DS_k.
class DominatingSetInstance {
 public:
  explicit DominatingSetInstance(size_t num_nodes);

  /// Adds the directed edge (from, to). Duplicates allowed (ignored by
  /// the semantics); self-loops rejected (they add nothing: a node always
  /// dominates itself).
  Status AddEdge(NodeId from, NodeId to);

  size_t NumNodes() const { return out_.size(); }
  size_t NumEdges() const { return num_edges_; }
  const std::vector<NodeId>& OutNeighbors(NodeId v) const {
    return out_[v];
  }

  /// Number of vertices dominated by `set` (members + out-neighbors of
  /// members).
  size_t DominatedCount(const std::vector<NodeId>& set) const;

 private:
  std::vector<std::vector<NodeId>> out_;
  size_t num_edges_ = 0;
};

/// \brief Greedy DS_k: k rounds of max marginal domination (ties to the
/// smaller id). (1 - 1/e) guarantee — optimal unless P = NP (Thm 2.9).
Result<std::vector<NodeId>> SolveDominatingSetGreedy(
    const DominatingSetInstance& instance, size_t k);

/// \brief Exhaustive optimal DS_k for tiny instances.
Result<std::vector<NodeId>> SolveDominatingSetBruteForce(
    const DominatingSetInstance& instance, size_t k,
    uint64_t max_subsets = 50'000'000ULL);

/// \brief The Theorem 4.1 reduction: DS_k instance -> IPC_k instance with
/// reversed edges, all edge probabilities 1 and node weights 1/n, so that
/// DominatedCount(S) == n * C(S) under the Independent variant.
Result<PreferenceGraph> ReduceDsToIpc(const DominatingSetInstance& instance);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_MAX_DOMINATING_SET_H_
