#include "core/inventory_maintainer.h"

#include <algorithm>
#include <unordered_map>

#include "core/cover_state.h"
#include "core/greedy_solver.h"

namespace prefcover {

namespace {

// Snapshot plus the dense <-> stable mappings solver calls need.
struct SnapshotBundle {
  PreferenceGraph graph;
  std::vector<StableId> stable_of_node;
  std::unordered_map<StableId, NodeId> node_of_stable;
};

Result<SnapshotBundle> TakeSnapshot(const DynamicPreferenceGraph& dynamic) {
  SnapshotBundle bundle;
  PREFCOVER_ASSIGN_OR_RETURN(bundle.graph,
                             dynamic.Snapshot(&bundle.stable_of_node));
  bundle.node_of_stable.reserve(bundle.stable_of_node.size());
  for (NodeId v = 0; v < bundle.stable_of_node.size(); ++v) {
    bundle.node_of_stable.emplace(bundle.stable_of_node[v], v);
  }
  return bundle;
}

}  // namespace

std::string_view MaintenanceActionName(MaintenanceAction action) {
  switch (action) {
    case MaintenanceAction::kNone:
      return "none";
    case MaintenanceAction::kEvaluated:
      return "evaluated";
    case MaintenanceAction::kRepaired:
      return "repaired";
    case MaintenanceAction::kResolved:
      return "resolved";
  }
  return "?";
}

InventoryMaintainer::InventoryMaintainer(const DynamicPreferenceGraph* graph,
                                         const MaintainerOptions& options)
    : graph_(graph), options_(options) {
  PREFCOVER_CHECK(graph != nullptr);
}

Status InventoryMaintainer::Resolve() {
  PREFCOVER_ASSIGN_OR_RETURN(SnapshotBundle bundle, TakeSnapshot(*graph_));
  size_t k = std::min(options_.k, bundle.graph.NumNodes());
  GreedyOptions greedy_options;
  greedy_options.variant = options_.variant;
  PREFCOVER_ASSIGN_OR_RETURN(Solution solution,
                             SolveGreedyLazy(bundle.graph, k,
                                             greedy_options));
  retained_.clear();
  retained_.reserve(solution.items.size());
  for (NodeId v : solution.items) {
    retained_.push_back(bundle.stable_of_node[v]);
  }
  current_cover_ = solution.cover;
  last_solved_cover_ = solution.cover;
  last_seen_version_ = graph_->version();
  changes_since_resolve_ = 0;
  solved_once_ = true;
  ++full_resolves_;
  return Status::OK();
}

Result<size_t> InventoryMaintainer::RescoreOnCurrentGraph() {
  PREFCOVER_ASSIGN_OR_RETURN(SnapshotBundle bundle, TakeSnapshot(*graph_));
  CoverState state(&bundle.graph, options_.variant);
  size_t dropped = 0;
  std::vector<StableId> survivors;
  survivors.reserve(retained_.size());
  for (StableId id : retained_) {
    auto it = bundle.node_of_stable.find(id);
    if (it == bundle.node_of_stable.end()) {
      ++dropped;
      continue;
    }
    state.AddNode(it->second);
    survivors.push_back(id);
  }
  retained_ = std::move(survivors);
  current_cover_ = state.cover();
  return dropped;
}

Status InventoryMaintainer::GreedyRefill() {
  PREFCOVER_ASSIGN_OR_RETURN(SnapshotBundle bundle, TakeSnapshot(*graph_));
  CoverState state(&bundle.graph, options_.variant);
  for (StableId id : retained_) {
    auto it = bundle.node_of_stable.find(id);
    if (it == bundle.node_of_stable.end()) {
      return Status::Internal("refill called with dead retained item");
    }
    state.AddNode(it->second);
  }
  size_t target = std::min(options_.k, bundle.graph.NumNodes());
  while (state.NumRetained() < target) {
    double best_gain = -1.0;
    NodeId best = kInvalidNode;
    for (NodeId v = 0; v < bundle.graph.NumNodes(); ++v) {
      if (state.IsRetained(v)) continue;
      double gain = state.GainOf(v);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best == kInvalidNode) break;
    state.AddNode(best);
    retained_.push_back(bundle.stable_of_node[best]);
  }
  current_cover_ = state.cover();
  return Status::OK();
}

Result<MaintenanceAction> InventoryMaintainer::Maintain() {
  ++maintain_calls_;
  if (!solved_once_) {
    PREFCOVER_RETURN_NOT_OK(Resolve());
    return MaintenanceAction::kResolved;
  }
  if (graph_->version() == last_seen_version_) {
    return MaintenanceAction::kNone;
  }
  last_seen_version_ = graph_->version();
  ++changes_since_resolve_;

  if (options_.force_resolve_every != 0 &&
      changes_since_resolve_ >= options_.force_resolve_every) {
    PREFCOVER_RETURN_NOT_OK(Resolve());
    return MaintenanceAction::kResolved;
  }

  PREFCOVER_ASSIGN_OR_RETURN(size_t dropped, RescoreOnCurrentGraph());
  size_t target = std::min(options_.k, graph_->NumItems());
  bool needs_refill = retained_.size() < target;

  if (needs_refill) {
    PREFCOVER_RETURN_NOT_OK(GreedyRefill());
  }
  if (current_cover_ + options_.resolve_drift_tolerance <
      last_solved_cover_) {
    PREFCOVER_RETURN_NOT_OK(Resolve());
    return MaintenanceAction::kResolved;
  }
  if (needs_refill || dropped > 0) {
    ++repairs_;
    return MaintenanceAction::kRepaired;
  }
  return MaintenanceAction::kEvaluated;
}

}  // namespace prefcover
