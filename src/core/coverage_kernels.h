// The solver hot path as data-layout-aware kernels: GainOf, the AddNode
// in-edge update, and batch residual refresh over a structure-of-arrays
// cover state, with runtime SIMD dispatch (util/simd_dispatch.h).
//
// Layout. CoverState keeps, besides the paper's I array (`item`):
//   - `residual[u]` — W(u) - item[u], ALWAYS stored as the result of that
//     exact subtraction performed after the last item[u] write ("fresh
//     subtraction" invariant). This makes the Independent-variant gain
//     term w(u,v) * residual[u] bit-identical to the reference
//     w(u,v) * (W(u) - item[u]), and makes residual[u] exactly +0.0 for
//     retained u — so the Independent kernels need no retained test at
//     all: masked terms contribute a bitwise-neutral +0.0.
//   - `static_gain[e]` — per-in-edge precomputed W(u) * W(u,v) for the
//     Normalized variant (whose gain terms do not depend on the evolving
//     state), indexed by PreferenceGraph::InEdgeOffset. Empty for
//     Independent.
//   - the retained set as a packed 64-bit-word Bitset (gatherable by the
//     AVX2 kernels, word-enumerable by the solvers).
//
// Byte-identity. Every level produces bit-identical doubles to kScalar
// (the pre-overhaul reference loops, kept verbatim as the oracle):
//   - faster levels replace branches with value-masking to +0.0 (for
//     sums) — x + (+0.0) == x bitwise for every x except -0.0, and no
//     partial sum here can be -0.0 (all inputs are non-negative, and
//     a - b rounds to +0.0, never -0.0, under round-to-nearest);
//   - SIMD vectorizes the *term* computation (gathers, multiplies,
//     masking) but accumulates lanes in the reference's sequential
//     order, so no reassociation ever happens;
//   - no FMA: multiplies and adds stay separate operations at every
//     level (the AVX2 translation unit is compiled with -mavx2 only).
// The differential battery in tests/core/coverage_kernels_test.cc
// asserts this end to end; docs/DESIGN.md has the full argument.
//
// Preconditions (established by graph validation): node weights and edge
// weights are non-negative (no -0.0 sources), and adjacency lists carry
// no duplicate endpoints (GraphBuilder rejects duplicate edges) — the
// AddNode kernels read-modify-write scattered item/residual slots and
// rely on each endpoint appearing at most once per list.

#ifndef PREFCOVER_CORE_COVERAGE_KERNELS_H_
#define PREFCOVER_CORE_COVERAGE_KERNELS_H_

#include <span>
#include <vector>

#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/bitset.h"
#include "util/simd_dispatch.h"

namespace prefcover {

/// \brief Read-only structure-of-arrays view of a cover state, as
/// consumed by GainKernel. All spans are indexed by NodeId except
/// `static_gain`, which is indexed by in-edge position (see
/// PreferenceGraph::InEdgeOffset) and empty unless the variant is
/// Normalized.
struct CoverStateView {
  std::span<const double> node_weights;
  std::span<const double> item;
  std::span<const double> residual;
  std::span<const double> static_gain;
  const Bitset* retained = nullptr;
};

/// \brief Mutable counterpart for the AddNode update kernel.
struct MutableCoverStateView {
  std::span<const double> node_weights;
  std::span<double> item;
  std::span<double> residual;
  std::span<const double> static_gain;
  const Bitset* retained = nullptr;
};

/// \brief Marginal gain of adding v (Algorithms 2 / 4), dispatched to
/// `level`. Requires v not retained. Bit-identical across levels.
/// Thread-safe against concurrent GainKernel calls on the same state.
double GainKernel(const PreferenceGraph& graph, const CoverStateView& state,
                  NodeId v, Variant variant, SimdLevel level);

/// \brief Batch gain: writes GainKernel(v) into out[v] for every v in
/// [begin, end), streaming the in-CSR in one pass — each per-node value
/// is bit-identical to the corresponding GainKernel call, at every
/// level. The fast levels amortize the per-call dispatch that dominates
/// GainKernel on low-degree nodes (the greedy heap seed calls this over
/// the whole node range). Values at retained positions are computed and
/// well-defined but carry no meaning; callers mask them out.
/// Thread-safe against concurrent Gain*Kernel calls on the same state;
/// disjoint [begin, end) ranges may run concurrently.
void GainRangeKernel(const PreferenceGraph& graph,
                     const CoverStateView& state, size_t begin, size_t end,
                     Variant variant, SimdLevel level,
                     std::span<double> out);

/// \brief The in-edge half of AddNode (Algorithms 3 / 5): for every
/// non-retained in-neighbor u of v, accumulates the newly covered mass
/// into *cover (in in-edge order, matching the reference association),
/// updates item[u], and re-establishes the fresh-subtraction residual
/// invariant. The caller must already have marked v retained and applied
/// v's self-update (cover += W(v) - item[v]; item[v] = W(v);
/// residual[v] = W(v) - item[v]).
void AddNodeUpdateKernel(const PreferenceGraph& graph,
                         const MutableCoverStateView& state, NodeId v,
                         Variant variant, SimdLevel level, double* cover);

/// \brief Batch residual refresh: residual[i] = node_weights[i] - item[i]
/// for every i, re-establishing the fresh-subtraction invariant from
/// scratch (construction, Reset, checkpoint resume).
void RefreshResidualsKernel(std::span<const double> node_weights,
                            std::span<const double> item,
                            std::span<double> residual, SimdLevel level);

/// \brief Precomputes the Normalized-variant static gain table:
/// entry InEdgeOffset(v) + i is NodeWeight(in.nodes[i]) * in.weights[i]
/// for the i-th in-edge of v — the exact product the reference loop
/// computes on the fly. Size NumEdges().
std::vector<double> BuildStaticGainTable(const PreferenceGraph& graph);

/// \brief Clamps `level` to what this build, the CPU, and the instance
/// can execute: kAvx2 degrades to kWord when the AVX2 kernels are not
/// compiled in, the CPU lacks AVX2, or the graph has >= 2^31 nodes (the
/// AVX2 gathers use signed 32-bit indices).
SimdLevel ClampKernelLevel(SimdLevel level, size_t num_nodes);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_COVERAGE_KERNELS_H_
