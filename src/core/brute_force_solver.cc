#include "core/brute_force_solver.h"

#include <limits>
#include <vector>

#include "core/cover_function.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace prefcover {

uint64_t BinomialCoefficient(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    uint64_t factor = n - k + i;
    // result * factor / i is exact because result already contains C(m, i-1)
    // for m = n-k+i-1; guard the multiplication against overflow.
    if (result > std::numeric_limits<uint64_t>::max() / factor) {
      return std::numeric_limits<uint64_t>::max();
    }
    result = result * factor / i;
  }
  return result;
}

Result<Solution> SolveBruteForce(const PreferenceGraph& graph, size_t k,
                                 const BruteForceOptions& options) {
  const size_t n = graph.NumNodes();
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  uint64_t subsets = BinomialCoefficient(n, k);
  if (options.max_subsets != 0 && subsets > options.max_subsets) {
    return Status::FailedPrecondition(
        "brute force would enumerate " + std::to_string(subsets) +
        " subsets, above the limit of " + std::to_string(options.max_subsets));
  }

  Stopwatch timer;
  std::vector<NodeId> current(k);
  for (size_t i = 0; i < k; ++i) current[i] = static_cast<NodeId>(i);

  Bitset retained(n);
  auto evaluate = [&](const std::vector<NodeId>& subset) {
    retained.Reset();
    for (NodeId v : subset) retained.Set(v);
    return EvaluateCover(graph, retained, options.variant);
  };

  std::vector<NodeId> best_set = current;
  double best_cover = k == 0 ? 0.0 : evaluate(current);

  // Lexicographic enumeration of k-combinations; the first subset achieving
  // the maximum is therefore the lexicographically smallest optimum.
  if (k > 0) {
    for (;;) {
      // Advance to the next combination.
      size_t i = k;
      while (i > 0) {
        --i;
        if (current[i] != static_cast<NodeId>(n - k + i)) break;
        if (i == 0) {
          i = k;  // signal exhaustion
          break;
        }
      }
      if (i == k) break;
      ++current[i];
      for (size_t j = i + 1; j < k; ++j) current[j] = current[j - 1] + 1;

      double cover = evaluate(current);
      if (cover > best_cover + 1e-15) {
        best_cover = cover;
        best_set = current;
      }
    }
  }

  Solution sol;
  sol.items = best_set;
  sol.cover = best_cover;
  sol.variant = options.variant;
  sol.algorithm = "brute-force";
  sol.cover_after_prefix.resize(k);
  retained.Reset();
  for (size_t i = 0; i < k; ++i) {
    retained.Set(best_set[i]);
    sol.cover_after_prefix[i] = EvaluateCover(graph, retained, options.variant);
  }
  sol.item_contributions =
      ComputeItemCoverContributions(graph, retained, options.variant);
  sol.solve_seconds = timer.ElapsedSeconds();
  return sol;
}

}  // namespace prefcover
