#include "core/brute_force_solver.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <string>
#include <vector>

#include "core/cover_function.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace prefcover {

uint64_t BinomialCoefficient(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    uint64_t factor = n - k + i;
    // result * factor / i is exact because result already contains C(m, i-1)
    // for m = n-k+i-1; guard the multiplication against overflow.
    if (result > std::numeric_limits<uint64_t>::max() / factor) {
      return std::numeric_limits<uint64_t>::max();
    }
    result = result * factor / i;
  }
  return result;
}

Result<Solution> SolveBruteForce(const PreferenceGraph& graph, size_t k,
                                 const BruteForceOptions& options) {
  const size_t n = graph.NumNodes();
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  uint64_t subsets = BinomialCoefficient(n, k);
  if (options.max_subsets != 0 && subsets > options.max_subsets) {
    return Status::FailedPrecondition(
        "brute force would enumerate " + std::to_string(subsets) +
        " subsets, above the limit of " + std::to_string(options.max_subsets));
  }

  Stopwatch timer;
  std::vector<NodeId> current(k);
  for (size_t i = 0; i < k; ++i) current[i] = static_cast<NodeId>(i);

  Bitset retained(n);
  auto evaluate = [&](const std::vector<NodeId>& subset) {
    retained.Reset();
    for (NodeId v : subset) retained.Set(v);
    return EvaluateCover(graph, retained, options.variant);
  };

  std::vector<NodeId> best_set = current;
  double best_cover = k == 0 ? 0.0 : evaluate(current);

  // Lexicographic enumeration of k-combinations; the first subset achieving
  // the maximum is therefore the lexicographically smallest optimum.
  if (k > 0) {
    for (;;) {
      // Advance to the next combination.
      size_t i = k;
      while (i > 0) {
        --i;
        if (current[i] != static_cast<NodeId>(n - k + i)) break;
        if (i == 0) {
          i = k;  // signal exhaustion
          break;
        }
      }
      if (i == k) break;
      ++current[i];
      for (size_t j = i + 1; j < k; ++j) current[j] = current[j - 1] + 1;

      double cover = evaluate(current);
      if (cover > best_cover + 1e-15) {
        best_cover = cover;
        best_set = current;
      }
    }
  }

  Solution sol;
  sol.items = best_set;
  sol.cover = best_cover;
  sol.variant = options.variant;
  sol.algorithm = "brute-force";
  sol.cover_after_prefix.resize(k);
  retained.Reset();
  for (size_t i = 0; i < k; ++i) {
    retained.Set(best_set[i]);
    sol.cover_after_prefix[i] = EvaluateCover(graph, retained, options.variant);
  }
  sol.item_contributions =
      ComputeItemCoverContributions(graph, retained, options.variant);
  sol.solve_seconds = timer.ElapsedSeconds();
  return sol;
}

Result<Solution> SolveBruteForceConstrained(const PreferenceGraph& graph,
                                            size_t max_items,
                                            const ConstraintSpec& spec,
                                            const BruteForceOptions& options) {
  const size_t n = graph.NumNodes();
  const size_t k = max_items == 0 ? n : max_items;
  PREFCOVER_RETURN_NOT_OK(ValidateConstraintSpec(graph, spec));
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));
  if (n >= 63) {
    return Status::FailedPrecondition(
        "constrained brute force enumerates all 2^n subsets; n=" +
        std::to_string(n) + " is far past feasible");
  }
  const uint64_t subsets = uint64_t{1} << n;
  if (options.max_subsets != 0 && subsets > options.max_subsets) {
    return Status::FailedPrecondition(
        "brute force would enumerate " + std::to_string(subsets) +
        " subsets, above the limit of " + std::to_string(options.max_subsets));
  }

  Stopwatch timer;
  const bool has_budget = spec.HasBudget();
  const size_t num_categories = spec.quotas.size();
  std::vector<uint32_t> counts(num_categories);
  Bitset retained(n);
  uint64_t best_mask = 0;
  bool found = false;
  double best_cover = 0.0;
  // Ascending masks: the first feasible subset achieving the maximum is
  // the lowest mask, so ties are deterministic.
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    if (static_cast<size_t>(std::popcount(mask)) > k) continue;
    std::fill(counts.begin(), counts.end(), 0u);
    double cost = 0.0;
    retained.Reset();
    bool feasible = true;
    for (uint64_t bits = mask; bits != 0; bits &= bits - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(bits));
      cost += spec.CostOf(v);
      if (has_budget && cost > spec.budget) {
        feasible = false;
        break;
      }
      if (num_categories > 0) {
        const uint32_t c = spec.categories[v];
        if (++counts[c] > spec.quotas[c].max_items) {
          feasible = false;
          break;
        }
      }
      retained.Set(v);
    }
    if (feasible) {
      for (size_t c = 0; c < num_categories; ++c) {
        if (counts[c] < spec.quotas[c].min_items) {
          feasible = false;
          break;
        }
      }
    }
    if (!feasible) continue;
    const double cover = EvaluateCover(graph, retained, options.variant);
    if (!found || cover > best_cover + 1e-15) {
      found = true;
      best_cover = cover;
      best_mask = mask;
    }
  }
  if (!found) {
    return Status::FailedPrecondition(
        "no subset satisfies the constraint spec");
  }

  Solution sol;
  for (uint64_t bits = best_mask; bits != 0; bits &= bits - 1) {
    sol.items.push_back(static_cast<NodeId>(std::countr_zero(bits)));
  }
  sol.cover = best_cover;
  sol.variant = options.variant;
  sol.algorithm = "brute-force-constrained";
  sol.cover_after_prefix.resize(sol.items.size());
  retained.Reset();
  for (size_t i = 0; i < sol.items.size(); ++i) {
    retained.Set(sol.items[i]);
    sol.cover_after_prefix[i] =
        EvaluateCover(graph, retained, options.variant);
  }
  sol.item_contributions =
      ComputeItemCoverContributions(graph, retained, options.variant);
  sol.solve_seconds = timer.ElapsedSeconds();
  return sol;
}

}  // namespace prefcover
