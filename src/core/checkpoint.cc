#include "core/checkpoint.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/bitset.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace prefcover {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'C', 'K', 'P', 'T', '0', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 8 + 4 + 8 + 8 + 1 + 8 + 8;
constexpr size_t kFooterSize = 4;  // CRC-32

class Fnv1a {
 public:
  void Update(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  template <typename T>
  void UpdateScalar(T value) {
    Update(&value, sizeof(T));
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

void AppendScalar(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void Append(std::string* out, T value) {
  AppendScalar(out, &value, sizeof(T));
}

template <typename T>
T ReadScalarAt(const std::string& data, size_t offset) {
  T value;
  std::memcpy(&value, data.data() + offset, sizeof(T));
  return value;
}

}  // namespace

uint64_t GraphDigest(const PreferenceGraph& graph) {
  Fnv1a hash;
  const uint64_t n = graph.NumNodes();
  const uint64_t m = graph.NumEdges();
  hash.UpdateScalar(n);
  hash.UpdateScalar(m);
  for (NodeId v = 0; v < n; ++v) {
    hash.UpdateScalar(graph.NodeWeight(v));
  }
  for (NodeId v = 0; v < n; ++v) {
    AdjacencyView adj = graph.OutNeighbors(v);
    hash.UpdateScalar(static_cast<uint32_t>(adj.size()));
    for (size_t i = 0; i < adj.size(); ++i) {
      hash.UpdateScalar(adj.nodes[i]);
      hash.UpdateScalar(adj.weights[i]);
    }
  }
  return hash.digest();
}

uint64_t GreedyOptionsHash(const GreedyOptions& options, size_t k) {
  Fnv1a hash;
  hash.UpdateScalar(static_cast<uint64_t>(k));
  hash.UpdateScalar(static_cast<uint8_t>(options.variant));
  hash.UpdateScalar(options.stop_at_cover);
  hash.UpdateScalar(static_cast<uint64_t>(options.force_include.size()));
  for (NodeId v : options.force_include) hash.UpdateScalar(v);
  hash.UpdateScalar(static_cast<uint64_t>(options.force_exclude.size()));
  for (NodeId v : options.force_exclude) hash.UpdateScalar(v);
  return hash.digest();
}

Status WriteCheckpoint(const std::string& path,
                       const Checkpoint& checkpoint) {
  PREFCOVER_FAILPOINT_STATUS("checkpoint.write");
  std::string payload;
  payload.reserve(kHeaderSize + 4 * checkpoint.prefix.size() + kFooterSize);
  payload.append(kMagic, sizeof(kMagic));
  Append<uint32_t>(&payload, kVersion);
  Append<uint64_t>(&payload, checkpoint.graph_digest);
  Append<uint64_t>(&payload, checkpoint.options_hash);
  Append<uint8_t>(&payload,
                  checkpoint.variant == Variant::kNormalized ? 1 : 0);
  Append<uint64_t>(&payload, checkpoint.k);
  Append<uint64_t>(&payload,
                   static_cast<uint64_t>(checkpoint.prefix.size()));
  for (NodeId v : checkpoint.prefix) Append<NodeId>(&payload, v);
  Append<uint32_t>(&payload, Crc32(payload.data(), payload.size()));
  PREFCOVER_RETURN_NOT_OK(WriteFileAtomic(path, payload));
  // Planted *after* the durable rename: a crash here proves the file on
  // disk is complete and resumable (the kill-resume integration test).
  PREFCOVER_FAILPOINT("checkpoint.after_write");
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(checkpoint_metric::kWrites)->Increment();
  registry.GetCounter(checkpoint_metric::kBytes)
      ->Increment(payload.size());
  return Status::OK();
}

Result<Checkpoint> ReadCheckpoint(const std::string& path) {
  PREFCOVER_FAILPOINT_STATUS("checkpoint.read");
  PREFCOVER_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < kHeaderSize + kFooterSize) {
    return Status::Corruption("checkpoint file truncated: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a prefcover checkpoint (bad magic): " +
                              path);
  }
  const size_t body_size = data.size() - kFooterSize;
  const uint32_t stored_crc = ReadScalarAt<uint32_t>(data, body_size);
  const uint32_t actual_crc = Crc32(data.data(), body_size);
  if (stored_crc != actual_crc) {
    return Status::Corruption("checkpoint CRC mismatch: " + path);
  }
  const uint32_t version = ReadScalarAt<uint32_t>(data, 8);
  if (version != kVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version));
  }
  Checkpoint checkpoint;
  checkpoint.graph_digest = ReadScalarAt<uint64_t>(data, 12);
  checkpoint.options_hash = ReadScalarAt<uint64_t>(data, 20);
  const uint8_t variant = ReadScalarAt<uint8_t>(data, 28);
  if (variant > 1) {
    return Status::Corruption("checkpoint variant byte invalid: " +
                              std::to_string(variant));
  }
  checkpoint.variant =
      variant == 1 ? Variant::kNormalized : Variant::kIndependent;
  checkpoint.k = ReadScalarAt<uint64_t>(data, 29);
  const uint64_t prefix_len = ReadScalarAt<uint64_t>(data, 37);
  if (prefix_len > checkpoint.k ||
      body_size != kHeaderSize + 4 * prefix_len) {
    return Status::Corruption(
        "checkpoint prefix length inconsistent with file size");
  }
  checkpoint.prefix.reserve(static_cast<size_t>(prefix_len));
  for (uint64_t i = 0; i < prefix_len; ++i) {
    checkpoint.prefix.push_back(
        ReadScalarAt<NodeId>(data, kHeaderSize + 4 * i));
  }
  return checkpoint;
}

Result<std::vector<NodeId>> ValidateCheckpointForResume(
    const Checkpoint& checkpoint, const PreferenceGraph& graph, size_t k,
    const GreedyOptions& options) {
  if (checkpoint.graph_digest != GraphDigest(graph)) {
    return Status::FailedPrecondition(
        "checkpoint was taken against a different graph (digest "
        "mismatch); refusing to resume");
  }
  if (checkpoint.options_hash != GreedyOptionsHash(options, k)) {
    return Status::FailedPrecondition(
        "checkpoint was taken with different solve options (k, variant, "
        "stop_at_cover or force lists); refusing to resume");
  }
  if (checkpoint.variant != options.variant ||
      checkpoint.k != static_cast<uint64_t>(k)) {
    // The hash already covers these; a mismatch here means a colliding
    // or hand-edited file.
    return Status::Corruption("checkpoint variant/k contradict its hash");
  }
  if (checkpoint.prefix.size() > k) {
    // ReadCheckpoint bounds the prefix by the file's own k; this guards
    // hand-built Checkpoint values.
    return Status::FailedPrecondition(
        "checkpoint prefix longer than the budget k");
  }
  const size_t n = graph.NumNodes();
  Bitset seen(n);
  Bitset excluded(n);
  for (NodeId v : options.force_exclude) {
    if (v < n) excluded.Set(v);
  }
  for (NodeId v : checkpoint.prefix) {
    if (v >= n) {
      return Status::FailedPrecondition(
          "checkpoint prefix item out of range: " + std::to_string(v));
    }
    if (seen.Test(v)) {
      return Status::FailedPrecondition(
          "checkpoint prefix item duplicated: " + std::to_string(v));
    }
    if (excluded.Test(v)) {
      return Status::FailedPrecondition(
          "checkpoint prefix contains force-excluded item " +
          std::to_string(v));
    }
    seen.Set(v);
  }
  obs::MetricsRegistry::Global()
      .GetCounter(checkpoint_metric::kResumes)
      ->Increment();
  return checkpoint.prefix;
}

}  // namespace prefcover
