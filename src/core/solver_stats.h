// Lightweight solver telemetry: counters every greedy execution fills in
// while it runs, so speedups and pruning effectiveness are measurable
// rather than asserted.
//
// The counters are deliberately cheap (plain integers bumped on paths that
// already do O(degree) work); the only per-iteration overhead is two
// steady_clock reads for the iteration timer.

#ifndef PREFCOVER_CORE_SOLVER_STATS_H_
#define PREFCOVER_CORE_SOLVER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace prefcover {

/// \brief Execution counters for one solver run, surfaced in `Solution`.
///
/// Which fields are populated depends on the execution:
///   - every greedy execution fills `iterations`, `gain_evaluations` and
///     the iteration timings;
///   - the lazy executions additionally fill `heap_pops` /
///     `stale_refreshes`;
///   - the parallel executions additionally fill `threads`,
///     `parallel_batches` and `parallel_items` (and, for lazy-parallel,
///     `batch_size`).
struct SolverStats {
  /// Greedy selection rounds performed by the search loop (force_include
  /// seeding is not counted — it performs no candidate search).
  uint64_t iterations = 0;

  /// Calls to `CoverState::GainOf`. The headline pruning metric: lazy
  /// executions should report far fewer than `iterations * n`.
  uint64_t gain_evaluations = 0;

  /// Heap pops in the lazy executions (including pops of retained or
  /// stale entries).
  uint64_t heap_pops = 0;

  /// Popped entries whose gain was stale and had to be re-evaluated.
  uint64_t stale_refreshes = 0;

  /// Parallel dispatches (one per `ParallelArgMax` / batched call) and the
  /// total work items they carried.
  uint64_t parallel_batches = 0;
  uint64_t parallel_items = 0;

  /// Worker count of the pool the run used (1 for serial executions or a
  /// null pool).
  size_t threads = 1;

  /// Effective CELF batch size B (lazy-parallel only; 1 otherwise).
  size_t batch_size = 1;

  /// Wall time spent inside search iterations, in total and for the single
  /// slowest iteration.
  double total_iteration_seconds = 0.0;
  double max_iteration_seconds = 0.0;

  /// stale_refreshes / heap_pops — the fraction of pops that needed a
  /// re-evaluation; 0 when nothing was popped.
  double StaleRatio() const;

  /// total_iteration_seconds / iterations; 0 when nothing ran.
  double AvgIterationSeconds() const;

  /// How full the average parallel dispatch kept the pool:
  /// min(1, parallel_items / (parallel_batches * threads)).
  /// 0 when no parallel dispatch happened.
  double PoolUtilization() const;

  /// One-line human-readable rendering, e.g. for CLI and bench output.
  std::string ToString() const;
};

}  // namespace prefcover

#endif  // PREFCOVER_CORE_SOLVER_STATS_H_
