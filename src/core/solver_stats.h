// Solver telemetry: every greedy execution drives a run-scoped
// obs::MetricsRegistry while it runs, and SolverStats is the end-of-run
// *view* over that registry (plus the timing fields, which are plain
// doubles measured by the run's stopwatch).
//
// The registry counters are sharded per thread, so the parallel
// executions' workers bump them without a shared atomic; the serial hot
// loops batch their tallies and flush once per selection round. At the
// end of a run the totals are also merged into
// obs::MetricsRegistry::Global() under the same names, so a process-wide
// metrics snapshot (CLI --metrics_out, bench harness) accumulates
// solver work across runs.

#ifndef PREFCOVER_CORE_SOLVER_STATS_H_
#define PREFCOVER_CORE_SOLVER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace prefcover {

/// \brief Names of the counters every greedy execution publishes, both in
/// its run-scoped registry and (merged, cumulative) in the global one.
namespace solver_metric {
inline constexpr char kIterations[] = "solver.iterations";
inline constexpr char kGainEvaluations[] = "solver.gain_evaluations";
inline constexpr char kHeapPops[] = "solver.heap_pops";
inline constexpr char kStaleRefreshes[] = "solver.stale_refreshes";
inline constexpr char kSeedRefills[] = "solver.seed_refills";
inline constexpr char kParallelBatches[] = "solver.parallel_batches";
inline constexpr char kParallelItems[] = "solver.parallel_items";
/// Bumped once per solve that was truncated by cancellation or deadline
/// expiry (global registry only — a run registry would always read 0/1).
inline constexpr char kCancelled[] = "solver.cancelled";
}  // namespace solver_metric

/// \brief Execution counters for one solver run, surfaced in `Solution`.
///
/// Which fields are populated depends on the execution:
///   - every greedy execution fills `iterations`, `gain_evaluations` and
///     the iteration timings;
///   - the lazy executions additionally fill `heap_pops` /
///     `stale_refreshes`;
///   - the parallel executions additionally fill `threads`,
///     `parallel_batches` and `parallel_items` (and, for lazy-parallel,
///     `batch_size`).
struct SolverStats {
  /// Greedy selection rounds performed by the search loop (force_include
  /// seeding is not counted — it performs no candidate search).
  uint64_t iterations = 0;

  /// Calls to `CoverState::GainOf`. The headline pruning metric: lazy
  /// executions should report far fewer than `iterations * n`.
  uint64_t gain_evaluations = 0;

  /// Heap pops in the lazy executions (including pops of retained or
  /// stale entries).
  uint64_t heap_pops = 0;

  /// Popped entries whose gain was stale and had to be re-evaluated.
  uint64_t stale_refreshes = 0;

  /// Full re-sweeps of the candidate gains triggered when the lazy heap's
  /// threshold seed could no longer certify the argmax (see
  /// GreedyOptions::seed_heap_capacity). 0 when every candidate fit in
  /// the seed.
  uint64_t seed_refills = 0;

  /// Parallel dispatches (one per `ParallelArgMax` / batched call) and the
  /// total work items they carried.
  uint64_t parallel_batches = 0;
  uint64_t parallel_items = 0;

  /// Worker count of the pool the run used (1 for serial executions or a
  /// null pool).
  size_t threads = 1;

  /// Effective CELF batch size B (lazy-parallel only; 1 otherwise).
  size_t batch_size = 1;

  /// Wall time spent inside search iterations, in total and for the single
  /// slowest iteration.
  double total_iteration_seconds = 0.0;
  double max_iteration_seconds = 0.0;

  /// True when the search stopped early because `GreedyOptions::cancel`
  /// tripped (explicit Cancel() or deadline expiry). The solution is the
  /// valid greedy prefix selected up to that point — shorter than k, but
  /// every guarantee about its own length still holds.
  bool truncated = false;

  /// \brief Fills the counter fields from a run-scoped registry snapshot
  /// (the `solver_metric` names); timing/threads/batch fields are left
  /// untouched. This is how the greedy executions build their stats.
  void LoadCounters(const obs::MetricsSnapshot& snapshot);

  /// stale_refreshes / heap_pops — the fraction of pops that needed a
  /// re-evaluation; 0 when nothing was popped.
  double StaleRatio() const;

  /// total_iteration_seconds / iterations; 0 when nothing ran.
  double AvgIterationSeconds() const;

  /// How full the average parallel dispatch kept the pool:
  /// min(1, parallel_items / (parallel_batches * threads)).
  /// 0 when no parallel dispatch happened (or the divisor would be 0).
  double PoolUtilization() const;

  /// One-line human-readable rendering, e.g. for CLI and bench output.
  std::string ToString() const;
};

}  // namespace prefcover

#endif  // PREFCOVER_CORE_SOLVER_STATS_H_
