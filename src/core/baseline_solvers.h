// The paper's non-greedy baselines (Section 5.3):
//   TopK-W  — the k best-selling items (highest node weight), the naive
//             industry practice the paper argues against;
//   TopK-C  — the k items with the highest *standalone* coverage
//             C({v}), i.e. alternatives are considered but overlaps
//             between chosen items are not;
//   Random  — k uniformly random items.

#ifndef PREFCOVER_CORE_BASELINE_SOLVERS_H_
#define PREFCOVER_CORE_BASELINE_SOLVERS_H_

#include <cstddef>
#include <cstdint>

#include "core/solution.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace prefcover {

/// \brief Top-k items by node weight (ties to the smaller id). The variant
/// only affects the reported cover values, not the selection.
Result<Solution> SolveTopKWeight(const PreferenceGraph& graph, size_t k,
                                 Variant variant);

/// \brief Standalone coverage of a single item: C({v}) = W(v) +
/// sum over in-edges (u, v) of W(u) * W(u, v) — identical for both
/// variants on a single-element set.
double StandaloneCoverage(const PreferenceGraph& graph, NodeId v);

/// \brief Top-k items by standalone coverage (ties to the smaller id).
Result<Solution> SolveTopKCoverage(const PreferenceGraph& graph, size_t k,
                                   Variant variant);

/// \brief k uniformly random distinct items.
Result<Solution> SolveRandom(const PreferenceGraph& graph, size_t k,
                             Variant variant, Rng* rng);

/// \brief Best of `trials` independent random draws (the paper reports
/// Random as "the best across 10 executions").
Result<Solution> SolveRandomBestOf(const PreferenceGraph& graph, size_t k,
                                   Variant variant, Rng* rng, size_t trials);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_BASELINE_SOLVERS_H_
