#include "core/constrained_solver.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <span>
#include <string>
#include <tuple>
#include <utility>

#include "core/cover_function.h"
#include "core/cover_state.h"
#include "core/solver_stats.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace prefcover {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// The CELF heap over gain/cost ratios. Submodularity makes gains
// non-increasing as S grows and costs are fixed positives, so ratios are
// non-increasing too — the standard lazy argument carries over verbatim.
// Ties break to the smaller id, matching the unconstrained executions
// (with unit costs the ratio IS the gain, bit for bit).
struct RatioEntry {
  double ratio;
  NodeId node;
  uint32_t round;  // selection round the ratio was computed in
};
struct WorseRatio {
  bool operator()(const RatioEntry& a, const RatioEntry& b) const {
    if (a.ratio != b.ratio) return a.ratio < b.ratio;
    return a.node > b.node;  // smaller id wins ties
  }
};
using RatioHeap =
    std::priority_queue<RatioEntry, std::vector<RatioEntry>, WorseRatio>;

constexpr size_t kSeedHeapCapacity = 1024;

// Everything one constrained solve tracks besides the CoverState:
// selection order, budget/quota accounting and the telemetry tallies.
struct ConstrainedRun {
  ConstrainedRun(const PreferenceGraph* graph,
                 const ConstraintSpec* run_spec, Variant variant)
      : state(graph, variant), spec(run_spec) {
    if (spec->HasBudget()) remaining = spec->budget;
    if (spec->HasQuotas()) {
      count.assign(spec->quotas.size(), 0);
      deficit.resize(spec->quotas.size());
      for (size_t c = 0; c < spec->quotas.size(); ++c) {
        deficit[c] = spec->quotas[c].min_items;
        total_deficit += deficit[c];
      }
    }
  }

  CoverState state;
  const ConstraintSpec* spec;
  std::vector<NodeId> items;
  std::vector<double> prefix_covers;
  double total_cost = 0.0;
  double remaining = std::numeric_limits<double>::infinity();

  // Quota accounting, indexed by category (empty without quotas).
  std::vector<uint32_t> count;
  std::vector<uint32_t> deficit;
  uint64_t total_deficit = 0;

  // Telemetry, folded into SolverStats (and the global registry) at the
  // end — the hot loop stays plain integer increments.
  uint64_t iterations = 0;
  uint64_t gain_evaluations = 0;
  uint64_t heap_pops = 0;
  uint64_t stale_refreshes = 0;
  uint64_t seed_refills = 0;

  // A candidate is admissible when it is unretained, affordable, and its
  // category is below its maximum. All three only tighten as S grows, so
  // an inadmissible candidate is dead for the rest of the solve — popped
  // heap entries for it are simply dropped.
  bool Admissible(NodeId v) const {
    if (state.IsRetained(v)) return false;
    if (spec->CostOf(v) > remaining) return false;
    if (!count.empty()) {
      const uint32_t c = spec->categories[v];
      if (count[c] >= spec->quotas[c].max_items) return false;
    }
    return true;
  }

  void Select(NodeId v) {
    state.AddNode(v);
    items.push_back(v);
    prefix_covers.push_back(state.cover());
    const double cost = spec->CostOf(v);
    total_cost += cost;
    if (spec->HasBudget()) remaining -= cost;
    if (!count.empty()) {
      const uint32_t c = spec->categories[v];
      ++count[c];
      if (deficit[c] > 0) {
        --deficit[c];
        --total_deficit;
      }
    }
    ++iterations;
  }
};

// Sum of the `take` cheapest unretained members of `members` (ascending
// (cost, id) order), skipping `skip` — the budget a category still needs
// reserved to finish its minimum quota.
double ReserveCost(const ConstrainedRun& run,
                   const std::vector<NodeId>& members, NodeId skip,
                   uint32_t take) {
  double sum = 0.0;
  uint32_t taken = 0;
  for (NodeId v : members) {
    if (taken == take) break;
    if (v == skip || run.state.IsRetained(v)) continue;
    sum += run.spec->CostOf(v);
    ++taken;
  }
  return sum;
}

// Phase 1: satisfy every minimum quota. Each round picks the best
// gain/cost ratio among members of still-deficient categories that are
// admissible AND leave enough of the remaining budget to finish every
// other deficit with its cheapest members. The cheapest member of every
// deficient category always passes that test (picking it converts its
// own reservation into spend one-for-one), so the phase never strands a
// minimum that the static feasibility check admitted.
void FillMinimumQuotas(ConstrainedRun* run,
                       const std::vector<std::vector<NodeId>>& members) {
  const ConstraintSpec& spec = *run->spec;
  const bool has_budget = spec.HasBudget();
  // Per-category reservation under the current retained set.
  std::vector<double> reserve(run->deficit.size(), 0.0);
  double reserve_total = 0.0;
  const auto refresh_reserves = [&] {
    if (!has_budget) return;
    reserve_total = 0.0;
    for (size_t c = 0; c < run->deficit.size(); ++c) {
      reserve[c] = run->deficit[c] == 0
                       ? 0.0
                       : ReserveCost(*run, members[c], kInvalidNode,
                                     run->deficit[c]);
      reserve_total += reserve[c];
    }
  };
  refresh_reserves();
  while (run->total_deficit > 0) {
    NodeId best = kInvalidNode;
    double best_ratio = kNegInf;
    for (size_t c = 0; c < run->deficit.size(); ++c) {
      if (run->deficit[c] == 0) continue;
      for (NodeId v : members[c]) {
        if (run->state.IsRetained(v)) continue;
        const double cost = spec.CostOf(v);
        if (has_budget) {
          if (cost > run->remaining) continue;
          const double reserve_after =
              reserve_total - reserve[c] +
              ReserveCost(*run, members[c], v, run->deficit[c] - 1);
          if (run->remaining - cost < reserve_after) continue;
        }
        const double gain = run->state.GainOf(v);
        ++run->gain_evaluations;
        const double ratio = gain / cost;
        if (ratio > best_ratio || (ratio == best_ratio && v < best)) {
          best_ratio = ratio;
          best = v;
        }
      }
    }
    if (best == kInvalidNode) break;  // unreachable after feasibility checks
    run->Select(best);
    refresh_reserves();
  }
}

// Threshold-seeded ratio heap, the constrained twin of the unconstrained
// bounded seed (greedy_solver.cc): walk `order` — descending
// bound(v)/cost(v) — evaluating exact ratios for admissible candidates,
// keep the top `cap` by (ratio, id), and STOP once every remaining
// bound-ratio falls below the cut: Gain(v) <= bound(v) against any
// retained set and cost(v) > 0, so bound(v)/cost(v) caps the true ratio.
// Unlike the unconstrained solver this single walk is the seed at every
// SIMD level — GainOf is bit-identical across levels, so so is the seed.
struct SeededRatioHeap {
  RatioHeap heap;
  RatioEntry theta{0.0, 0, 0};  // worst kept entry; valid iff truncated
  bool truncated = false;
};

SeededRatioHeap BuildRatioSeed(ConstrainedRun* run,
                               std::span<const NodeId> order,
                               std::span<const double> bounds, size_t cap,
                               uint32_t round) {
  const ConstraintSpec& spec = *run->spec;
  const auto best_first = [](const RatioEntry& a, const RatioEntry& b) {
    return WorseRatio()(b, a);
  };
  std::vector<RatioEntry> keep;
  keep.reserve(2 * cap);
  double theta_ratio = kNegInf;  // nothing is cut until the first compact
  NodeId theta_node = 0;
  const auto compact = [&] {
    std::nth_element(keep.begin(),
                     keep.begin() + static_cast<ptrdiff_t>(cap - 1),
                     keep.end(), best_first);
    keep.resize(cap);
    theta_ratio = keep[cap - 1].ratio;
    theta_node = keep[cap - 1].node;
  };
  bool early_exit = false;
  size_t admissible_seen = 0;
  for (const NodeId v : order) {
    // Strict: a bound-ratio tying theta can still hide a ratio that ties
    // theta with a smaller id, which outranks it in pair order.
    if (bounds[v] / spec.CostOf(v) < theta_ratio) {
      early_exit = true;
      break;
    }
    if (!run->Admissible(v)) continue;
    ++admissible_seen;
    const double gain = run->state.GainOf(v);
    ++run->gain_evaluations;
    const double ratio = gain / spec.CostOf(v);
    if (ratio < theta_ratio || (ratio == theta_ratio && v > theta_node)) {
      continue;
    }
    keep.push_back({ratio, v, round});
    if (keep.size() == 2 * cap) compact();
  }
  if (keep.size() > cap) compact();
  SeededRatioHeap out;
  // Cut candidates — filtered, compacted away, or never visited — exist
  // exactly when the walk early-exited or kept fewer than it admitted.
  out.truncated = early_exit || admissible_seen > keep.size();
  if (out.truncated) out.theta = {theta_ratio, theta_node, round};
  out.heap = RatioHeap(WorseRatio(), std::move(keep));
  return out;
}

// Phase 2: cost-ratio CELF until the item budget k, the knapsack budget,
// or the admissible pool runs out. Zero-gain candidates are still
// selected (matching plain greedy, which fills k regardless) — only
// admissibility ends the phase early.
void RatioGreedy(ConstrainedRun* run, std::span<const NodeId> order,
                 std::span<const double> bounds, size_t k) {
  const ConstraintSpec& spec = *run->spec;
  const size_t cap = std::min(kSeedHeapCapacity, order.size());
  uint32_t round = static_cast<uint32_t>(run->items.size());
  SeededRatioHeap seeded = BuildRatioSeed(run, order, bounds, cap, round);
  while (run->items.size() < k) {
    if (seeded.heap.empty()) {
      if (!seeded.truncated) break;  // pool exhausted, not cut
      ++run->seed_refills;
      seeded = BuildRatioSeed(run, order, bounds, cap, round);
      continue;
    }
    RatioEntry top = seeded.heap.top();
    seeded.heap.pop();
    ++run->heap_pops;
    // Inadmissibility is permanent (budget and quota room only shrink),
    // so dead entries are dropped, never reinserted.
    if (!run->Admissible(top.node)) continue;
    if (top.round != round) {
      top.ratio = run->state.GainOf(top.node) / spec.CostOf(top.node);
      top.round = round;
      ++run->gain_evaluations;
      ++run->stale_refreshes;
      seeded.heap.push(top);
      continue;
    }
    if (seeded.truncated && WorseRatio()(top, seeded.theta)) {
      // The fresh front fell below the seed cut: a cut candidate may now
      // be the true argmax. Rebuild (top's node is re-covered).
      ++run->seed_refills;
      seeded = BuildRatioSeed(run, order, bounds, cap, round);
      continue;
    }
    run->Select(top.node);
    ++round;
  }
}

// Best affordable singleton at the empty state (quota maxima respected),
// via the static-bound order with exact early exit. kInvalidNode when
// nothing is affordable.
std::pair<NodeId, double> BestAffordableSingleton(ConstrainedRun* run) {
  const ConstraintSpec& spec = *run->spec;
  const PreferenceGraph& graph = run->state.graph();
  const std::span<const double> bounds = graph.StaticGainBounds();
  NodeId best = kInvalidNode;
  double best_gain = kNegInf;
  for (const NodeId v : graph.NodesByStaticGainBound()) {
    if (bounds[v] < best_gain) break;  // strict, for equal-gain ties
    if (spec.CostOf(v) > spec.budget) continue;
    if (spec.HasQuotas() &&
        spec.quotas[spec.categories[v]].max_items < 1) {
      continue;
    }
    const double gain = run->state.GainOf(v);
    ++run->gain_evaluations;
    if (gain > best_gain || (gain == best_gain && v < best)) {
      best_gain = gain;
      best = v;
    }
  }
  return {best, best_gain};
}

// Feasibility of the minima against the instance: enough members per
// category, enough item budget k in total, and (under a budget) an
// affordable cheapest completion. These depend on k, so they live here
// rather than in ValidateConstraintSpec.
Status CheckQuotaFeasibility(const PreferenceGraph& graph,
                             const ConstraintSpec& spec, size_t k,
                             const std::vector<std::vector<NodeId>>& members) {
  uint64_t sum_min = 0;
  double reservation = 0.0;
  for (size_t c = 0; c < spec.quotas.size(); ++c) {
    const uint32_t min_items = spec.quotas[c].min_items;
    if (min_items == 0) continue;
    if (min_items > members[c].size()) {
      return Status::FailedPrecondition(
          "quota minimum of category " + std::to_string(c) + " is " +
          std::to_string(min_items) + " but it has only " +
          std::to_string(members[c].size()) + " members");
    }
    sum_min += min_items;
    if (spec.HasBudget()) {
      for (uint32_t i = 0; i < min_items; ++i) {
        reservation += spec.CostOf(members[c][i]);
      }
    }
  }
  if (sum_min > k) {
    return Status::FailedPrecondition(
        "quota minimums require " + std::to_string(sum_min) +
        " items but the item budget is " + std::to_string(k));
  }
  if (spec.HasBudget() && reservation > spec.budget) {
    return Status::FailedPrecondition(
        "cheapest completion of the quota minimums costs " +
        std::to_string(reservation) + ", above the budget " +
        std::to_string(spec.budget));
  }
  (void)graph;
  return Status::OK();
}

}  // namespace

Status ValidateConstraintSpec(const PreferenceGraph& graph,
                              const ConstraintSpec& spec) {
  const size_t n = graph.NumNodes();
  if (!spec.costs.empty() && spec.costs.size() != n) {
    return Status::InvalidArgument(
        "cost vector size " + std::to_string(spec.costs.size()) +
        " does not match the graph's " + std::to_string(n) + " nodes");
  }
  for (size_t v = 0; v < spec.costs.size(); ++v) {
    if (!std::isfinite(spec.costs[v]) || spec.costs[v] <= 0.0) {
      return Status::InvalidArgument(
          "cost of item " + std::to_string(v) +
          " must be a finite positive number");
    }
  }
  if (std::isnan(spec.budget)) {
    return Status::InvalidArgument("budget must not be NaN");
  }
  if (spec.budget < 0.0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  if (spec.categories.empty() != spec.quotas.empty()) {
    return Status::InvalidArgument(
        "categories and quotas must be given together");
  }
  if (!spec.categories.empty() && spec.categories.size() != n) {
    return Status::InvalidArgument(
        "category vector size " + std::to_string(spec.categories.size()) +
        " does not match the graph's " + std::to_string(n) + " nodes");
  }
  for (size_t v = 0; v < spec.categories.size(); ++v) {
    if (spec.categories[v] >= spec.quotas.size()) {
      return Status::InvalidArgument(
          "item " + std::to_string(v) + " has category " +
          std::to_string(spec.categories[v]) + " but only " +
          std::to_string(spec.quotas.size()) + " quotas were given");
    }
  }
  for (size_t c = 0; c < spec.quotas.size(); ++c) {
    if (spec.quotas[c].min_items > spec.quotas[c].max_items) {
      return Status::InvalidArgument(
          "quota of category " + std::to_string(c) +
          " has min_items above max_items");
    }
  }
  return Status::OK();
}

Result<ConstrainedSolution> SolveConstrainedCover(
    const PreferenceGraph& graph, const ConstraintSpec& spec,
    const ConstrainedCoverOptions& options) {
  Stopwatch timer;
  PREFCOVER_RETURN_NOT_OK(ValidateConstraintSpec(graph, spec));
  const size_t n = graph.NumNodes();
  const size_t k = options.max_items == 0 ? n : options.max_items;
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, options.variant));

  // Category member lists, ascending (cost, id) — the order both the
  // reservation accounting and the feasibility check rely on.
  std::vector<std::vector<NodeId>> members;
  if (spec.HasQuotas()) {
    members.resize(spec.quotas.size());
    for (NodeId v = 0; v < n; ++v) {
      members[spec.categories[v]].push_back(v);
    }
    for (std::vector<NodeId>& list : members) {
      std::sort(list.begin(), list.end(), [&](NodeId a, NodeId b) {
        const double ca = spec.CostOf(a);
        const double cb = spec.CostOf(b);
        if (ca != cb) return ca < cb;
        return a < b;
      });
    }
    PREFCOVER_RETURN_NOT_OK(CheckQuotaFeasibility(graph, spec, k, members));
  }

  ConstrainedRun run(&graph, &spec, options.variant);

  // The (1 - 1/e)/2 guard: under a budget the ratio rule alone has no
  // constant factor (a cheap low-gain item can crowd out one expensive
  // high-gain item), so the best affordable singleton is computed up
  // front — the state is still empty here — and compared at the end.
  // Minimum quotas disable it: one item cannot satisfy several minima.
  NodeId best_single = kInvalidNode;
  double best_single_gain = kNegInf;
  if (spec.HasBudget() && !spec.HasMinQuotas() && k >= 1) {
    std::tie(best_single, best_single_gain) = BestAffordableSingleton(&run);
  }

  if (run.total_deficit > 0) FillMinimumQuotas(&run, members);

  // Candidate order for the seeded heap: descending bound(v)/cost(v).
  // With unit costs this is exactly the graph's precomputed static-bound
  // order, so the hot unconstrained path pays no per-solve sort.
  const std::span<const double> bounds = graph.StaticGainBounds();
  std::vector<NodeId> ratio_order;
  std::span<const NodeId> order = graph.NodesByStaticGainBound();
  if (!spec.UnitCosts()) {
    ratio_order.assign(order.begin(), order.end());
    std::sort(ratio_order.begin(), ratio_order.end(),
              [&](NodeId a, NodeId b) {
                const double ra = bounds[a] / spec.costs[a];
                const double rb = bounds[b] / spec.costs[b];
                if (ra != rb) return ra > rb;
                return a < b;
              });
    order = ratio_order;
  }
  RatioGreedy(&run, order, bounds, k);

  ConstrainedSolution out;
  out.solution.variant = options.variant;
  out.solution.algorithm = "constrained-greedy";
  if (best_single != kInvalidNode && best_single_gain > run.state.cover()) {
    CoverState single(&graph, options.variant);
    single.AddNode(best_single);
    out.solution.items = {best_single};
    out.solution.cover_after_prefix = {single.cover()};
    out.solution.cover = single.cover();
    out.solution.item_contributions = single.TakeItemContributions();
    out.total_cost = spec.CostOf(best_single);
    out.greedy_won = false;
    if (spec.HasQuotas()) {
      out.category_counts.assign(spec.quotas.size(), 0);
      ++out.category_counts[spec.categories[best_single]];
    }
  } else {
    out.solution.items = std::move(run.items);
    out.solution.cover_after_prefix = std::move(run.prefix_covers);
    out.solution.cover = run.state.cover();
    out.solution.item_contributions = run.state.TakeItemContributions();
    out.total_cost = run.total_cost;
    out.category_counts = std::move(run.count);
  }
  out.solution.stats.iterations = run.iterations;
  out.solution.stats.gain_evaluations = run.gain_evaluations;
  out.solution.stats.heap_pops = run.heap_pops;
  out.solution.stats.stale_refreshes = run.stale_refreshes;
  out.solution.stats.seed_refills = run.seed_refills;
  out.solution.solve_seconds = timer.ElapsedSeconds();

  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  global.GetCounter(solver_metric::kIterations)->Increment(run.iterations);
  global.GetCounter(solver_metric::kGainEvaluations)
      ->Increment(run.gain_evaluations);
  global.GetCounter(solver_metric::kHeapPops)->Increment(run.heap_pops);
  global.GetCounter(solver_metric::kStaleRefreshes)
      ->Increment(run.stale_refreshes);
  global.GetCounter(solver_metric::kSeedRefills)
      ->Increment(run.seed_refills);
  return out;
}

Result<std::vector<ParetoPoint>> SolveParetoFrontier(
    const PreferenceGraph& graph, const ParetoSweepOptions& options) {
  ConstraintSpec base;
  base.costs = options.costs;
  PREFCOVER_RETURN_NOT_OK(ValidateConstraintSpec(graph, base));
  std::vector<double> budgets = options.budgets;
  for (double b : budgets) {
    if (!std::isfinite(b) || b < 0.0) {
      return Status::InvalidArgument(
          "pareto budgets must be finite and non-negative");
    }
  }
  const size_t n = graph.NumNodes();
  if (budgets.empty()) {
    if (options.num_points == 0) {
      return Status::InvalidArgument("num_points must be >= 1");
    }
    if (n == 0) return std::vector<ParetoPoint>{};
    // Linear schedule from the cheapest single item to the full catalog.
    double min_cost = base.CostOf(0);
    double total = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      min_cost = std::min(min_cost, base.CostOf(v));
      total += base.CostOf(v);
    }
    const size_t p = options.num_points;
    budgets.reserve(p);
    for (size_t i = 0; i < p; ++i) {
      budgets.push_back(p == 1 ? total
                               : min_cost + (total - min_cost) *
                                                static_cast<double>(i) /
                                                static_cast<double>(p - 1));
    }
  }

  ConstrainedCoverOptions solve_options;
  solve_options.variant = options.variant;
  solve_options.max_items = options.max_items;
  std::vector<ParetoPoint> points;
  points.reserve(budgets.size());
  for (double budget : budgets) {
    ConstraintSpec spec = base;
    spec.budget = budget;
    PREFCOVER_ASSIGN_OR_RETURN(ConstrainedSolution solved,
                               SolveConstrainedCover(graph, spec,
                                                     solve_options));
    ParetoPoint point;
    point.budget = budget;
    point.total_cost = solved.total_cost;
    point.cover = solved.solution.cover;
    point.items = std::move(solved.solution.items);
    points.push_back(std::move(point));
  }

  // Non-dominated filter: ascending cost, strictly increasing cover.
  // Ties on cost keep the highest cover (then the smallest budget, so
  // the output is deterministic in the schedule order too).
  std::stable_sort(points.begin(), points.end(),
                   [](const ParetoPoint& a, const ParetoPoint& b) {
                     if (a.total_cost != b.total_cost) {
                       return a.total_cost < b.total_cost;
                     }
                     if (a.cover != b.cover) return a.cover > b.cover;
                     return a.budget < b.budget;
                   });
  std::vector<ParetoPoint> frontier;
  double best_cover = kNegInf;
  for (ParetoPoint& point : points) {
    if (point.cover > best_cover) {
      best_cover = point.cover;
      frontier.push_back(std::move(point));
    }
  }
  return frontier;
}

}  // namespace prefcover
