// Solver output: the ordered retained set with its metadata
// (paper Section 5.1's solver output, including the coverage percentage of
// every item implied by the I array).

#ifndef PREFCOVER_CORE_SOLUTION_H_
#define PREFCOVER_CORE_SOLUTION_H_

#include <string>
#include <vector>

#include "core/solver_stats.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief A retained set S, in selection order, with cover metadata.
///
/// For greedy-family solvers the order is the selection order, so the first
/// k' items are exactly the solution the solver would produce for budget k'
/// (the incremental-prefix property of Section 3.2); `cover_after_prefix`
/// exposes C(prefix) for every prefix length.
struct Solution {
  /// Retained items in selection order.
  std::vector<NodeId> items;

  /// cover_after_prefix[i] == C({items[0..i]}). Same length as `items`.
  /// Solvers without a meaningful order (brute force, random, top-k) fill
  /// it with evaluations over their output order.
  std::vector<double> cover_after_prefix;

  /// Final C(S).
  double cover = 0.0;

  /// The I array: item_contributions[v] = P(v requested and matched by S).
  std::vector<double> item_contributions;

  Variant variant = Variant::kIndependent;

  /// Name of the algorithm that produced this solution ("greedy", ...).
  std::string algorithm;

  /// Wall-clock seconds spent inside the solver.
  double solve_seconds = 0.0;

  /// Execution telemetry (gain evaluations, heap pops, stale ratio,
  /// iteration timings, pool utilization). Filled by the greedy-family
  /// solvers; zero-initialized for solvers that don't report it.
  SolverStats stats;

  /// Coverage of item v by S: 1 for retained, item_contributions[v]/W(v)
  /// otherwise (0 when W(v) == 0).
  double ItemCoverage(const PreferenceGraph& graph, NodeId v) const;

  /// C(first k items); k must be <= items.size().
  double PrefixCover(size_t k) const;

  /// The first k items (the budget-k solution of an ordered solver).
  std::vector<NodeId> PrefixItems(size_t k) const;

  /// Smallest prefix length whose cover reaches `threshold`, or
  /// items.size() + 1 when even the full solution falls short.
  size_t SmallestPrefixReaching(double threshold) const;

  /// Sanity check against the graph: items in range and distinct,
  /// cover consistent with a from-scratch evaluation (tolerance 1e-6).
  Status Validate(const PreferenceGraph& graph) const;
};

}  // namespace prefcover

#endif  // PREFCOVER_CORE_SOLUTION_H_
