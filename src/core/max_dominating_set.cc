#include "core/max_dominating_set.h"

#include <algorithm>

#include "core/brute_force_solver.h"  // BinomialCoefficient
#include "graph/graph_builder.h"
#include "util/bitset.h"

namespace prefcover {

DominatingSetInstance::DominatingSetInstance(size_t num_nodes)
    : out_(num_nodes) {}

Status DominatingSetInstance::AddEdge(NodeId from, NodeId to) {
  if (from >= out_.size() || to >= out_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument(
        "self-loops are meaningless for domination");
  }
  out_[from].push_back(to);
  ++num_edges_;
  return Status::OK();
}

size_t DominatingSetInstance::DominatedCount(
    const std::vector<NodeId>& set) const {
  Bitset dominated(out_.size());
  for (NodeId v : set) {
    dominated.Set(v);
    for (NodeId u : out_[v]) dominated.Set(u);
  }
  return dominated.Count();
}

Result<std::vector<NodeId>> SolveDominatingSetGreedy(
    const DominatingSetInstance& instance, size_t k) {
  const size_t n = instance.NumNodes();
  if (k > n) return Status::InvalidArgument("budget k exceeds node count");
  Bitset dominated(n);
  Bitset chosen(n);
  std::vector<NodeId> set;
  set.reserve(k);
  for (size_t round = 0; round < k; ++round) {
    NodeId best = kInvalidNode;
    size_t best_gain = 0;
    bool found = false;
    for (NodeId v = 0; v < n; ++v) {
      if (chosen.Test(v)) continue;
      size_t gain = dominated.Test(v) ? 0 : 1;
      for (NodeId u : instance.OutNeighbors(v)) {
        if (!dominated.Test(u)) ++gain;
      }
      if (!found || gain > best_gain) {
        found = true;
        best_gain = gain;
        best = v;
      }
    }
    if (!found) break;
    chosen.Set(best);
    set.push_back(best);
    dominated.Set(best);
    for (NodeId u : instance.OutNeighbors(best)) dominated.Set(u);
  }
  return set;
}

Result<std::vector<NodeId>> SolveDominatingSetBruteForce(
    const DominatingSetInstance& instance, size_t k, uint64_t max_subsets) {
  const size_t n = instance.NumNodes();
  if (k > n) return Status::InvalidArgument("budget k exceeds node count");
  uint64_t subsets = BinomialCoefficient(n, k);
  if (max_subsets != 0 && subsets > max_subsets) {
    return Status::FailedPrecondition("instance too large for brute force");
  }
  std::vector<NodeId> current(k);
  for (size_t i = 0; i < k; ++i) current[i] = static_cast<NodeId>(i);
  std::vector<NodeId> best = current;
  size_t best_count = k == 0 ? 0 : instance.DominatedCount(current);
  if (k > 0) {
    for (;;) {
      size_t i = k;
      while (i > 0) {
        --i;
        if (current[i] != static_cast<NodeId>(n - k + i)) break;
        if (i == 0) {
          i = k;
          break;
        }
      }
      if (i == k) break;
      ++current[i];
      for (size_t j = i + 1; j < k; ++j) current[j] = current[j - 1] + 1;
      size_t count = instance.DominatedCount(current);
      if (count > best_count) {
        best_count = count;
        best = current;
      }
    }
  }
  return best;
}

Result<PreferenceGraph> ReduceDsToIpc(
    const DominatingSetInstance& instance) {
  const size_t n = instance.NumNodes();
  if (n == 0) {
    return Status::InvalidArgument("empty DS_k instance");
  }
  GraphBuilder builder;
  builder.Reserve(n, instance.NumEdges());
  for (NodeId v = 0; v < n; ++v) {
    builder.AddNode(1.0 / static_cast<double>(n));
  }
  // Theorem 4.1: edges REVERSED, probability 1. Duplicate directed edges
  // in the DS instance collapse to one (probability 1 either way).
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> targets = instance.OutNeighbors(v);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    for (NodeId u : targets) {
      PREFCOVER_RETURN_NOT_OK(builder.AddEdge(u, v, 1.0));
    }
  }
  GraphValidationOptions options;
  options.weight_sum_tolerance = 1e-6;  // n * (1/n) rounding
  return builder.Finalize(options);
}

}  // namespace prefcover
