// The two Preference Cover problem variants (paper Sections 2.1, 2.2).

#ifndef PREFCOVER_CORE_VARIANT_H_
#define PREFCOVER_CORE_VARIANT_H_

#include <string_view>

#include "util/status.h"

namespace prefcover {

/// \brief Interpretation of the probabilistic dependencies between the
/// alternatives of a requested item.
enum class Variant {
  /// IPC_k: alternative suitabilities are independent events. A request for
  /// non-retained v is matched with probability
  /// 1 - prod_{u in R_v(S)} (1 - W(v,u)).
  kIndependent,

  /// NPC_k: each consumer considers at most one alternative, so outgoing
  /// edge weights per node sum to <= 1 and the match probability is
  /// sum_{u in R_v(S)} W(v,u).
  kNormalized,
};

/// "independent" / "normalized".
std::string_view VariantName(Variant variant);

/// Parses a variant name (case-sensitive); InvalidArgument otherwise.
Result<Variant> ParseVariant(std::string_view name);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_VARIANT_H_
