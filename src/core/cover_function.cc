#include "core/cover_function.h"

#include "graph/graph_stats.h"

namespace prefcover {

Status ValidateInstance(const PreferenceGraph& graph, size_t k,
                        Variant variant) {
  if (k > graph.NumNodes()) {
    return Status::InvalidArgument(
        "budget k=" + std::to_string(k) + " exceeds catalog size n=" +
        std::to_string(graph.NumNodes()));
  }
  if (variant == Variant::kNormalized &&
      !IsNormalizedAdmissible(graph, /*tolerance=*/1e-9)) {
    return Status::FailedPrecondition(
        "Normalized variant requires per-node outgoing weight sums <= 1; "
        "clamp the graph (ClampOutWeights) or use the Independent variant");
  }
  return Status::OK();
}

double CoverOfItem(const PreferenceGraph& graph, const Bitset& retained,
                   NodeId v, Variant variant) {
  if (retained.Test(v)) return 1.0;
  AdjacencyView out = graph.OutNeighbors(v);
  switch (variant) {
    case Variant::kIndependent: {
      double miss = 1.0;  // probability no retained alternative fits
      for (size_t i = 0; i < out.size(); ++i) {
        if (retained.Test(out.nodes[i])) miss *= 1.0 - out.weights[i];
      }
      return 1.0 - miss;
    }
    case Variant::kNormalized: {
      double hit = 0.0;
      for (size_t i = 0; i < out.size(); ++i) {
        if (retained.Test(out.nodes[i])) hit += out.weights[i];
      }
      // Out-weight sums are <= 1 for admissible graphs; clamp guards
      // accumulated floating-point excess only.
      return hit > 1.0 ? 1.0 : hit;
    }
  }
  return 0.0;
}

double EvaluateCover(const PreferenceGraph& graph, const Bitset& retained,
                     Variant variant) {
  double cover = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    cover += graph.NodeWeight(v) * CoverOfItem(graph, retained, v, variant);
  }
  return cover;
}

Result<double> EvaluateCover(const PreferenceGraph& graph,
                             const std::vector<NodeId>& retained_items,
                             Variant variant) {
  Bitset retained(graph.NumNodes());
  for (NodeId v : retained_items) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("retained item out of range: " +
                                     std::to_string(v));
    }
    if (retained.Test(v)) {
      return Status::InvalidArgument("duplicate retained item: " +
                                     std::to_string(v));
    }
    retained.Set(v);
  }
  return EvaluateCover(graph, retained, variant);
}

std::vector<double> ComputeItemCoverContributions(const PreferenceGraph& graph,
                                                  const Bitset& retained,
                                                  Variant variant) {
  std::vector<double> contributions(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    contributions[v] =
        graph.NodeWeight(v) * CoverOfItem(graph, retained, v, variant);
  }
  return contributions;
}

}  // namespace prefcover
