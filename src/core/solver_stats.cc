#include "core/solver_stats.h"

#include <algorithm>
#include <cstdio>

#include "util/timer.h"

namespace prefcover {

void SolverStats::LoadCounters(const obs::MetricsSnapshot& snapshot) {
  iterations = snapshot.CounterOr(solver_metric::kIterations);
  gain_evaluations = snapshot.CounterOr(solver_metric::kGainEvaluations);
  heap_pops = snapshot.CounterOr(solver_metric::kHeapPops);
  stale_refreshes = snapshot.CounterOr(solver_metric::kStaleRefreshes);
  seed_refills = snapshot.CounterOr(solver_metric::kSeedRefills);
  parallel_batches = snapshot.CounterOr(solver_metric::kParallelBatches);
  parallel_items = snapshot.CounterOr(solver_metric::kParallelItems);
}

double SolverStats::StaleRatio() const {
  if (heap_pops == 0) return 0.0;
  return static_cast<double>(stale_refreshes) /
         static_cast<double>(heap_pops);
}

double SolverStats::AvgIterationSeconds() const {
  if (iterations == 0) return 0.0;
  return total_iteration_seconds / static_cast<double>(iterations);
}

double SolverStats::PoolUtilization() const {
  if (parallel_batches == 0 || threads == 0) return 0.0;
  double per_dispatch = static_cast<double>(parallel_items) /
                        static_cast<double>(parallel_batches);
  return std::min(1.0, per_dispatch / static_cast<double>(threads));
}

std::string SolverStats::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "iters=%llu gains=%llu pops=%llu stale=%.1f%% "
                "avg-iter=%s max-iter=%s threads=%zu batch=%zu util=%.0f%%",
                static_cast<unsigned long long>(iterations),
                static_cast<unsigned long long>(gain_evaluations),
                static_cast<unsigned long long>(heap_pops),
                StaleRatio() * 100.0,
                FormatDuration(AvgIterationSeconds()).c_str(),
                FormatDuration(max_iteration_seconds).c_str(), threads,
                batch_size, PoolUtilization() * 100.0);
  std::string out = buffer;
  if (truncated) out += " TRUNCATED";
  return out;
}

}  // namespace prefcover
