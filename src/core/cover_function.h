// Exact, from-scratch evaluation of the cover function C(S)
// (Definitions 2.1 and 2.2).
//
// This is the reference implementation ("oracle") the incremental
// CoverState is validated against, and the evaluator the brute-force solver
// uses. O(n + m) per call; solvers on hot paths use CoverState instead.

#ifndef PREFCOVER_CORE_COVER_FUNCTION_H_
#define PREFCOVER_CORE_COVER_FUNCTION_H_

#include <vector>

#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/bitset.h"
#include "util/status.h"

namespace prefcover {

/// \brief Validates a (graph, k, variant) problem instance: k within the
/// catalog, and — for the Normalized variant — out-weight sums <= 1, the
/// admissibility its cover semantics requires (Definition 2.2). All
/// solvers call this before touching the instance, so an Independent-style
/// graph can never be silently mis-scored under Normalized semantics.
Status ValidateInstance(const PreferenceGraph& graph, size_t k,
                        Variant variant);

/// \brief Probability that a request for `v` is matched when `retained`
/// marks the retained set S.
///
/// 1 if v is retained; otherwise the variant-specific combination of v's
/// retained out-neighbors.
double CoverOfItem(const PreferenceGraph& graph, const Bitset& retained,
                   NodeId v, Variant variant);

/// \brief C(S): probability that a request drawn from the node-weight
/// distribution is matched. Exact, from scratch.
double EvaluateCover(const PreferenceGraph& graph, const Bitset& retained,
                     Variant variant);

/// \brief Convenience overload taking S as a node list (duplicates and
/// out-of-range ids rejected).
Result<double> EvaluateCover(const PreferenceGraph& graph,
                             const std::vector<NodeId>& retained_items,
                             Variant variant);

/// \brief Per-item matched probabilities I[v] = W(v) * CoverOfItem(v), the
/// paper's I array, computed from scratch. Sums to C(S).
std::vector<double> ComputeItemCoverContributions(
    const PreferenceGraph& graph, const Bitset& retained, Variant variant);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_COVER_FUNCTION_H_
