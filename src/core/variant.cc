#include "core/variant.h"

#include <string>

namespace prefcover {

std::string_view VariantName(Variant variant) {
  switch (variant) {
    case Variant::kIndependent:
      return "independent";
    case Variant::kNormalized:
      return "normalized";
  }
  return "unknown";
}

Result<Variant> ParseVariant(std::string_view name) {
  if (name == "independent") return Variant::kIndependent;
  if (name == "normalized") return Variant::kNormalized;
  return Status::InvalidArgument("unknown variant: '" + std::string(name) +
                                 "' (expected independent|normalized)");
}

}  // namespace prefcover
