// Exhaustive optimal solver (the paper's BF baseline).
//
// Enumerates all C(n, k) subsets and evaluates C(S) exactly. Only feasible
// for tiny instances (the paper notes 155M subsets already at n=30, k=15);
// its role is to establish the true optimum against which the greedy
// solver's empirical approximation ratio is measured (Figures 4a/4b).

#ifndef PREFCOVER_CORE_BRUTE_FORCE_SOLVER_H_
#define PREFCOVER_CORE_BRUTE_FORCE_SOLVER_H_

#include <cstddef>
#include <cstdint>

#include "core/constrained_solver.h"
#include "core/solution.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief Options for the exhaustive search.
struct BruteForceOptions {
  Variant variant = Variant::kIndependent;

  /// Refuse instances with more than this many subsets, guarding against
  /// accidental week-long runs. 0 disables the guard.
  uint64_t max_subsets = 200'000'000ULL;
};

/// \brief Number of k-subsets of an n-set, saturating at uint64 max.
uint64_t BinomialCoefficient(uint64_t n, uint64_t k);

/// \brief Exhaustively computes an optimal retained set of size exactly k.
///
/// Among equal-cover optima, returns the lexicographically smallest item
/// set (deterministic output for tests). The solution's items are sorted
/// ascending; `cover_after_prefix` holds exact covers of the sorted
/// prefixes.
Result<Solution> SolveBruteForce(
    const PreferenceGraph& graph, size_t k,
    const BruteForceOptions& options = BruteForceOptions());

/// \brief Exhaustive optimum under a ConstraintSpec (budget / quotas /
/// both): enumerates every subset of size <= max_items (0 = no bound,
/// matching ConstrainedCoverOptions), keeps the feasible ones, and
/// returns the best cover — all 2^n masks, so n must stay tiny (<= 25 in
/// practice; the max_subsets guard applies). The differential lockdown of
/// SolveConstrainedCover measures the greedy against this.
///
/// Among equal-cover feasible optima, returns the lowest bitmask — i.e.
/// the one whose sorted item list is smallest in reversed-lexicographic
/// order — deterministically. Items are ascending. Returns
/// FailedPrecondition when no subset is feasible (contradictory minima).
Result<Solution> SolveBruteForceConstrained(
    const PreferenceGraph& graph, size_t max_items, const ConstraintSpec& spec,
    const BruteForceOptions& options = BruteForceOptions());

}  // namespace prefcover

#endif  // PREFCOVER_CORE_BRUTE_FORCE_SOLVER_H_
