#include "core/baseline_solvers.h"

#include <utility>
#include <vector>

#include "core/cover_function.h"
#include "core/cover_state.h"
#include "util/timer.h"
#include "util/top_k_heap.h"

namespace prefcover {

namespace {

// Materializes a Solution from a fixed item order by replaying the items
// through a CoverState (which also yields exact prefix covers and I).
Solution SolutionFromItems(const PreferenceGraph& graph,
                           const std::vector<NodeId>& items, Variant variant,
                           const char* algorithm, double seconds) {
  CoverState state(&graph, variant);
  Solution sol;
  sol.items = items;
  sol.cover_after_prefix.reserve(items.size());
  for (NodeId v : items) {
    state.AddNode(v);
    sol.cover_after_prefix.push_back(state.cover());
  }
  sol.cover = state.cover();
  sol.item_contributions = state.item_contributions();
  sol.variant = variant;
  sol.algorithm = algorithm;
  sol.solve_seconds = seconds;
  return sol;
}

}  // namespace

Result<Solution> SolveTopKWeight(const PreferenceGraph& graph, size_t k,
                                 Variant variant) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, variant));
  Stopwatch timer;
  TopKHeap heap(k);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    heap.Push(v, graph.NodeWeight(v));
  }
  std::vector<NodeId> items;
  items.reserve(k);
  for (const auto& entry : heap.Extract()) items.push_back(entry.id);
  return SolutionFromItems(graph, items, variant, "topk-weight",
                           timer.ElapsedSeconds());
}

double StandaloneCoverage(const PreferenceGraph& graph, NodeId v) {
  double cover = graph.NodeWeight(v);
  AdjacencyView in = graph.InNeighbors(v);
  for (size_t i = 0; i < in.size(); ++i) {
    cover += graph.NodeWeight(in.nodes[i]) * in.weights[i];
  }
  return cover;
}

Result<Solution> SolveTopKCoverage(const PreferenceGraph& graph, size_t k,
                                   Variant variant) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, variant));
  Stopwatch timer;
  TopKHeap heap(k);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    heap.Push(v, StandaloneCoverage(graph, v));
  }
  std::vector<NodeId> items;
  items.reserve(k);
  for (const auto& entry : heap.Extract()) items.push_back(entry.id);
  return SolutionFromItems(graph, items, variant, "topk-coverage",
                           timer.ElapsedSeconds());
}

Result<Solution> SolveRandom(const PreferenceGraph& graph, size_t k,
                             Variant variant, Rng* rng) {
  PREFCOVER_RETURN_NOT_OK(ValidateInstance(graph, k, variant));
  Stopwatch timer;
  std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(graph.NumNodes()), static_cast<uint32_t>(k));
  std::vector<NodeId> items(picks.begin(), picks.end());
  return SolutionFromItems(graph, items, variant, "random",
                           timer.ElapsedSeconds());
}

Result<Solution> SolveRandomBestOf(const PreferenceGraph& graph, size_t k,
                                   Variant variant, Rng* rng, size_t trials) {
  if (trials == 0) {
    return Status::InvalidArgument("trials must be positive");
  }
  Result<Solution> best = SolveRandom(graph, k, variant, rng);
  if (!best.ok()) return best;
  for (size_t t = 1; t < trials; ++t) {
    Result<Solution> candidate = SolveRandom(graph, k, variant, rng);
    if (!candidate.ok()) return candidate;
    if (candidate->cover > best->cover) best = std::move(candidate);
  }
  best->algorithm = "random-best-of-" + std::to_string(trials);
  return best;
}

}  // namespace prefcover
