// The complementary minimization problem (paper Sections 1, 3.2, 5.4 /
// Figure 4f): given a lower bound on the fraction of requests that must be
// covered, find the smallest retained set achieving it.
//
// The greedy solver answers this directly — its ordered output means the
// smallest qualifying prefix is the greedy answer, with no O(log n)
// binary-search overhead. The baselines are adapted the way the paper
// adapts them: sort by the relevant per-item metric and binary search for
// the smallest qualifying prefix.

#ifndef PREFCOVER_CORE_COMPLEMENTARY_SOLVER_H_
#define PREFCOVER_CORE_COMPLEMENTARY_SOLVER_H_

#include <cstddef>

#include "core/solution.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief Algorithm choice for the threshold problem.
enum class ThresholdAlgorithm {
  kGreedy,        // direct greedy, stop when the threshold is reached
  kTopKWeight,    // smallest prefix of the weight-sorted item list
  kTopKCoverage,  // smallest prefix of the standalone-coverage-sorted list
};

/// \brief Result of a threshold run.
struct ThresholdResult {
  /// The selected set, in the underlying order (greedy selection order or
  /// the sorted baseline order).
  Solution solution;

  /// Convenience alias for solution.items.size().
  size_t set_size = 0;

  /// True if the threshold was actually reached (a threshold can be
  /// unreachable when parts of the graph are uncoverable).
  bool reached = false;
};

/// \brief Smallest set with C(S) >= threshold under `algorithm`.
///
/// threshold must be in [0, 1]. When the threshold is unreachable the full
/// achievable solution is returned with reached == false.
Result<ThresholdResult> SolveCoverageThreshold(const PreferenceGraph& graph,
                                               double threshold,
                                               Variant variant,
                                               ThresholdAlgorithm algorithm);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_COMPLEMENTARY_SOLVER_H_
