// The round-scoped candidate-evaluation interface the greedy driver loop
// solves against, plus the reusable shard-restricted CELF engine that
// backs both implementations:
//
//   - LazyCandidateEvaluator: the in-process kernel-backed execution —
//     exactly the threshold-seeded, bound-ordered lazy CELF that
//     SolveGreedyLazy has always run, restructured behind the interface;
//   - DistributedCandidateEvaluator (src/dist/distributed_solver.h): the
//     coordinator side of the multi-process sharded solve, where each
//     worker process runs a CelfShardEngine over its contiguous candidate
//     shard and the coordinator merges per-round proposals.
//
// The contract is deliberately tiny — one exact argmax per round, one
// commit per selection — because that is all Algorithm 1 needs:
//
//   BestCandidate()   the exact (gain, id)-argmax over every live
//                     candidate, with ties broken toward the smaller id
//                     (the canonical tie-break every execution shares).
//                     Must be exact, not approximate: the distributed
//                     solve's byte-identity to SolveGreedyLazy rests on
//                     every evaluator returning the plain-greedy argmax.
//   CommitWinner(v)   called after the driver applied AddNode(v) to the
//                     shared CoverState; the evaluator updates its own
//                     bookkeeping (heap round, remote shard residuals).
//
// Shard decomposition note (the GreeDIMM argument): candidates are
// partitioned across engines, every engine sees the full residual state,
// and max over per-shard exact argmaxes == the global exact argmax. The
// greedy selection sequence — and therefore the (1 - 1/e) guarantee —
// survives the decomposition unchanged.

#ifndef PREFCOVER_CORE_CANDIDATE_EVALUATOR_H_
#define PREFCOVER_CORE_CANDIDATE_EVALUATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "core/cover_state.h"
#include "core/solver_stats.h"
#include "graph/preference_graph.h"
#include "util/bitset.h"
#include "util/status.h"

namespace prefcover {

struct GreedyOptions;  // core/greedy_solver.h

/// \brief One round's winning candidate. `found == false` means the
/// evaluator has no live candidate left (every node retained/excluded).
struct CandidateProposal {
  bool found = false;
  double gain = 0.0;
  NodeId node = kInvalidNode;
};

/// \brief Work tallies an evaluator accumulates between driver drains
/// (the driver folds them into the run-scoped solver.* counters once per
/// round, keeping the inner loops free of sharded-counter traffic).
struct EvaluatorCounters {
  uint64_t gain_evaluations = 0;
  uint64_t heap_pops = 0;
  uint64_t stale_refreshes = 0;
  uint64_t seed_refills = 0;

  void MergeFrom(EvaluatorCounters* other) {
    gain_evaluations += other->gain_evaluations;
    heap_pops += other->heap_pops;
    stale_refreshes += other->stale_refreshes;
    seed_refills += other->seed_refills;
    *other = EvaluatorCounters();
  }
};

/// \brief Everything the driver hands an evaluator factory: the shared
/// cover state (already seeded with any force-include / resume prefix),
/// the exclusion mask, and the prefix that produced that state.
struct EvaluatorContext {
  const PreferenceGraph* graph = nullptr;
  /// Driver-owned; the driver applies every AddNode. Evaluators read
  /// gains/residuals from it and must not mutate it.
  CoverState* state = nullptr;
  const Bitset* excluded = nullptr;
  size_t num_excluded = 0;
  /// Items already committed (force_include or checkpoint resume), in
  /// selection order. The factory runs after the driver replayed them.
  const std::vector<NodeId>* committed = nullptr;
  size_t k = 0;
  const GreedyOptions* options = nullptr;
};

/// \brief Round-scoped candidate evaluation: the interface both the
/// in-process and the distributed greedy executions implement.
class CandidateEvaluator {
 public:
  virtual ~CandidateEvaluator() = default;

  /// The exact argmax over all live candidates for the current round.
  /// Stable under repetition: calling twice without an intervening
  /// CommitWinner returns the same proposal.
  virtual Result<CandidateProposal> BestCandidate() = 0;

  /// Advances to the next round after the driver applied `v` to the
  /// shared CoverState. `v` is the proposal BestCandidate returned.
  virtual Status CommitWinner(NodeId v) = 0;

  /// Moves accumulated work tallies into `*into` (resets the internal
  /// tallies). Called by the driver once per selection round.
  virtual void DrainCounters(EvaluatorCounters* into) { (void)into; }

  /// End-of-run hook: lets an evaluator fold execution-wide telemetry
  /// (e.g. the distributed workers' counters) into the solution stats.
  virtual Status Finish(SolverStats* stats) {
    (void)stats;
    return Status::OK();
  }
};

// --- CELF machinery shared by the lazy executions and the shard engine --

/// \brief Lazy-greedy heap entry: a (gain, node) pair tagged with the
/// selection round the gain was computed in; entries from earlier rounds
/// are stale upper bounds (submodularity) and are refreshed before they
/// can win.
struct CelfHeapEntry {
  double gain;
  NodeId node;
  uint32_t round;
};

/// \brief Heap order: larger gain first, ties toward the smaller id —
/// exactly the plain greedy scan's strict-> tie-break.
struct CelfWorse {
  bool operator()(const CelfHeapEntry& a, const CelfHeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  }
};

using CelfHeap = std::priority_queue<CelfHeapEntry,
                                     std::vector<CelfHeapEntry>, CelfWorse>;

/// \brief A threshold-seeded CELF heap: the exact top-`cap` candidates by
/// (gain, id) order plus the cut threshold theta (the worst kept entry)
/// when candidates were cut. See greedy_solver.cc's exactness argument:
/// while the selection front stays at or above theta the cut pool cannot
/// hold the argmax; the moment it might, the owner refills.
struct CelfSeededHeap {
  CelfHeap heap;
  CelfHeapEntry theta{0.0, 0, 0};
  bool truncated = false;
};

/// \brief Visits every node in [begin, end) that is neither retained nor
/// excluded, in increasing id order, testing 64 nodes per word load.
/// The enumeration order is load-bearing: the plain scan's strict->
/// tie-break depends on it.
template <typename Fn>
void ForEachCandidateInRange(const Bitset& retained, const Bitset& excluded,
                             size_t begin, size_t end, Fn&& fn) {
  const size_t first_word = begin / Bitset::kWordBits;
  const size_t last_word = (end + Bitset::kWordBits - 1) / Bitset::kWordBits;
  for (size_t w = first_word; w < last_word; ++w) {
    uint64_t live = ~(retained.WordAt(w) | excluded.WordAt(w));
    const size_t base = w * Bitset::kWordBits;
    if (base < begin) {  // clip the partial first word
      live &= ~0ULL << (begin - base);
    }
    if (end - base < Bitset::kWordBits) {  // clip past end (+ ghost bits)
      live &= (1ULL << (end - base)) - 1;
    }
    if (live == ~0ULL) {
      // Full word (the common case before many selections): skip the
      // bit-extraction dance entirely.
      for (size_t b = 0; b < Bitset::kWordBits; ++b) {
        fn(static_cast<NodeId>(base + b));
      }
      continue;
    }
    while (live != 0) {
      const int b = __builtin_ctzll(live);
      live &= live - 1;
      fn(static_cast<NodeId>(base + static_cast<size_t>(b)));
    }
  }
}

/// \brief Streams the candidates of [begin, end) over batch-computed
/// `gains` (indexed by node id), keeping the exact top `cap` entries by
/// (gain, id). Tallies one gain evaluation per candidate into
/// `*gain_evals` (the batch sweep computed them all). The scalar-tier
/// seed path; see greedy_solver.cc for the collect-and-compact argument.
CelfSeededHeap BuildCelfSeed(const CoverState& state, const Bitset& excluded,
                             size_t begin, size_t end,
                             std::span<const double> gains, size_t cap,
                             uint32_t round, uint64_t* gain_evals);

/// \brief Bound-ordered seed for the kernel tiers: walks the graph's
/// descending static-gain-bound order, evaluating exact gains only for
/// candidates in [begin, end), and stops once the running threshold
/// exceeds every remaining bound. `live_candidates` is the number of
/// unretained, unexcluded nodes currently in the range (the builder
/// cannot count them itself — the early exit is the whole point). The
/// kept set is the exact top `cap` by (gain, id) — identical to
/// BuildCelfSeed's — so every tier selects identical node sequences.
CelfSeededHeap BuildCelfSeedBounded(const CoverState& state,
                                    const Bitset& excluded, size_t begin,
                                    size_t end, size_t cap, uint32_t round,
                                    size_t live_candidates,
                                    uint64_t* gain_evals);

/// \brief Lazy CELF over one contiguous candidate shard [begin, end):
/// the per-shard engine of the distributed solve, and (over the full
/// range) the machinery behind LazyCandidateEvaluator.
///
/// Propose() settles the heap top to freshness and returns the shard's
/// exact (gain, id)-argmax against the current CoverState — without
/// consuming it, so a proposal that loses the global merge stays
/// available. OnCommitted(winner) must be called for *every* committed
/// selection (any shard's): the caller has already applied AddNode, so
/// the engine only advances its round (stored gains become stale upper
/// bounds) and recycles the held proposal.
class CelfShardEngine {
 public:
  struct Config {
    size_t shard_begin = 0;
    size_t shard_end = 0;  // exclusive; 0/0 means the full range
    /// Seed-heap capacity T (0 = the lazy default, 1024), clamped to the
    /// shard size. Purely a performance knob — the proposal sequence is
    /// identical for every value.
    size_t seed_heap_capacity = 0;
  };

  /// `state` and `excluded` must outlive the engine. The state may
  /// already contain committed selections (force_include / resume); the
  /// seed is built against it on the first Propose().
  CelfShardEngine(const CoverState* state, const Bitset* excluded,
                  Config config);

  /// The shard's exact argmax for the current round (found == false when
  /// the shard has no live candidate). Repeatable until OnCommitted.
  CandidateProposal Propose();

  /// Advances past a committed selection. `winner` may belong to any
  /// shard; the caller has already applied CoverState::AddNode(winner).
  void OnCommitted(NodeId winner);

  void DrainCounters(EvaluatorCounters* into) { into->MergeFrom(&counters_); }

  size_t shard_begin() const { return shard_begin_; }
  size_t shard_end() const { return shard_end_; }
  uint32_t round() const { return round_; }

 private:
  void Reseed();

  const CoverState* state_;
  const Bitset* excluded_;
  size_t shard_begin_;
  size_t shard_end_;
  size_t seed_cap_;
  /// Unretained, unexcluded ids currently in [shard_begin_, shard_end_);
  /// kept incrementally so the bounded seed knows when it truncated.
  size_t live_candidates_;

  CelfSeededHeap seeded_;
  bool seeded_once_ = false;
  uint32_t round_ = 0;
  /// The settled proposal for the current round, held out of the heap
  /// until OnCommitted decides its fate (winner: dropped; loser:
  /// reinserted, becoming a stale upper bound for the next round).
  std::optional<CelfHeapEntry> pending_;
  /// Scalar-tier seed scratch (gains indexed by node id; sized to
  /// shard_end_ on first use).
  std::vector<double> gains_;

  EvaluatorCounters counters_;
};

/// \brief The in-process implementation of CandidateEvaluator: exactly
/// SolveGreedyLazy's threshold-seeded lazy CELF over the full candidate
/// range, kernel-backed at the state's SimdLevel.
class LazyCandidateEvaluator : public CandidateEvaluator {
 public:
  explicit LazyCandidateEvaluator(const EvaluatorContext& context);

  Result<CandidateProposal> BestCandidate() override;
  Status CommitWinner(NodeId v) override;
  void DrainCounters(EvaluatorCounters* into) override;

 private:
  CelfShardEngine engine_;
};

}  // namespace prefcover

#endif  // PREFCOVER_CORE_CANDIDATE_EVALUATOR_H_
