// Incremental maintenance of a retained set over a changing catalog — the
// extension the paper names as the direction "we are currently pursuing"
// (Section 7).
//
// The maintainer owns a retained set of k items over a
// DynamicPreferenceGraph and keeps it good as the graph drifts, choosing
// the cheapest adequate reaction to each batch of updates:
//
//   kNone       — the graph has not changed since the last call;
//   kEvaluated  — re-scored the current set on the new snapshot; its cover
//                 is within the drift tolerance, nothing rebuilt;
//   kRepaired   — some retained items left the catalog (or k grew): the
//                 survivors were kept and the gap was refilled greedily,
//                 without re-optimizing the whole set;
//   kResolved   — the drift tolerance was exceeded (or a resolve was
//                 forced): full greedy re-solve from scratch.
//
// Everything is expressed in StableIds, which survive catalog changes.

#ifndef PREFCOVER_CORE_INVENTORY_MAINTAINER_H_
#define PREFCOVER_CORE_INVENTORY_MAINTAINER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/variant.h"
#include "graph/dynamic_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief Maintenance policy knobs.
struct MaintainerOptions {
  Variant variant = Variant::kIndependent;

  /// Target retained-set size (capped by the live catalog size).
  size_t k = 0;

  /// Full re-solve when the current set's cover falls more than this far
  /// below the cover it had when last solved (absolute probability mass).
  double resolve_drift_tolerance = 0.02;

  /// Force a full re-solve at least every this many Maintain() calls that
  /// observed changes (0 = never force). Bounds staleness accumulated
  /// through many small, individually tolerable drifts.
  uint64_t force_resolve_every = 0;
};

/// \brief What a Maintain() call did.
enum class MaintenanceAction { kNone, kEvaluated, kRepaired, kResolved };

std::string_view MaintenanceActionName(MaintenanceAction action);

/// \brief Keeps a retained set current over a mutating catalog.
class InventoryMaintainer {
 public:
  /// The graph must outlive the maintainer.
  InventoryMaintainer(const DynamicPreferenceGraph* graph,
                      const MaintainerOptions& options);

  /// Reacts to any updates since the last call; see MaintenanceAction.
  Result<MaintenanceAction> Maintain();

  /// Forces a full re-solve regardless of drift.
  Status Resolve();

  /// The maintained retained set (stable ids, unspecified order). Empty
  /// before the first Maintain()/Resolve().
  const std::vector<StableId>& retained() const { return retained_; }

  /// Cover of the maintained set on the snapshot taken by the most recent
  /// Maintain()/Resolve().
  double current_cover() const { return current_cover_; }

  /// Cover achieved at the last full solve (the drift baseline).
  double last_solved_cover() const { return last_solved_cover_; }

  /// \name Lifetime counters (observability).
  /// @{
  uint64_t maintain_calls() const { return maintain_calls_; }
  uint64_t full_resolves() const { return full_resolves_; }
  uint64_t repairs() const { return repairs_; }
  /// @}

 private:
  /// Scores `retained_` on a fresh snapshot; drops dead items. Returns the
  /// number of retained items that disappeared.
  Result<size_t> RescoreOnCurrentGraph();

  /// Refills the retained set up to k by greedy marginal gain, keeping the
  /// current members fixed.
  Status GreedyRefill();

  const DynamicPreferenceGraph* graph_;
  MaintainerOptions options_;
  std::vector<StableId> retained_;
  double current_cover_ = 0.0;
  double last_solved_cover_ = 0.0;
  uint64_t last_seen_version_ = 0;
  uint64_t maintain_calls_ = 0;
  uint64_t full_resolves_ = 0;
  uint64_t repairs_ = 0;
  uint64_t changes_since_resolve_ = 0;
  bool solved_once_ = false;
};

}  // namespace prefcover

#endif  // PREFCOVER_CORE_INVENTORY_MAINTAINER_H_
