// Incremental cover bookkeeping shared by all solvers: the paper's I array
// together with the variant-specific Gain (Algorithms 2 and 4) and AddNode
// (Algorithms 3 and 5) procedures.
//
// Invariant maintained throughout: I[v] is the probability that item v is
// both requested and matched by the current retained set S, so
// sum_v I[v] == C(S), and for v in S, I[v] == W(v).
//
// Since the SIMD/data-layout overhaul the state is structure-of-arrays —
// I alongside the residual array W - I (fresh-subtraction invariant, see
// core/coverage_kernels.h), a packed retained bitset, and the Normalized
// variant's precomputed per-in-edge static gain table — and Gain/AddNode
// dispatch to the coverage kernels at the SimdLevel fixed at
// construction. Every level is bit-identical to the scalar reference, so
// solutions do not depend on the host CPU.
//
// GainOf is const and touches only v's in-neighbors, so concurrent GainOf
// calls from multiple threads are safe (the parallel greedy solver's
// per-iteration candidate scan). AddNode requires exclusive access.

#ifndef PREFCOVER_CORE_COVER_STATE_H_
#define PREFCOVER_CORE_COVER_STATE_H_

#include <vector>

#include "core/coverage_kernels.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/bitset.h"
#include "util/simd_dispatch.h"

namespace prefcover {

/// \brief Mutable solver state: retained set S, I array and running C(S).
class CoverState {
 public:
  /// The graph must outlive the state. `level` picks the kernel dispatch
  /// tier, clamped to what the build/CPU/instance supports; the default
  /// honors the PREFCOVER_SIMD_LEVEL override (util/simd_dispatch.h).
  CoverState(const PreferenceGraph* graph, Variant variant);
  CoverState(const PreferenceGraph* graph, Variant variant, SimdLevel level);

  /// Marginal gain to C(S) from adding v to S (Algorithm 2 for the
  /// Normalized variant, Algorithm 4 for the Independent one).
  /// Requires v not retained. Thread-safe against other GainOf calls.
  double GainOf(NodeId v) const;

  /// Batch form: writes GainOf(v) into gains[v] for every v in
  /// [begin, end) in one in-CSR streaming pass — each value bit-identical
  /// to the per-node call. Values at retained positions are well-defined
  /// but meaningless; callers mask them. Thread-safe against GainOf and
  /// against GainsInto over disjoint ranges (the solvers' heap seed).
  void GainsInto(size_t begin, size_t end, std::span<double> gains) const;

  /// Adds v to S, updating I and C(S) in O(in-degree of v)
  /// (Algorithms 3 / 5). Requires v not retained.
  void AddNode(NodeId v);

  /// C(S) as maintained incrementally.
  double cover() const { return cover_; }

  bool IsRetained(NodeId v) const { return retained_.Test(v); }
  size_t NumRetained() const { return num_retained_; }
  const Bitset& retained() const { return retained_; }

  /// The I array: I[v] = P(v requested and matched by S).
  const std::vector<double>& item_contributions() const { return item_; }

  /// Moves the I array out of the state — the terminal step of a solve,
  /// saving an O(n) copy into the Solution. Afterwards the state is only
  /// good for destruction or Reset().
  std::vector<double> TakeItemContributions() { return std::move(item_); }

  /// Cover of item v by S, i.e. I[v] / W(v) (1 for retained items,
  /// 0 when W(v) == 0 and v unretained).
  double ItemCoverage(NodeId v) const;

  Variant variant() const { return variant_; }
  const PreferenceGraph& graph() const { return *graph_; }

  /// The kernel dispatch tier this state executes at (after clamping).
  SimdLevel simd_level() const { return level_; }

  /// Returns to the empty retained set.
  void Reset();

 private:
  CoverStateView View() const;
  MutableCoverStateView MutableView();

  const PreferenceGraph* graph_;
  Variant variant_;
  SimdLevel level_;
  Bitset retained_;
  std::vector<double> item_;      // the paper's I array
  std::vector<double> residual_;  // W - I, fresh-subtraction invariant
  // Normalized only: per-in-edge W(u) * W(u,v), indexed by InEdgeOffset.
  std::vector<double> static_gain_;
  double cover_ = 0.0;
  size_t num_retained_ = 0;
};

}  // namespace prefcover

#endif  // PREFCOVER_CORE_COVER_STATE_H_
