// Incremental cover bookkeeping shared by all solvers: the paper's I array
// together with the variant-specific Gain (Algorithms 2 and 4) and AddNode
// (Algorithms 3 and 5) procedures.
//
// Invariant maintained throughout: I[v] is the probability that item v is
// both requested and matched by the current retained set S, so
// sum_v I[v] == C(S), and for v in S, I[v] == W(v).
//
// GainOf is const and touches only v's in-neighbors, so concurrent GainOf
// calls from multiple threads are safe (the parallel greedy solver's
// per-iteration candidate scan). AddNode requires exclusive access.

#ifndef PREFCOVER_CORE_COVER_STATE_H_
#define PREFCOVER_CORE_COVER_STATE_H_

#include <vector>

#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/bitset.h"

namespace prefcover {

/// \brief Mutable solver state: retained set S, I array and running C(S).
class CoverState {
 public:
  /// The graph must outlive the state.
  CoverState(const PreferenceGraph* graph, Variant variant);

  /// Marginal gain to C(S) from adding v to S (Algorithm 2 for the
  /// Normalized variant, Algorithm 4 for the Independent one).
  /// Requires v not retained. Thread-safe against other GainOf calls.
  double GainOf(NodeId v) const;

  /// Adds v to S, updating I and C(S) in O(in-degree of v)
  /// (Algorithms 3 / 5). Requires v not retained.
  void AddNode(NodeId v);

  /// C(S) as maintained incrementally.
  double cover() const { return cover_; }

  bool IsRetained(NodeId v) const { return retained_.Test(v); }
  size_t NumRetained() const { return num_retained_; }
  const Bitset& retained() const { return retained_; }

  /// The I array: I[v] = P(v requested and matched by S).
  const std::vector<double>& item_contributions() const { return item_; }

  /// Cover of item v by S, i.e. I[v] / W(v) (1 for retained items,
  /// 0 when W(v) == 0 and v unretained).
  double ItemCoverage(NodeId v) const;

  Variant variant() const { return variant_; }
  const PreferenceGraph& graph() const { return *graph_; }

  /// Returns to the empty retained set.
  void Reset();

 private:
  const PreferenceGraph* graph_;
  Variant variant_;
  Bitset retained_;
  std::vector<double> item_;  // the paper's I array
  double cover_ = 0.0;
  size_t num_retained_ = 0;
};

}  // namespace prefcover

#endif  // PREFCOVER_CORE_COVER_STATE_H_
