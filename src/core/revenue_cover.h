// Revenue- and storage-aware preference cover — the paper's second
// future-work direction (Section 7): "extending our work to support
// varying per-item revenues and storage considerations".
//
// Model: each item has a revenue r(v) (the platform's expected gain per
// matched request routed to it... approximated, as in the base model, by
// the *requested* item's value) and a storage cost c(v); instead of a
// cardinality budget k the store has capacity C. The objective becomes
// expected revenue
//
//   R(S) = sum_v r(v) * W(v) * P(request for v matched by S),
//
// subject to sum_{v in S} c(v) <= C.
//
// R is a nonnegative monotone submodular function (it is the plain cover
// function on a graph with node weights W(v)*r(v)), so the classical
// budgeted-submodular treatment applies: cost-benefit greedy, returned
// alongside the best affordable singleton, achieves a constant-factor
// guarantee ((1 - 1/e)/2, Khuller-Moss-Naor / Leskovec et al.); plain
// cardinality is recovered with unit costs and revenues.

#ifndef PREFCOVER_CORE_REVENUE_COVER_H_
#define PREFCOVER_CORE_REVENUE_COVER_H_

#include <vector>

#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {

/// \brief Inputs for the budgeted problem.
struct RevenueCoverOptions {
  Variant variant = Variant::kIndependent;

  /// Per-item revenue, indexable by NodeId; every entry must be > 0.
  std::vector<double> revenues;

  /// Per-item storage cost, indexable by NodeId; every entry must be > 0.
  std::vector<double> costs;

  /// Storage capacity.
  double capacity = 0.0;
};

/// \brief Outcome of the budgeted solve.
struct RevenueSolution {
  /// Retained items in selection order ("best-single" solutions have one).
  std::vector<NodeId> items;

  /// Expected revenue R(S).
  double expected_revenue = 0.0;

  /// Total storage cost of S (<= capacity).
  double total_cost = 0.0;

  /// The expected revenue if every item were retained (upper bound; useful
  /// for reporting attainment).
  double revenue_upper_bound = 0.0;

  /// True when the cost-benefit greedy beat the best affordable singleton
  /// (false means the singleton guard was the better answer — the case the
  /// guarantee exists for).
  bool greedy_won = true;
};

/// \brief Budgeted cost-benefit greedy with the best-singleton guard.
///
/// Validation: revenue/cost vectors must match the graph size; capacity
/// must be positive; the Normalized variant requires admissible
/// out-weights as usual.
Result<RevenueSolution> SolveRevenueCover(const PreferenceGraph& graph,
                                          const RevenueCoverOptions& options);

/// \brief Expected revenue of an explicit retained set (exact evaluation).
Result<double> EvaluateExpectedRevenue(const PreferenceGraph& graph,
                                       const std::vector<NodeId>& retained,
                                       const std::vector<double>& revenues,
                                       Variant variant);

}  // namespace prefcover

#endif  // PREFCOVER_CORE_REVENUE_COVER_H_
