#include "clickstream/session.h"

#include <algorithm>

#include "util/logging.h"

namespace prefcover {

std::vector<ItemId> Session::Alternatives() const {
  std::vector<ItemId> alts;
  alts.reserve(clicks.size());
  for (ItemId item : clicks) {
    if (item == purchase) continue;
    if (std::find(alts.begin(), alts.end(), item) != alts.end()) continue;
    alts.push_back(item);
  }
  return alts;
}

std::vector<std::pair<ItemId, double>> Session::AlternativesWithDwell()
    const {
  PREFCOVER_DCHECK(!HasDwell() || dwell_seconds.size() == clicks.size());
  std::vector<std::pair<ItemId, double>> alts;
  alts.reserve(clicks.size());
  for (size_t i = 0; i < clicks.size(); ++i) {
    ItemId item = clicks[i];
    if (item == purchase) continue;
    double dwell = HasDwell() ? dwell_seconds[i] : -1.0;
    auto it = std::find_if(alts.begin(), alts.end(),
                           [item](const std::pair<ItemId, double>& entry) {
                             return entry.first == item;
                           });
    if (it == alts.end()) {
      alts.emplace_back(item, dwell);
    } else if (dwell > it->second) {
      it->second = dwell;  // keep the longest dwell per item
    }
  }
  return alts;
}

ItemId ItemDictionary::Intern(const std::string& name) {
  auto [it, inserted] =
      index_.try_emplace(name, static_cast<ItemId>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

ItemId ItemDictionary::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidItem : it->second;
}

const std::string& ItemDictionary::Name(ItemId id) const {
  PREFCOVER_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace prefcover
