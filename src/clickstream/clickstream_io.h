// Clickstream CSV interchange.
//
// Event format, one event per record, compatible in spirit with the
// YooChoose RecSys-2015 layout the paper evaluates on:
//
//   session_id,event_type,item_id
//
// where event_type is "click" or "purchase". Events of one session must be
// contiguous (files sorted by session), which matches how such logs are
// exported in practice and permits streaming a file of any size.

#ifndef PREFCOVER_CLICKSTREAM_CLICKSTREAM_IO_H_
#define PREFCOVER_CLICKSTREAM_CLICKSTREAM_IO_H_

#include <iosfwd>
#include <string>

#include "clickstream/clickstream.h"
#include "util/status.h"

namespace prefcover {

/// \brief Writes the clickstream as event CSV (with header).
Status WriteClickstreamCsv(const Clickstream& clickstream, std::ostream* out);

/// \brief Reads an event CSV into memory.
///
/// Rules enforced:
///   - unknown event types are an error;
///   - a second purchase in a session is an error (the paper's data has
///     single-purchase sessions by construction);
///   - sessions interleaving (a session id seen again after another id)
///     is an error, so silent data corruption is caught.
Result<Clickstream> ReadClickstreamCsv(std::istream* in);

/// File-path conveniences.
Status WriteClickstreamCsvFile(const Clickstream& clickstream,
                               const std::string& path);
Result<Clickstream> ReadClickstreamCsvFile(const std::string& path);

}  // namespace prefcover

#endif  // PREFCOVER_CLICKSTREAM_CLICKSTREAM_IO_H_
