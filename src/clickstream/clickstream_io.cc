#include "clickstream/clickstream_io.h"

#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "util/csv.h"
#include "util/string_util.h"

namespace prefcover {

Status WriteClickstreamCsv(const Clickstream& clickstream,
                           std::ostream* out) {
  // Emit the optional dwell column only when some session carries dwell
  // data, so dwell-free streams stay byte-compatible with older readers.
  bool any_dwell = false;
  for (const Session& session : clickstream.sessions()) {
    if (session.HasDwell()) {
      any_dwell = true;
      break;
    }
  }
  CsvWriter writer(out);
  if (any_dwell) {
    writer.WriteRecord({"session_id", "event_type", "item_id",
                        "dwell_seconds"});
  } else {
    writer.WriteRecord({"session_id", "event_type", "item_id"});
  }
  const ItemDictionary& dict = clickstream.dictionary();
  size_t session_id = 0;
  char dwell_buf[32];
  for (const Session& session : clickstream.sessions()) {
    std::string sid = std::to_string(session_id++);
    for (size_t i = 0; i < session.clicks.size(); ++i) {
      if (any_dwell) {
        std::string dwell;
        if (session.HasDwell() && session.dwell_seconds[i] >= 0.0) {
          std::snprintf(dwell_buf, sizeof(dwell_buf), "%.10g",
                        session.dwell_seconds[i]);
          dwell = dwell_buf;
        }
        writer.WriteRecord(
            {sid, "click", dict.Name(session.clicks[i]), dwell});
      } else {
        writer.WriteRecord({sid, "click", dict.Name(session.clicks[i])});
      }
    }
    if (session.HasPurchase()) {
      if (any_dwell) {
        writer.WriteRecord({sid, "purchase", dict.Name(session.purchase),
                            ""});
      } else {
        writer.WriteRecord({sid, "purchase", dict.Name(session.purchase)});
      }
    }
  }
  if (!out->good()) return Status::IOError("failed writing clickstream CSV");
  return Status::OK();
}

Result<Clickstream> ReadClickstreamCsv(std::istream* in) {
  Clickstream clickstream;
  ItemDictionary* dict = clickstream.mutable_dictionary();
  CsvReader reader(in);
  std::vector<std::string> fields;
  bool header = true;
  bool has_dwell_column = false;
  std::string current_sid;
  bool have_session = false;
  Session current;
  std::unordered_set<std::string> finished_sids;

  auto flush = [&clickstream, &current]() {
    clickstream.AddSession(std::move(current));
    current = Session();
  };

  while (reader.Next(&fields)) {
    if (header) {
      header = false;
      if ((fields.size() != 3 && fields.size() != 4) ||
          fields[0] != "session_id") {
        return Status::InvalidArgument(
            "clickstream CSV must start with session_id,event_type,item_id"
            "[,dwell_seconds]");
      }
      has_dwell_column = fields.size() == 4;
      continue;
    }
    if (fields.size() != (has_dwell_column ? 4u : 3u)) {
      return Status::InvalidArgument(
          "clickstream record " + std::to_string(reader.record_number()) +
          " has the wrong field count");
    }
    const std::string& sid = fields[0];
    const std::string& type = fields[1];
    const std::string& item_name = fields[2];
    if (!have_session || sid != current_sid) {
      if (have_session) {
        flush();
        finished_sids.insert(current_sid);
      }
      if (finished_sids.count(sid) > 0) {
        return Status::InvalidArgument("session '" + sid +
                                       "' reappears after other sessions; "
                                       "input must be grouped by session");
      }
      current_sid = sid;
      have_session = true;
    }
    ItemId item = dict->Intern(item_name);
    if (type == "click") {
      current.clicks.push_back(item);
      if (has_dwell_column) {
        double dwell = -1.0;
        if (!fields[3].empty()) {
          auto parsed = ParseDouble(fields[3]);
          if (!parsed.ok()) {
            return Status::InvalidArgument(
                "bad dwell value in record " +
                std::to_string(reader.record_number()));
          }
          dwell = *parsed;
        }
        current.dwell_seconds.push_back(dwell);
      }
    } else if (type == "purchase") {
      if (current.HasPurchase()) {
        return Status::InvalidArgument("session '" + sid +
                                       "' has multiple purchases");
      }
      current.purchase = item;
    } else {
      return Status::InvalidArgument("unknown event type '" + type +
                                     "' in record " +
                                     std::to_string(reader.record_number()));
    }
  }
  PREFCOVER_RETURN_NOT_OK(reader.status());
  if (have_session) flush();
  return clickstream;
}

Status WriteClickstreamCsvFile(const Clickstream& clickstream,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteClickstreamCsv(clickstream, &out);
}

Result<Clickstream> ReadClickstreamCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return ReadClickstreamCsv(&in);
}

}  // namespace prefcover
