// Session model for clickstream data (paper Section 5.2).
//
// A session groups the browsing events of one consumer visit. Following the
// paper's assumptions, only the minimal signal most platforms have is
// modeled: which items were clicked and which single item (if any) was
// purchased. Sessions ending without a purchase carry no buying intent and
// are ignored by graph construction, but are kept so dataset statistics
// (Table 2) can report total session counts.

#ifndef PREFCOVER_CLICKSTREAM_SESSION_H_
#define PREFCOVER_CLICKSTREAM_SESSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace prefcover {

/// Dense item identifier within a clickstream's dictionary.
using ItemId = uint32_t;

/// Sentinel for "no item" (e.g. a session without a purchase).
inline constexpr ItemId kInvalidItem = 0xFFFFFFFFu;

/// \brief One consumer visit: clicked items plus at most one purchase.
struct Session {
  /// Distinct clicked items, in click order. May include the purchased
  /// item (a click preceding its own purchase); graph construction excludes
  /// it from the alternative set.
  std::vector<ItemId> clicks;

  /// Optional dwell time per click, parallel to `clicks` (seconds spent
  /// viewing the item). Either empty (unknown) or the same length as
  /// `clicks`. Dwell is the corrective signal the paper's Section 5.2
  /// suggests for separating purchase intent from idle browsing.
  std::vector<double> dwell_seconds;

  /// The purchased item, or kInvalidItem for a browse-only session.
  ItemId purchase = kInvalidItem;

  bool HasPurchase() const { return purchase != kInvalidItem; }
  bool HasDwell() const { return !dwell_seconds.empty(); }

  /// Distinct clicked items other than the purchase — the session's
  /// implied alternatives.
  std::vector<ItemId> Alternatives() const;

  /// Distinct alternatives paired with the longest dwell observed for
  /// each; dwell is -1 for sessions without dwell data.
  std::vector<std::pair<ItemId, double>> AlternativesWithDwell() const;
};

/// \brief Bidirectional mapping between external item names (SKUs) and
/// dense ItemIds.
class ItemDictionary {
 public:
  /// Returns the id of `name`, interning it on first sight.
  ItemId Intern(const std::string& name);

  /// Id of `name` or kInvalidItem when unknown.
  ItemId Lookup(const std::string& name) const;

  /// Name of an interned id.
  const std::string& Name(ItemId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, ItemId> index_;
  std::vector<std::string> names_;
};

}  // namespace prefcover

#endif  // PREFCOVER_CLICKSTREAM_SESSION_H_
