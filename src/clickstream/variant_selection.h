// Choosing the problem variant from the data (paper Section 5.2, "How to
// choose the variant").
//
// Normalized fits when >= 90% of purchase sessions clicked at most one
// alternative. Independent fits when the alternatives of each item are
// (approximately) pairwise independent, measured by the weighted average
// normalized mutual information (Strehl & Ghosh) being below 0.1.

#ifndef PREFCOVER_CLICKSTREAM_VARIANT_SELECTION_H_
#define PREFCOVER_CLICKSTREAM_VARIANT_SELECTION_H_

#include <cstddef>
#include <string>

#include "clickstream/clickstream.h"
#include "core/variant.h"
#include "util/status.h"

namespace prefcover {

/// \brief Thresholds from the paper.
struct VariantSelectionOptions {
  /// Normalized is a good fit when at least this share of purchase
  /// sessions implies at most one alternative.
  double normalized_fit_threshold = 0.9;

  /// Independent is a good fit when the weighted average pairwise NMI is
  /// below this.
  double independence_threshold = 0.1;

  /// Cap on alternatives examined per item when forming NMI pairs; the
  /// most frequently clicked alternatives are kept. Guards the O(a^2)
  /// pair enumeration on hub items.
  size_t max_alternatives_per_item = 12;
};

/// \brief Normalized mutual information of two binary indicator variables
/// given their joint counts over `total` observations.
///
/// counts[x][y] = number of observations with X == x, Y == y.
/// Returns 0 when either marginal entropy is 0 (a constant variable is
/// independent of everything).
double BinaryNormalizedMutualInformation(const uint64_t counts[2][2]);

/// \brief Fraction of purchase sessions with at most one clicked
/// alternative (the Normalized fit measure).
double NormalizedFitShare(const Clickstream& clickstream);

/// \brief The paper's independence measure: for each purchased item,
/// average pairwise NMI over its alternatives' click indicators, then a
/// purchase-weighted average over items. In [0, 1]; lower = more
/// independent. Items with fewer than 2 alternatives contribute 0.
double IndependenceMeasure(const Clickstream& clickstream,
                           size_t max_alternatives_per_item = 12);

/// \brief Outcome of the variant recommendation.
struct VariantRecommendation {
  Variant variant = Variant::kIndependent;
  double normalized_fit = 0.0;      // >= threshold -> Normalized fits
  double independence = 1.0;        // < threshold -> Independent fits
  bool normalized_fits = false;
  bool independent_fits = false;

  std::string ToString() const;
};

/// \brief Applies the paper's decision rule: prefer Normalized when its
/// criterion holds, otherwise Independent when its criterion holds,
/// otherwise default to Independent with both fit flags false (the paper
/// leaves other dependency structures to future work).
VariantRecommendation RecommendVariant(
    const Clickstream& clickstream,
    const VariantSelectionOptions& options = VariantSelectionOptions());

}  // namespace prefcover

#endif  // PREFCOVER_CLICKSTREAM_VARIANT_SELECTION_H_
