#include "clickstream/variant_selection.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace prefcover {

double BinaryNormalizedMutualInformation(const uint64_t counts[2][2]) {
  uint64_t total = 0;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) total += counts[x][y];
  }
  if (total == 0) return 0.0;
  double n = static_cast<double>(total);
  double px[2] = {
      static_cast<double>(counts[0][0] + counts[0][1]) / n,
      static_cast<double>(counts[1][0] + counts[1][1]) / n,
  };
  double py[2] = {
      static_cast<double>(counts[0][0] + counts[1][0]) / n,
      static_cast<double>(counts[0][1] + counts[1][1]) / n,
  };
  auto entropy = [](const double p[2]) {
    double h = 0.0;
    for (int i = 0; i < 2; ++i) {
      if (p[i] > 0.0) h -= p[i] * std::log(p[i]);
    }
    return h;
  };
  double hx = entropy(px);
  double hy = entropy(py);
  if (hx <= 0.0 || hy <= 0.0) return 0.0;
  double mi = 0.0;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      if (counts[x][y] == 0) continue;
      double pxy = static_cast<double>(counts[x][y]) / n;
      mi += pxy * std::log(pxy / (px[x] * py[y]));
    }
  }
  if (mi < 0.0) mi = 0.0;  // fp noise
  double nmi = mi / std::sqrt(hx * hy);
  return nmi > 1.0 ? 1.0 : nmi;
}

double NormalizedFitShare(const Clickstream& clickstream) {
  return clickstream.ComputeStats().at_most_one_alternative_share;
}

double IndependenceMeasure(const Clickstream& clickstream,
                           size_t max_alternatives_per_item) {
  // Group purchase sessions by purchased item.
  std::unordered_map<ItemId, std::vector<const Session*>> by_purchase;
  uint64_t total_purchases = 0;
  for (const Session& session : clickstream.sessions()) {
    if (!session.HasPurchase()) continue;
    by_purchase[session.purchase].push_back(&session);
    ++total_purchases;
  }
  if (total_purchases == 0) return 0.0;

  double weighted_sum = 0.0;
  for (const auto& [item, sessions] : by_purchase) {
    // Click frequency per alternative of this item.
    std::unordered_map<ItemId, uint64_t> click_count;
    for (const Session* s : sessions) {
      for (ItemId alt : s->Alternatives()) ++click_count[alt];
    }
    if (click_count.size() < 2) continue;  // no pairs -> contributes 0

    // Keep the most clicked alternatives, capped.
    std::vector<std::pair<ItemId, uint64_t>> top(click_count.begin(),
                                                 click_count.end());
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (top.size() > max_alternatives_per_item) {
      top.resize(max_alternatives_per_item);
    }

    // Pairwise NMI over the alternatives' click indicators, conditioned on
    // this item being purchased.
    double pair_sum = 0.0;
    size_t pair_count = 0;
    for (size_t i = 0; i < top.size(); ++i) {
      for (size_t j = i + 1; j < top.size(); ++j) {
        uint64_t counts[2][2] = {{0, 0}, {0, 0}};
        for (const Session* s : sessions) {
          std::vector<ItemId> alts = s->Alternatives();
          bool a = std::find(alts.begin(), alts.end(), top[i].first) !=
                   alts.end();
          bool b = std::find(alts.begin(), alts.end(), top[j].first) !=
                   alts.end();
          ++counts[a ? 1 : 0][b ? 1 : 0];
        }
        pair_sum += BinaryNormalizedMutualInformation(counts);
        ++pair_count;
      }
    }
    double item_avg = pair_count == 0 ? 0.0
                                      : pair_sum /
                                            static_cast<double>(pair_count);
    // Purchase-share weighting = node-weight weighting of the paper.
    weighted_sum += item_avg * static_cast<double>(sessions.size()) /
                    static_cast<double>(total_purchases);
  }
  return weighted_sum;
}

std::string VariantRecommendation::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "variant=%s normalized_fit=%.3f (%s) independence=%.3f (%s)",
                std::string(VariantName(variant)).c_str(), normalized_fit,
                normalized_fits ? "fits" : "does not fit", independence,
                independent_fits ? "fits" : "does not fit");
  return buf;
}

VariantRecommendation RecommendVariant(
    const Clickstream& clickstream, const VariantSelectionOptions& options) {
  VariantRecommendation rec;
  rec.normalized_fit = NormalizedFitShare(clickstream);
  rec.independence =
      IndependenceMeasure(clickstream, options.max_alternatives_per_item);
  rec.normalized_fits = rec.normalized_fit >= options.normalized_fit_threshold;
  rec.independent_fits = rec.independence < options.independence_threshold;
  // Normalized is the stricter, more specific model; prefer it when the
  // data genuinely has the "at most one alternative" shape.
  if (rec.normalized_fits) {
    rec.variant = Variant::kNormalized;
  } else {
    rec.variant = Variant::kIndependent;
  }
  return rec;
}

}  // namespace prefcover
