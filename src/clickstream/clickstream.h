// Clickstream dataset container and summary statistics (Table 2 fields).

#ifndef PREFCOVER_CLICKSTREAM_CLICKSTREAM_H_
#define PREFCOVER_CLICKSTREAM_CLICKSTREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clickstream/session.h"

namespace prefcover {

/// \brief Summary of a clickstream (the columns of the paper's Table 2,
/// plus diagnostics used for variant selection).
struct ClickstreamStats {
  size_t num_sessions = 0;
  size_t num_purchases = 0;     // sessions ending in a purchase
  size_t num_items = 0;         // distinct items seen (clicked or bought)
  size_t num_clicks = 0;        // total click events
  double mean_alternatives = 0.0;  // mean alternatives per purchase session

  /// Fraction of purchase sessions with at most one alternative clicked —
  /// the Normalized-variant fit measure (>= 0.9 recommends Normalized).
  double at_most_one_alternative_share = 0.0;

  std::string ToString() const;
};

/// \brief An in-memory clickstream: sessions plus the item dictionary.
class Clickstream {
 public:
  Clickstream() = default;

  /// Appends a session. Item ids must come from mutable_dictionary().
  void AddSession(Session session) {
    sessions_.push_back(std::move(session));
  }

  void Reserve(size_t num_sessions) { sessions_.reserve(num_sessions); }

  const std::vector<Session>& sessions() const { return sessions_; }
  const ItemDictionary& dictionary() const { return dictionary_; }
  ItemDictionary* mutable_dictionary() { return &dictionary_; }

  size_t NumSessions() const { return sessions_.size(); }
  size_t NumItems() const { return dictionary_.size(); }

  /// One-pass summary statistics.
  ClickstreamStats ComputeStats() const;

 private:
  std::vector<Session> sessions_;
  ItemDictionary dictionary_;
};

}  // namespace prefcover

#endif  // PREFCOVER_CLICKSTREAM_CLICKSTREAM_H_
