// Streaming preference-graph construction: one pass over a clickstream
// CSV of any size, without materializing the sessions in memory.
//
// The paper's private corpora are tens of millions of sessions; loading
// them as a Clickstream costs gigabytes. This builder consumes the event
// stream session-by-session, holding only the per-(purchase, alternative)
// fractional counts — the same sufficient statistics the in-memory
// construction uses — so its output is bit-identical to
// BuildPreferenceGraph on the same data (asserted in tests).

#ifndef PREFCOVER_CLICKSTREAM_STREAMING_CONSTRUCTION_H_
#define PREFCOVER_CLICKSTREAM_STREAMING_CONSTRUCTION_H_

#include <iosfwd>
#include <string>

#include "clickstream/graph_construction.h"
#include "clickstream/session.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace prefcover {

/// \brief Incremental construction state: feed sessions, then Finish().
///
/// Also usable directly by live systems that receive sessions one at a
/// time (e.g. from a message queue) rather than from a file.
class StreamingGraphBuilder {
 public:
  explicit StreamingGraphBuilder(
      const GraphConstructionOptions& options = GraphConstructionOptions());

  /// Item names are interned here; ids are dense in first-seen order.
  ItemId InternItem(const std::string& name);

  /// Consumes one session (moves from it). Sessions without a purchase
  /// only contribute their interned items.
  void AddSession(Session session);

  /// Observed totals so far.
  uint64_t sessions_seen() const { return sessions_seen_; }
  uint64_t purchases_seen() const { return purchases_seen_; }
  size_t items_seen() const { return dictionary_.size(); }

  /// Builds the preference graph from the accumulated statistics. The
  /// builder remains usable (more sessions may be added and Finish called
  /// again).
  Result<PreferenceGraph> Finish() const;

  const ItemDictionary& dictionary() const { return dictionary_; }

 private:
  GraphConstructionOptions options_;
  ItemDictionary dictionary_;
  std::vector<uint64_t> purchase_count_;
  std::unordered_map<uint64_t, double> pair_mass_;
  uint64_t sessions_seen_ = 0;
  uint64_t purchases_seen_ = 0;
  // Global-registry counters (clickstream.sessions / .purchases / .edges);
  // see OBSERVABILITY.md for the full metric list.
  obs::Counter* sessions_counter_;
  obs::Counter* purchases_counter_;
  obs::Counter* edges_counter_;
};

/// \brief One-pass construction from an event-CSV stream (same format as
/// clickstream_io.h: `session_id,event_type,item_id`, grouped by session).
///
/// Unlike ReadClickstreamCsv, a session id reappearing after other
/// sessions is treated as a NEW session rather than rejected — a streaming
/// pass cannot remember every past id without defeating its purpose.
Result<PreferenceGraph> BuildPreferenceGraphStreaming(
    std::istream* events,
    const GraphConstructionOptions& options = GraphConstructionOptions());

/// File-path convenience.
Result<PreferenceGraph> BuildPreferenceGraphStreamingFile(
    const std::string& path,
    const GraphConstructionOptions& options = GraphConstructionOptions());

}  // namespace prefcover

#endif  // PREFCOVER_CLICKSTREAM_STREAMING_CONSTRUCTION_H_
