#include "clickstream/graph_construction.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/graph_builder.h"

namespace prefcover {

Result<PreferenceGraph> BuildPreferenceGraph(
    const Clickstream& clickstream, const GraphConstructionOptions& options) {
  const size_t num_items = clickstream.NumItems();
  if (num_items == 0) {
    return Status::FailedPrecondition("clickstream has no items");
  }

  std::vector<uint64_t> purchase_count(num_items, 0);
  // Fractional click mass per (purchased, clicked) pair.
  std::unordered_map<uint64_t, double> pair_mass;
  uint64_t total_purchases = 0;

  for (const Session& session : clickstream.sessions()) {
    if (!session.HasPurchase()) continue;
    ItemId p = session.purchase;
    ++purchase_count[p];
    ++total_purchases;
    std::vector<std::pair<ItemId, double>> alts =
        session.AlternativesWithDwell();
    if (alts.empty()) continue;
    // Independent: each alternative counts fully. Normalized: a session
    // with t > 1 alternatives counts each as 1/t, so edge weights per node
    // sum to at most 1 across all sessions. The dwell correction (<= 1)
    // scales each click's contribution and therefore preserves the
    // Normalized bound.
    double mass = 1.0;
    if (options.variant == Variant::kNormalized && alts.size() > 1) {
      mass = 1.0 / static_cast<double>(alts.size());
    }
    for (const auto& [b, dwell] : alts) {
      double corrected = mass;
      if (options.dwell_saturation_seconds > 0.0 && dwell >= 0.0) {
        corrected *= std::min(1.0, dwell / options.dwell_saturation_seconds);
      }
      if (corrected <= 0.0) continue;
      pair_mass[(static_cast<uint64_t>(p) << 32) | b] += corrected;
    }
  }
  if (total_purchases == 0) {
    return Status::FailedPrecondition(
        "clickstream has no purchase sessions; cannot infer preferences");
  }

  GraphBuilder builder;
  builder.Reserve(num_items, pair_mass.size());
  for (ItemId item = 0; item < num_items; ++item) {
    builder.AddNode(static_cast<double>(purchase_count[item]) /
                        static_cast<double>(total_purchases),
                    clickstream.dictionary().Name(item));
  }
  for (const auto& [key, mass] : pair_mass) {
    ItemId from = static_cast<ItemId>(key >> 32);
    ItemId to = static_cast<ItemId>(key & 0xFFFFFFFFu);
    if (options.min_purchases_for_edges > 0 &&
        purchase_count[from] < options.min_purchases_for_edges) {
      continue;
    }
    double weight = mass / static_cast<double>(purchase_count[from]);
    // Fractional accumulation can land a hair above 1 (e.g. every session
    // clicking the same single alternative); clamp the fp excess.
    if (weight > 1.0) weight = 1.0;
    if (weight < options.min_edge_weight) continue;
    PREFCOVER_RETURN_NOT_OK(builder.AddEdge(from, to, weight));
  }

  GraphValidationOptions validation;
  validation.require_normalized_out_weights =
      options.variant == Variant::kNormalized;
  // Edge dropping can only lower out-sums, so Normalized admissibility is
  // preserved by construction.
  return builder.Finalize(validation);
}

}  // namespace prefcover
