// The Data Adaptation Engine: preference-graph construction from
// clickstream data (paper Section 5.2 / Figure 3).
//
// Rules, following the paper exactly:
//   - node weights: an item's share of all purchases;
//   - an edge A -> B exists iff some session purchased A and clicked B;
//     its weight is the fraction of A-purchase sessions in which B was
//     clicked (clicks are "intention to buy as an alternative");
//   - for the Normalized variant, a session with t > 1 clicked
//     alternatives counts each as a 1/t-fraction of a click, so per-node
//     outgoing weights sum to at most 1;
//   - sessions without a purchase carry no intent and are skipped.

#ifndef PREFCOVER_CLICKSTREAM_GRAPH_CONSTRUCTION_H_
#define PREFCOVER_CLICKSTREAM_GRAPH_CONSTRUCTION_H_

#include "clickstream/clickstream.h"
#include "core/variant.h"
#include "graph/preference_graph.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace prefcover {

/// \brief Tuning knobs for graph construction.
struct GraphConstructionOptions {
  /// Which variant's counting semantics to apply (Normalized uses the
  /// 1/t fractional-click rule).
  Variant variant = Variant::kIndependent;

  /// Drop edges whose weight comes out below this floor. Rarely-clicked
  /// pairings are noise (the paper: "rarely clicked items ... have
  /// negligible influence"); 0 keeps everything.
  double min_edge_weight = 0.0;

  /// Drop edges out of items with fewer purchases than this (weight
  /// estimates from a handful of sessions are unreliable). 0 keeps all.
  size_t min_purchases_for_edges = 0;

  /// Dwell-time correction (paper Section 5.2's suggested refinement:
  /// clicks overestimate purchase intent; "the amount of time spent
  /// viewing each item" separates consideration from idle browsing).
  /// When > 0 and a session carries dwell data, each click contributes
  /// min(1, dwell / dwell_saturation_seconds) instead of a full count.
  /// Sessions without dwell data always contribute full clicks.
  double dwell_saturation_seconds = 0.0;

  /// Cooperative cancellation for the streaming construction: checked at
  /// session-flush boundaries; a tripped token makes
  /// BuildPreferenceGraphStreaming return Status::Cancelled (unlike a
  /// solve, a half-built graph has no useful prefix to salvage). The
  /// in-memory BuildPreferenceGraph ignores it. nullptr disables.
  const CancelToken* cancel = nullptr;
};

/// \brief Builds the preference graph. Node ids equal the clickstream's
/// ItemIds; every dictionary item becomes a node (possibly weight 0 when it
/// was clicked but never purchased); labels carry the dictionary names.
///
/// Fails with FailedPrecondition when the clickstream contains no
/// purchases.
Result<PreferenceGraph> BuildPreferenceGraph(
    const Clickstream& clickstream,
    const GraphConstructionOptions& options = GraphConstructionOptions());

}  // namespace prefcover

#endif  // PREFCOVER_CLICKSTREAM_GRAPH_CONSTRUCTION_H_
