#include "clickstream/streaming_construction.h"

#include <algorithm>
#include <fstream>
#include <istream>

#include "graph/graph_builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace prefcover {

StreamingGraphBuilder::StreamingGraphBuilder(
    const GraphConstructionOptions& options)
    : options_(options),
      sessions_counter_(obs::MetricsRegistry::Global().GetCounter(
          "clickstream.sessions")),
      purchases_counter_(obs::MetricsRegistry::Global().GetCounter(
          "clickstream.purchases")),
      edges_counter_(obs::MetricsRegistry::Global().GetCounter(
          "clickstream.edges")) {}

ItemId StreamingGraphBuilder::InternItem(const std::string& name) {
  ItemId id = dictionary_.Intern(name);
  if (id >= purchase_count_.size()) purchase_count_.resize(id + 1, 0);
  return id;
}

void StreamingGraphBuilder::AddSession(Session session) {
  ++sessions_seen_;
  sessions_counter_->Increment();
  if (!session.HasPurchase()) return;
  purchases_counter_->Increment();
  ItemId p = session.purchase;
  PREFCOVER_CHECK_MSG(p < purchase_count_.size(),
                      "purchase id not interned through this builder");
  ++purchase_count_[p];
  ++purchases_seen_;
  std::vector<std::pair<ItemId, double>> alts =
      session.AlternativesWithDwell();
  if (alts.empty()) return;
  double mass = 1.0;
  if (options_.variant == Variant::kNormalized && alts.size() > 1) {
    mass = 1.0 / static_cast<double>(alts.size());
  }
  for (const auto& [b, dwell] : alts) {
    PREFCOVER_CHECK(b < purchase_count_.size());
    double corrected = mass;
    if (options_.dwell_saturation_seconds > 0.0 && dwell >= 0.0) {
      corrected *=
          std::min(1.0, dwell / options_.dwell_saturation_seconds);
    }
    if (corrected <= 0.0) continue;
    pair_mass_[(static_cast<uint64_t>(p) << 32) | b] += corrected;
  }
}

Result<PreferenceGraph> StreamingGraphBuilder::Finish() const {
  obs::Span finish_span("clickstream.finish", "clickstream");
  finish_span.Arg("items", static_cast<uint64_t>(dictionary_.size()));
  finish_span.Arg("sessions", sessions_seen_);
  const size_t num_items = dictionary_.size();
  if (num_items == 0) {
    return Status::FailedPrecondition("no items observed");
  }
  if (purchases_seen_ == 0) {
    return Status::FailedPrecondition(
        "no purchase sessions observed; cannot infer preferences");
  }
  GraphBuilder builder;
  builder.Reserve(num_items, pair_mass_.size());
  for (ItemId item = 0; item < num_items; ++item) {
    builder.AddNode(static_cast<double>(purchase_count_[item]) /
                        static_cast<double>(purchases_seen_),
                    dictionary_.Name(item));
  }
  uint64_t edges_emitted = 0;
  for (const auto& [key, mass] : pair_mass_) {
    ItemId from = static_cast<ItemId>(key >> 32);
    ItemId to = static_cast<ItemId>(key & 0xFFFFFFFFu);
    if (options_.min_purchases_for_edges > 0 &&
        purchase_count_[from] < options_.min_purchases_for_edges) {
      continue;
    }
    double weight =
        mass / static_cast<double>(purchase_count_[from]);
    if (weight > 1.0) weight = 1.0;
    if (weight < options_.min_edge_weight) continue;
    PREFCOVER_RETURN_NOT_OK(builder.AddEdge(from, to, weight));
    ++edges_emitted;
  }
  edges_counter_->Increment(edges_emitted);
  finish_span.Arg("edges", edges_emitted);
  GraphValidationOptions validation;
  validation.require_normalized_out_weights =
      options_.variant == Variant::kNormalized;
  return builder.Finalize(validation);
}

Result<PreferenceGraph> BuildPreferenceGraphStreaming(
    std::istream* events, const GraphConstructionOptions& options) {
  obs::Span build_span("clickstream.build", "clickstream");
  StreamingGraphBuilder builder(options);
  CsvReader reader(events);
  std::vector<std::string> fields;
  bool header = true;
  bool has_dwell_column = false;
  std::string current_sid;
  bool have_session = false;
  uint64_t rows = 0;
  Session current;

  auto flush = [&builder, &current]() {
    obs::Span flush_span("clickstream.flush", "clickstream");
    flush_span.Arg("clicks", static_cast<uint64_t>(current.clicks.size()));
    builder.AddSession(std::move(current));
    current = Session();
  };

  while (reader.Next(&fields)) {
    if (header) {
      header = false;
      if ((fields.size() != 3 && fields.size() != 4) ||
          fields[0] != "session_id") {
        return Status::InvalidArgument(
            "clickstream CSV must start with session_id,event_type,item_id"
            "[,dwell_seconds]");
      }
      has_dwell_column = fields.size() == 4;
      continue;
    }
    ++rows;
    if (fields.size() != (has_dwell_column ? 4u : 3u)) {
      return Status::InvalidArgument(
          "clickstream record " + std::to_string(reader.record_number()) +
          " has the wrong field count");
    }
    const std::string& sid = fields[0];
    if (!have_session || sid != current_sid) {
      if (have_session) {
        flush();
        // Session boundaries are the construction's round boundaries:
        // cheap (one flag read per session, not per row) and always at a
        // consistent point — no half-consumed session ever reaches the
        // builder.
        if (options.cancel != nullptr && options.cancel->IsCancelled()) {
          return Status::Cancelled(
              "graph construction cancelled after " +
              std::to_string(builder.sessions_seen()) + " sessions");
        }
      }
      current_sid = sid;
      have_session = true;
    }
    ItemId item = builder.InternItem(fields[2]);
    if (fields[1] == "click") {
      current.clicks.push_back(item);
      if (has_dwell_column) {
        double dwell = -1.0;
        if (!fields[3].empty()) {
          auto parsed = ParseDouble(fields[3]);
          if (!parsed.ok()) {
            return Status::InvalidArgument(
                "bad dwell value in record " +
                std::to_string(reader.record_number()));
          }
          dwell = *parsed;
        }
        current.dwell_seconds.push_back(dwell);
      }
    } else if (fields[1] == "purchase") {
      if (current.HasPurchase()) {
        return Status::InvalidArgument("session '" + sid +
                                       "' has multiple purchases");
      }
      current.purchase = item;
    } else {
      return Status::InvalidArgument("unknown event type '" + fields[1] +
                                     "'");
    }
  }
  PREFCOVER_RETURN_NOT_OK(reader.status());
  if (have_session) flush();
  obs::MetricsRegistry::Global().GetCounter("clickstream.rows")
      ->Increment(rows);
  build_span.Arg("rows", rows);
  build_span.Arg("sessions", builder.sessions_seen());
  return builder.Finish();
}

Result<PreferenceGraph> BuildPreferenceGraphStreamingFile(
    const std::string& path, const GraphConstructionOptions& options) {
  PREFCOVER_FAILPOINT_STATUS("clickstream.read");
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return BuildPreferenceGraphStreaming(&in, options);
}

}  // namespace prefcover
