#include "clickstream/clickstream.h"

#include <cstdio>

namespace prefcover {

ClickstreamStats Clickstream::ComputeStats() const {
  ClickstreamStats s;
  s.num_sessions = sessions_.size();
  s.num_items = dictionary_.size();
  size_t alternative_total = 0;
  size_t at_most_one = 0;
  for (const Session& session : sessions_) {
    s.num_clicks += session.clicks.size();
    if (!session.HasPurchase()) continue;
    ++s.num_purchases;
    size_t alts = session.Alternatives().size();
    alternative_total += alts;
    if (alts <= 1) ++at_most_one;
  }
  if (s.num_purchases > 0) {
    s.mean_alternatives = static_cast<double>(alternative_total) /
                          static_cast<double>(s.num_purchases);
    s.at_most_one_alternative_share =
        static_cast<double>(at_most_one) /
        static_cast<double>(s.num_purchases);
  }
  return s;
}

std::string ClickstreamStats::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "sessions=%zu purchases=%zu items=%zu clicks=%zu\n"
                "mean_alternatives=%.3f at_most_one_alternative=%.1f%%",
                num_sessions, num_purchases, num_items, num_clicks,
                mean_alternatives, at_most_one_alternative_share * 100.0);
  return buf;
}

}  // namespace prefcover
