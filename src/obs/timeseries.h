// Live metrics time series: a background sampler that snapshots a
// MetricsRegistry on a fixed interval into a bounded ring, plus the
// derivations that turn cumulative snapshots into watchable numbers —
// counter rates (true qps) and histogram quantile estimates
// (p50/p95/p99 by linear interpolation inside the owning bucket).
//
// The PR 3 registry answers "what happened since the process started";
// this layer answers "what is happening right now": `prefcover serve
// --stats_every_s`, `serve_loadgen --metrics_poll_ms` and the soak
// tooling all watch the same series. The ring is bounded (oldest samples
// overwritten), so a sampler left running for days holds a sliding
// window, never unbounded memory.
//
// Like the rest of obs/ this sits below util: no dependencies beyond
// <thread>, and file export writes hand-rolled JSON/CSV the way the
// trace exporter does.

#ifndef PREFCOVER_OBS_TIMESERIES_H_
#define PREFCOVER_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace prefcover {
namespace obs {

/// \brief One timestamped registry snapshot.
struct MetricsSample {
  /// Monotonic stamp (steady clock), the basis for rate derivation.
  int64_t steady_ns = 0;
  /// Wall-clock milliseconds since the Unix epoch, for export/plots.
  int64_t unix_ms = 0;
  MetricsSnapshot snapshot;
};

struct TimeseriesOptions {
  /// Seconds between samples. Values <= 0 are clamped to 0.01.
  double interval_s = 1.0;
  /// Ring capacity in samples; the oldest sample is dropped beyond it.
  /// 0 is clamped to 1.
  size_t capacity = 600;
  /// Optional observer invoked from the sampler thread after every
  /// capture, with the new sample and the previous one (nullptr for the
  /// first). Drives `--stats_every_s`-style periodic reporting without a
  /// second timer thread.
  std::function<void(const MetricsSample& current,
                     const MetricsSample* previous)>
      on_sample;
};

/// \brief Background sampler over one registry. Start() spawns the
/// thread (taking an immediate first sample); Stop() takes a final
/// sample and joins. Safe to destroy while running.
class MetricsSampler {
 public:
  MetricsSampler(const MetricsRegistry* registry,
                 TimeseriesOptions options = {});
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Spawns the sampling thread. No-op when already running.
  void Start();

  /// Takes a final sample, stops the thread and joins it. No-op when not
  /// running.
  void Stop();

  /// Captures one sample synchronously (also usable without Start(), for
  /// tests and one-shot dumps).
  void SampleNow();

  bool running() const;

  /// Copy of the ring, oldest first.
  std::vector<MetricsSample> Series() const;

  size_t SampleCount() const;

  const TimeseriesOptions& options() const { return options_; }

 private:
  void Loop();
  void CaptureLocked(std::unique_lock<std::mutex>* lock);

  const MetricsRegistry* registry_;
  TimeseriesOptions options_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::deque<MetricsSample> ring_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
};

/// \brief Per-second rate of `counter` between two samples: (b - a) /
/// dt. Returns 0 when the counter is absent from either sample, the
/// interval is non-positive, or the counter went backwards (a registry
/// swap, not a real rate).
double CounterRatePerSecond(const MetricsSample& a, const MetricsSample& b,
                            std::string_view counter);

/// \brief Quantile estimate from cumulative fixed-bucket counts, the
/// Prometheus histogram_quantile rule: find the bucket holding rank
/// q*total, then interpolate linearly between its bounds.
///
/// Edge cases (all deterministic, pinned by tests):
///   - empty histogram -> 0.0;
///   - quantile lands in the overflow (+inf) bucket -> the last finite
///     bound (there is nothing to interpolate toward);
///   - histogram with no finite bounds at all -> 0.0;
///   - the first bucket interpolates from max(0, its width's origin), so
///     a single sample at q=1 returns exactly its bucket's upper bound.
/// `q` is clamped to [0, 1].
double HistogramQuantile(const MetricsSnapshot::HistogramValue& histogram,
                         double q);

/// \brief Quantile of the *delta* between two cumulative readings of the
/// same histogram (e.g. p99 over the last sampling interval). The bounds
/// must match; mismatched shapes return 0.0. Negative per-bucket deltas
/// (registry swap) clamp to 0.
double HistogramDeltaQuantile(
    const MetricsSnapshot::HistogramValue& earlier,
    const MetricsSnapshot::HistogramValue& later, double q);

/// \brief Serializes a series as JSON:
/// `{"schema_version":1,"samples":[{"unix_ms":...,"steady_ns":...,
///   "counters":{...},"gauges":{...},
///   "histograms":{name:{"count":N,"sum":S,"p50":..,"p95":..,"p99":..}},
///   "rates":{counter: per_second}}]}`.
/// `rates` is derived against the previous sample (empty object for the
/// first). Deterministic for a fixed series.
std::string TimeseriesToJson(const std::vector<MetricsSample>& series);

/// \brief Serializes a series as CSV: header row, then one row per
/// sample. Columns: unix_ms, steady_ns, every counter and gauge name
/// (sorted union over the series), and count/sum/p50/p95/p99 per
/// histogram. Cells absent from a sample are empty.
std::string TimeseriesToCsv(const std::vector<MetricsSample>& series);

/// \brief Writes `contents` to `path` (plain trunc+write, the trace
/// exporter's idiom — obs sits below util and cannot use
/// WriteFileAtomic). Returns false and fills `error` on failure.
bool WriteTimeseriesFile(const std::string& path,
                         const std::string& contents, std::string* error);

}  // namespace obs
}  // namespace prefcover

#endif  // PREFCOVER_OBS_TIMESERIES_H_
