#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

namespace prefcover {
namespace obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t UnixNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Shortest %.17g-style rendering; integral values print without a
// decimal point so counter columns stay readable.
std::string FormatNumber(double value) {
  if (std::isnan(value)) return "nan";
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Metric names are dotted lowercase identifiers; escaping only needs to
// cover the JSON-special bytes to stay robust against future names.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const MetricsSnapshot::HistogramValue* FindHistogram(
    const MetricsSnapshot& snapshot, std::string_view name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace

MetricsSampler::MetricsSampler(const MetricsRegistry* registry,
                               TimeseriesOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (!(options_.interval_s > 0.0)) options_.interval_s = 0.01;
  if (options_.capacity == 0) options_.capacity = 1;
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  CaptureLocked(&lock);
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  // One final sample so the series always covers the full run, even when
  // the interval never elapsed.
  CaptureLocked(&lock);
  running_ = false;
}

void MetricsSampler::SampleNow() {
  std::unique_lock<std::mutex> lock(mu_);
  CaptureLocked(&lock);
}

bool MetricsSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::vector<MetricsSample> MetricsSampler::Series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<MetricsSample>(ring_.begin(), ring_.end());
}

size_t MetricsSampler::SampleCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void MetricsSampler::Loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.interval_s));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, interval,
                       [this] { return stop_requested_; })) {
      break;
    }
    CaptureLocked(&lock);
  }
}

void MetricsSampler::CaptureLocked(std::unique_lock<std::mutex>* lock) {
  MetricsSample sample;
  sample.steady_ns = SteadyNowNs();
  sample.unix_ms = UnixNowMs();
  // Snapshot() takes the registry lock; ours is independent, so holding
  // both is cycle-free (no registry path ever takes the sampler lock).
  sample.snapshot = registry_->Snapshot();
  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.capacity) ring_.pop_front();
  if (options_.on_sample) {
    const MetricsSample& current = ring_.back();
    const MetricsSample* previous =
        ring_.size() >= 2 ? &ring_[ring_.size() - 2] : nullptr;
    // Observers only read; keep the lock so `previous` cannot be evicted
    // mid-callback. Observers must not call back into the sampler.
    (void)lock;
    options_.on_sample(current, previous);
  }
}

double CounterRatePerSecond(const MetricsSample& a, const MetricsSample& b,
                            std::string_view counter) {
  const double dt =
      static_cast<double>(b.steady_ns - a.steady_ns) / 1e9;
  if (!(dt > 0.0)) return 0.0;
  const uint64_t earlier = a.snapshot.CounterOr(counter);
  const uint64_t later = b.snapshot.CounterOr(counter);
  if (later < earlier) return 0.0;
  return static_cast<double>(later - earlier) / dt;
}

namespace {

// Shared quantile core over explicit per-bucket counts (cumulative rule
// applied here), so the snapshot and delta variants agree exactly.
double QuantileFromCounts(const std::vector<double>& bounds,
                          const std::vector<uint64_t>& counts, double q) {
  if (counts.size() != bounds.size() + 1) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const uint64_t prev_cumulative = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank || counts[b] == 0) {
      continue;
    }
    if (b == bounds.size()) {
      // Overflow bucket: no finite upper bound to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double hi = bounds[b];
    const double lo = b == 0 ? std::min(0.0, hi) : bounds[b - 1];
    const double in_bucket = rank - static_cast<double>(prev_cumulative);
    return lo + (hi - lo) * (in_bucket / static_cast<double>(counts[b]));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

double HistogramQuantile(const MetricsSnapshot::HistogramValue& histogram,
                         double q) {
  return QuantileFromCounts(histogram.bounds, histogram.counts, q);
}

double HistogramDeltaQuantile(
    const MetricsSnapshot::HistogramValue& earlier,
    const MetricsSnapshot::HistogramValue& later, double q) {
  if (earlier.bounds != later.bounds ||
      earlier.counts.size() != later.counts.size()) {
    return 0.0;
  }
  std::vector<uint64_t> delta(later.counts.size(), 0);
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = later.counts[i] >= earlier.counts[i]
                   ? later.counts[i] - earlier.counts[i]
                   : 0;
  }
  return QuantileFromCounts(later.bounds, delta, q);
}

std::string TimeseriesToJson(const std::vector<MetricsSample>& series) {
  std::string out = "{\n  \"schema_version\": 1,\n  \"samples\": [";
  for (size_t i = 0; i < series.size(); ++i) {
    const MetricsSample& sample = series[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"unix_ms\": " + FormatNumber(
               static_cast<double>(sample.unix_ms));
    out += ", \"steady_ns\": " +
           FormatNumber(static_cast<double>(sample.steady_ns));
    out += ", \"counters\": {";
    for (size_t c = 0; c < sample.snapshot.counters.size(); ++c) {
      const auto& counter = sample.snapshot.counters[c];
      out += c == 0 ? "" : ", ";
      out += '"';
      out += JsonEscape(counter.name);
      out += "\": " + FormatNumber(static_cast<double>(counter.value));
    }
    out += "}, \"gauges\": {";
    for (size_t g = 0; g < sample.snapshot.gauges.size(); ++g) {
      const auto& gauge = sample.snapshot.gauges[g];
      out += g == 0 ? "" : ", ";
      out += '"';
      out += JsonEscape(gauge.name);
      out += "\": " + FormatNumber(static_cast<double>(gauge.value));
    }
    out += "}, \"histograms\": {";
    for (size_t h = 0; h < sample.snapshot.histograms.size(); ++h) {
      const auto& histogram = sample.snapshot.histograms[h];
      out += h == 0 ? "" : ", ";
      out += '"';
      out += JsonEscape(histogram.name);
      out += "\": {\"count\": " +
             FormatNumber(static_cast<double>(histogram.total_count)) +
             ", \"sum\": " + FormatNumber(histogram.sum) +
             ", \"p50\": " + FormatNumber(HistogramQuantile(histogram, 0.50)) +
             ", \"p95\": " + FormatNumber(HistogramQuantile(histogram, 0.95)) +
             ", \"p99\": " + FormatNumber(HistogramQuantile(histogram, 0.99)) +
             "}";
    }
    out += "}, \"rates\": {";
    if (i > 0) {
      size_t emitted = 0;
      for (const auto& counter : series[i].snapshot.counters) {
        out += emitted++ == 0 ? "" : ", ";
        out += '"';
        out += JsonEscape(counter.name);
        out += "\": " + FormatNumber(
                            CounterRatePerSecond(series[i - 1], series[i],
                                                 counter.name));
      }
    }
    out += "}}";
  }
  out += series.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string TimeseriesToCsv(const std::vector<MetricsSample>& series) {
  // Union of names over the whole series, sorted, so every row has the
  // same columns even when instruments appear mid-run.
  std::set<std::string> counter_names, gauge_names, histogram_names;
  for (const MetricsSample& sample : series) {
    for (const auto& c : sample.snapshot.counters) {
      counter_names.insert(c.name);
    }
    for (const auto& g : sample.snapshot.gauges) gauge_names.insert(g.name);
    for (const auto& h : sample.snapshot.histograms) {
      histogram_names.insert(h.name);
    }
  }
  std::string out = "unix_ms,steady_ns";
  for (const std::string& name : counter_names) out += "," + name;
  for (const std::string& name : gauge_names) out += "," + name;
  for (const std::string& name : histogram_names) {
    for (const char* suffix : {":count", ":sum", ":p50", ":p95", ":p99"}) {
      out += "," + name + suffix;
    }
  }
  out += "\n";
  for (const MetricsSample& sample : series) {
    out += FormatNumber(static_cast<double>(sample.unix_ms)) + "," +
           FormatNumber(static_cast<double>(sample.steady_ns));
    for (const std::string& name : counter_names) {
      out += ",";
      for (const auto& c : sample.snapshot.counters) {
        if (c.name == name) {
          out += FormatNumber(static_cast<double>(c.value));
          break;
        }
      }
    }
    for (const std::string& name : gauge_names) {
      out += ",";
      for (const auto& g : sample.snapshot.gauges) {
        if (g.name == name) {
          out += FormatNumber(static_cast<double>(g.value));
          break;
        }
      }
    }
    for (const std::string& name : histogram_names) {
      const auto* h = FindHistogram(sample.snapshot, name);
      if (h == nullptr) {
        out += ",,,,,";
        continue;
      }
      out += ',';
      out += FormatNumber(static_cast<double>(h->total_count));
      out += ',';
      out += FormatNumber(h->sum);
      out += ',';
      out += FormatNumber(HistogramQuantile(*h, 0.50));
      out += ',';
      out += FormatNumber(HistogramQuantile(*h, 0.95));
      out += ',';
      out += FormatNumber(HistogramQuantile(*h, 0.99));
    }
    out += "\n";
  }
  return out;
}

bool WriteTimeseriesFile(const std::string& path,
                         const std::string& contents, std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << contents;
  out.flush();
  if (!out.good()) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace prefcover
