#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/metrics.h"

namespace prefcover {
namespace obs {

std::atomic<bool> Tracing::enabled_{false};

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One thread's event storage. Grows to `capacity` then wraps; `head` is
// the next write position once full. The owning thread writes; Flush (any
// thread) drains — both under `mu`, which is uncontended in steady state.
struct ThreadRing {
  std::mutex mu;
  std::vector<TraceEvent> events;
  size_t capacity = 0;
  size_t head = 0;  // next overwrite position, valid once full
  uint32_t tid = 0;
  uint64_t dropped = 0;
};

struct TracingState {
  std::mutex mu;  // guards rings list, session fields, Start/Stop/Flush
  std::vector<std::shared_ptr<ThreadRing>> rings;
  size_t ring_capacity = TracingOptions().ring_capacity;
  std::atomic<uint64_t> epoch_ns{0};
  std::atomic<uint64_t> dropped_total{0};
  Counter* dropped_counter = nullptr;
};

TracingState& State() {
  static TracingState* state = new TracingState();
  return *state;
}

ThreadRing& LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    r->tid = CurrentThreadId();
    TracingState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    r->capacity = state.ring_capacity;
    state.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void PushEvent(const TraceEvent& event) {
  TracingState& state = State();
  ThreadRing& ring = LocalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.events.size() < ring.capacity) {
    ring.events.push_back(event);
    return;
  }
  if (ring.capacity == 0) return;
  // Full: overwrite the oldest event.
  ring.events[ring.head] = event;
  ring.head = (ring.head + 1) % ring.capacity;
  ++ring.dropped;
  state.dropped_total.fetch_add(1, std::memory_order_relaxed);
  Counter* dropped = state.dropped_counter;
  if (dropped != nullptr) dropped->Increment();
}

}  // namespace

bool Tracing::Start(const TracingOptions& options) {
#if PREFCOVER_TRACING_ENABLED
  TracingState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.ring_capacity = options.ring_capacity;
  if (state.dropped_counter == nullptr) {
    state.dropped_counter =
        MetricsRegistry::Global().GetCounter("trace.dropped_events");
  }
  for (const std::shared_ptr<ThreadRing>& ring : state.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->head = 0;
    ring->dropped = 0;
    ring->capacity = options.ring_capacity;
  }
  state.dropped_total.store(0, std::memory_order_relaxed);
  state.epoch_ns.store(SteadyNowNanos(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
  return true;
#else
  (void)options;
  return false;
#endif
}

void Tracing::Stop() { enabled_.store(false, std::memory_order_release); }

uint64_t Tracing::NowNanos() {
  return SteadyNowNanos() -
         State().epoch_ns.load(std::memory_order_relaxed);
}

uint64_t Tracing::DroppedEvents() {
  return State().dropped_total.load(std::memory_order_relaxed);
}

void Tracing::RecordComplete(const char* name, const char* category,
                             uint64_t start_ns, uint64_t duration_ns,
                             const char* args_body) {
#if PREFCOVER_TRACING_ENABLED
  TraceEvent event;
  event.name = name;
  event.category = category == nullptr ? "prefcover" : category;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.tid = CurrentThreadId();
  if (args_body != nullptr && args_body[0] != '\0') {
    size_t len = std::strlen(args_body);
    if (len > TraceEvent::kArgsCapacity - 1) {
      len = TraceEvent::kArgsCapacity - 1;
    }
    std::memcpy(event.args, args_body, len);
    event.args_len = static_cast<uint16_t>(len);
  }
  event.args[event.args_len] = '\0';
  PushEvent(event);
#else
  (void)name;
  (void)category;
  (void)start_ns;
  (void)duration_ns;
  (void)args_body;
#endif
}

size_t Tracing::Flush(TraceSink* sink) {
  TracingState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<TraceEvent> all;
  for (const std::shared_ptr<ThreadRing>& ring : state.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    const size_t count = ring->events.size();
    all.reserve(all.size() + count);
    // Oldest first: once the ring wrapped, `head` is the oldest entry.
    const size_t start = count == ring->capacity ? ring->head : 0;
    for (size_t i = 0; i < count; ++i) {
      all.push_back(ring->events[(start + i) % count]);
    }
    ring->events.clear();
    ring->head = 0;
  }
  // Viewer- and validator-friendly order: per-thread, by start time;
  // parents (longer, equal-start) before children so containment reads
  // top-down.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.duration_ns > b.duration_ns;
                   });
  if (sink != nullptr) {
    sink->Begin();
    for (const TraceEvent& event : all) sink->Consume(event);
    sink->End();
  }
  return all.size();
}

ChromeTraceSink::ChromeTraceSink(std::ostream* out) : out_(out) {}

void ChromeTraceSink::Begin() {
  (*out_) << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  first_ = true;
}

void ChromeTraceSink::Consume(const TraceEvent& event) {
  char line[512];
  const double ts_us = static_cast<double>(event.start_ns) / 1e3;
  const double dur_us = static_cast<double>(event.duration_ns) / 1e3;
  int len = std::snprintf(
      line, sizeof(line),
      "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
      "\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu32,
      first_ ? "" : ",", event.name, event.category, ts_us, dur_us,
      event.tid);
  (*out_) << std::string_view(line, static_cast<size_t>(len));
  if (event.args_len > 0) {
    (*out_) << ",\"args\":{"
            << std::string_view(event.args, event.args_len) << "}";
  }
  (*out_) << "}";
  first_ = false;
}

void ChromeTraceSink::End() { (*out_) << "\n]}\n"; }

TraceArgs& TraceArgs::Add(const char* key, uint64_t value) {
  AppendPrefix(key);
  int n = std::snprintf(buffer_ + len_, sizeof(buffer_) - len_,
                        "%" PRIu64, value);
  if (n > 0) len_ = std::min(len_ + static_cast<size_t>(n),
                             sizeof(buffer_) - 1);
  return *this;
}

TraceArgs& TraceArgs::Add(const char* key, int64_t value) {
  AppendPrefix(key);
  int n = std::snprintf(buffer_ + len_, sizeof(buffer_) - len_,
                        "%" PRId64, value);
  if (n > 0) len_ = std::min(len_ + static_cast<size_t>(n),
                             sizeof(buffer_) - 1);
  return *this;
}

TraceArgs& TraceArgs::Add(const char* key, double value) {
  AppendPrefix(key);
  int n = std::snprintf(buffer_ + len_, sizeof(buffer_) - len_, "%.6g",
                        value);
  if (n > 0) len_ = std::min(len_ + static_cast<size_t>(n),
                             sizeof(buffer_) - 1);
  return *this;
}

TraceArgs& TraceArgs::Add(const char* key, const char* value) {
  AppendPrefix(key);
  int n = std::snprintf(buffer_ + len_, sizeof(buffer_) - len_, "\"%s\"",
                        value);
  if (n > 0) len_ = std::min(len_ + static_cast<size_t>(n),
                             sizeof(buffer_) - 1);
  return *this;
}

void TraceArgs::AppendPrefix(const char* key) {
  int n = std::snprintf(buffer_ + len_, sizeof(buffer_) - len_,
                        "%s\"%s\":", len_ == 0 ? "" : ",", key);
  if (n > 0) len_ = std::min(len_ + static_cast<size_t>(n),
                             sizeof(buffer_) - 1);
}

bool WriteChromeTraceFile(const std::string& path, std::string* error) {
  Tracing::Stop();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open for writing: " + path;
    return false;
  }
  ChromeTraceSink sink(&out);
  Tracing::Flush(&sink);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "failed writing: " + path;
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace prefcover
