// Process-wide metrics: named counters, gauges and fixed-bucket
// histograms with sharded per-thread cells.
//
// Design goals, in order:
//   1. Hot-path increments must be branch-cheap and contention-free: each
//      instrument keeps an array of cache-line-padded atomic cells and a
//      thread picks its cell by a stable per-thread shard index, so
//      concurrent increments from solver / thread-pool workers never
//      bounce a shared cache line.
//   2. Reads are rare and may be slow: Snapshot() sums the shards under
//      the registry lock and returns a name-sorted, self-contained value.
//   3. No dependencies: obs sits below util so the thread pool and the
//      logger can use it without a cycle.
//
// Instruments are created through a MetricsRegistry (registration takes a
// lock; keep the returned handle) and live as long as the registry.
// `MetricsRegistry::Global()` is the process-wide instance every subsystem
// shares; run-scoped registries (e.g. one greedy execution) can be stack
// constructed for isolated, deterministic per-run readings.

#ifndef PREFCOVER_OBS_METRICS_H_
#define PREFCOVER_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace prefcover {
namespace obs {

/// Number of per-thread cells each instrument shards over. Threads map to
/// cells by `CurrentThreadId() % kMetricShards`; collisions only cost an
/// occasional shared cache line, never correctness.
inline constexpr size_t kMetricShards = 16;

/// \brief Stable, dense id of the calling thread (0 for the first thread
/// that asks, 1 for the next, ...). Shared by the tracing layer and the
/// logger so a "tid" means the same thread everywhere in the output.
uint32_t CurrentThreadId();

namespace internal {

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// \brief Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    cells_[CurrentThreadId() % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over all shards. Monotone between calls, but not a consistent
  /// cut with other instruments.
  uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  internal::ShardCell cells_[kMetricShards];
};

/// \brief Last-writer-wins / up-down instrument (e.g. queue depth).
/// Signed; Add(-1) balances Add(1).
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-boundary histogram. A sample lands in the first bucket
/// whose upper bound is >= the sample; samples above the last bound land
/// in the implicit overflow bucket. Counts are sharded like Counter;
/// `sum` accumulates in nanos-as-integers when used via RecordSeconds, or
/// raw units via Record.
class Histogram {
 public:
  /// Records `value` (same unit as the bucket bounds).
  void Record(double value);

  /// Upper bucket bounds, ascending, as given at creation.
  const std::vector<double>& bounds() const { return bounds_; }

  /// Aggregated per-bucket counts (bounds().size() + 1 entries; the last
  /// is the overflow bucket).
  std::vector<uint64_t> Counts() const;

  uint64_t TotalCount() const;
  double Sum() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  // cells_[shard * stride + bucket]; stride = bounds_.size() + 1.
  std::vector<internal::ShardCell> cells_;
  internal::ShardCell count_[kMetricShards];
  std::atomic<double> sum_{0.0};
};

/// \brief Exponential seconds buckets from 1us to ~10s, the default shape
/// for latency histograms (pool task latency, flush durations).
std::vector<double> LatencyBucketsSeconds();

/// \brief Aggregated, self-contained reading of a registry. Entries are
/// sorted by name; the snapshot owns its data and is safe to keep after
/// the registry is gone.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    int64_t value;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1, last = overflow
    uint64_t total_count;
    double sum;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by exact name; 0 when absent (snapshots are views for
  /// telemetry structs, and an instrument that never fired may not have
  /// been registered).
  uint64_t CounterOr(std::string_view name, uint64_t fallback = 0) const;
};

/// \brief Owner and directory of instruments. Registration is mutex
/// guarded; returned handles are valid for the registry's lifetime and
/// their mutation paths are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry.
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. A name identifies exactly one instrument kind: asking for an
  /// existing name with a different kind (or a histogram with different
  /// bounds) aborts — metric names are a schema, not a namespace.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds);

  /// Aggregates every instrument into a sorted snapshot.
  MetricsSnapshot Snapshot() const;

  /// Adds every counter of `snapshot` into this registry (creating
  /// counters as needed). Used to publish run-scoped registries into the
  /// global one.
  void MergeCounters(const MetricsSnapshot& snapshot);

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace obs
}  // namespace prefcover

#endif  // PREFCOVER_OBS_METRICS_H_
