#include "obs/perf_counters.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace prefcover {
namespace obs {

std::string_view PerfEventName(PerfEvent event) {
  switch (event) {
    case PerfEvent::kCycles:
      return "cycles";
    case PerfEvent::kInstructions:
      return "instructions";
    case PerfEvent::kBranches:
      return "branches";
    case PerfEvent::kBranchMisses:
      return "branch_misses";
    case PerfEvent::kCacheReferences:
      return "cache_references";
    case PerfEvent::kCacheMisses:
      return "cache_misses";
    case PerfEvent::kTaskClockNs:
      return "task_clock_ns";
    case PerfEvent::kContextSwitches:
      return "context_switches";
    case PerfEvent::kPageFaults:
      return "page_faults";
  }
  return "unknown";
}

namespace {

double RatioOrNan(const PerfCounterValues& values, PerfEvent numerator,
                  PerfEvent denominator) {
  if (!values.Has(numerator) || !values.Has(denominator)) {
    return std::nan("");
  }
  const double denom =
      static_cast<double>(values.Value(denominator));
  if (denom <= 0.0) return std::nan("");
  return static_cast<double>(values.Value(numerator)) / denom;
}

}  // namespace

double PerfCounterValues::Ipc() const {
  return RatioOrNan(*this, PerfEvent::kInstructions, PerfEvent::kCycles);
}

double PerfCounterValues::BranchMissRate() const {
  return RatioOrNan(*this, PerfEvent::kBranchMisses, PerfEvent::kBranches);
}

double PerfCounterValues::CacheMissRate() const {
  return RatioOrNan(*this, PerfEvent::kCacheMisses,
                    PerfEvent::kCacheReferences);
}

double PerfCounterValues::CyclesPerNanosecond() const {
  return RatioOrNan(*this, PerfEvent::kCycles, PerfEvent::kTaskClockNs);
}

void PerfCounterValues::Accumulate(const PerfCounterValues& other) {
  supported = supported || other.supported;
  if (unsupported_reason.empty()) {
    unsupported_reason = other.unsupported_reason;
  }
  for (size_t i = 0; i < kNumPerfEvents; ++i) {
    // An event missing on either side poisons the total: summing a
    // partial window under a full one would skew every derived ratio.
    if (events[i].supported && other.events[i].supported) {
      events[i].value += other.events[i].value;
    } else if (other.events[i].supported && events[i].value == 0 &&
               !events[i].supported) {
      // Fresh sink (default-constructed slot): adopt the sample.
      events[i] = other.events[i];
      continue;
    } else {
      events[i].supported = false;
    }
  }
}

#if defined(__linux__) && defined(__NR_perf_event_open)

namespace {

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

constexpr EventSpec kEventSpecs[kNumPerfEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
};

int OpenEvent(const EventSpec& spec, int* saved_errno) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 1;
  // User space only: works at perf_event_paranoid <= 2, the common
  // default, without CAP_PERFMON.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // TIME_ENABLED/TIME_RUNNING let Stop() scale away PMU multiplexing.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  int fd = static_cast<int>(syscall(__NR_perf_event_open, &attr,
                                    /*pid=*/0, /*cpu=*/-1,
                                    /*group_fd=*/-1, /*flags=*/0UL));
  if (fd < 0) *saved_errno = errno;
  return fd;
}

}  // namespace

PerfCounterGroup::PerfCounterGroup(PerfCounterOptions options) {
  for (int& fd : fds_) fd = -1;
  if (options.force_unsupported) {
    unsupported_reason_ = "disabled by PerfCounterOptions";
    return;
  }
  if (std::getenv("PREFCOVER_NO_PERF") != nullptr) {
    unsupported_reason_ = "disabled by PREFCOVER_NO_PERF";
    return;
  }
  int last_errno = 0;
  for (size_t i = 0; i < kNumPerfEvents; ++i) {
    fds_[i] = OpenEvent(kEventSpecs[i], &last_errno);
    if (fds_[i] >= 0) supported_ = true;
  }
  if (!supported_) {
    unsupported_reason_ = std::string("perf_event_open failed: ") +
                          std::strerror(last_errno);
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

void PerfCounterGroup::Start() {
  for (int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfCounterValues PerfCounterGroup::Stop() {
  PerfCounterValues values;
  values.unsupported_reason = unsupported_reason_;
  if (!supported_) return values;
  for (size_t i = 0; i < kNumPerfEvents; ++i) {
    const int fd = fds_[i];
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
    struct {
      uint64_t value;
      uint64_t time_enabled;
      uint64_t time_running;
    } reading = {0, 0, 0};
    if (read(fd, &reading, sizeof(reading)) !=
        static_cast<ssize_t>(sizeof(reading))) {
      continue;
    }
    uint64_t scaled = reading.value;
    if (reading.time_running > 0 &&
        reading.time_running < reading.time_enabled) {
      // Multiplexed: extrapolate to the full enabled window.
      scaled = static_cast<uint64_t>(
          static_cast<double>(reading.value) *
          (static_cast<double>(reading.time_enabled) /
           static_cast<double>(reading.time_running)));
    } else if (reading.time_running == 0 && reading.value == 0) {
      // Never scheduled onto the PMU: no data, not a zero measurement.
      continue;
    }
    values.events[i].supported = true;
    values.events[i].value = scaled;
    values.supported = true;
  }
  if (!values.supported && values.unsupported_reason.empty()) {
    values.unsupported_reason = "no perf event produced a reading";
  }
  return values;
}

#else  // !__linux__ || !__NR_perf_event_open

PerfCounterGroup::PerfCounterGroup(PerfCounterOptions options) {
  for (int& fd : fds_) fd = -1;
  unsupported_reason_ = options.force_unsupported
                            ? "disabled by PerfCounterOptions"
                            : "perf_event_open requires Linux";
}

PerfCounterGroup::~PerfCounterGroup() = default;

void PerfCounterGroup::Start() {}

PerfCounterValues PerfCounterGroup::Stop() {
  PerfCounterValues values;
  values.unsupported_reason = unsupported_reason_;
  return values;
}

#endif  // __linux__

}  // namespace obs
}  // namespace prefcover
