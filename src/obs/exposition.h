// Prometheus text exposition for MetricsSnapshot, plus the structural
// linter and value extractor that the serve smoke test and serve_loadgen
// use to scrape it back.
//
// The render side turns a snapshot into the Prometheus text format
// (https://prometheus.io/docs/instrumenting/exposition_formats/):
// `# TYPE` lines, single samples for counters/gauges, cumulative
// `_bucket{le="..."}` / `_sum` / `_count` series for histograms, and a
// final `# EOF` line. The `# EOF` terminator doubles as the framing for
// the serve protocol's `metrics` verb: responses are otherwise one line,
// so a scraper reads until it sees `# EOF`.
//
// The lint side is intentionally a *structural* checker, not a full
// parser: it verifies exactly the properties our own tooling depends on
// (names legal, TYPE declared before samples, buckets cumulative,
// +Inf bucket == _count, ends with # EOF), so a rendering regression
// fails CI with a named reason instead of a confusing downstream error.

#ifndef PREFCOVER_OBS_EXPOSITION_H_
#define PREFCOVER_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace prefcover {
namespace obs {

/// \brief Maps a dotted internal metric name to a legal Prometheus name:
/// every character outside [a-zA-Z0-9_:] becomes '_' ("serve.requests"
/// -> "serve_requests"), and a leading digit gains a '_' prefix. Empty
/// input becomes "_".
std::string SanitizeMetricName(std::string_view name);

struct ExpositionOptions {
  /// Value appended to every histogram bucket line's le label formatting
  /// is fixed; this struct exists for future labels and stays empty for
  /// now so call sites read RenderPrometheusText(snapshot, {}).
};

/// \brief Renders a snapshot in Prometheus text format. Deterministic for
/// a fixed snapshot (entries are name-sorted by Snapshot()); terminated
/// by a `# EOF` line. Histogram bucket counts are rendered cumulatively
/// and always include an `le="+Inf"` bucket equal to `_count`.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 const ExpositionOptions& options = {});

/// \brief Outcome of LintPrometheusText: ok() or a message naming the
/// first violated property and its line number.
struct LintResult {
  bool ok = true;
  std::string message;

  static LintResult Ok() { return {}; }
  static LintResult Fail(std::string msg) { return {false, std::move(msg)}; }
};

/// \brief Structural linter for the text format. Checks:
///   - every non-comment line parses as `name{labels} value` or
///     `name value`;
///   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
///   - every sample's family has a preceding `# TYPE` with a known type
///     (counter | gauge | histogram), declared at most once;
///   - counter and gauge values are finite numbers (counters >= 0);
///   - histogram buckets are cumulative (non-decreasing with le), the
///     `le="+Inf"` bucket exists and equals `_count`, `_sum` and `_count`
///     are present;
///   - the last line is `# EOF`.
LintResult LintPrometheusText(std::string_view text);

/// \brief Finds the sample value for `metric` (already-sanitized name,
/// exact match on the unlabeled sample or the first labeled one). Returns
/// true and fills `*value` when found.
bool FindPrometheusValue(std::string_view text, std::string_view metric,
                         double* value);

}  // namespace obs
}  // namespace prefcover

#endif  // PREFCOVER_OBS_EXPOSITION_H_
