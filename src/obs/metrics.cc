#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace prefcover {
namespace obs {

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next_id{0};
  thread_local uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::ShardCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      cells_(kMetricShards * (bounds_.size() + 1)) {}

void Histogram::Record(double value) {
  // Branchless-ish bucket pick: first bound >= value, else overflow.
  const size_t stride = bounds_.size() + 1;
  size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  const size_t shard = CurrentThreadId() % kMetricShards;
  cells_[shard * stride + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  count_[shard].value.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::Counts() const {
  const size_t stride = bounds_.size() + 1;
  std::vector<uint64_t> counts(stride, 0);
  for (size_t shard = 0; shard < kMetricShards; ++shard) {
    for (size_t b = 0; b < stride; ++b) {
      counts[b] +=
          cells_[shard * stride + b].value.load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const internal::ShardCell& cell : count_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  return sum_.load(std::memory_order_relaxed);
}

std::vector<double> LatencyBucketsSeconds() {
  // 1us .. 10s, one bucket per decade boundary and its 3x midpoint.
  return {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
          1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0};
}

uint64_t MetricsSnapshot::CounterOr(std::string_view name,
                                    uint64_t fallback) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

[[noreturn]] void DieKindMismatch(std::string_view name) {
  std::fprintf(stderr,
               "metric '%.*s' already registered with a different kind or "
               "shape\n",
               static_cast<int>(name.size()), name.data());
  std::abort();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.counter.reset(new Counter());
  }
  if (it->second.counter == nullptr) DieKindMismatch(name);
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.gauge.reset(new Gauge());
  }
  if (it->second.gauge == nullptr) DieKindMismatch(name);
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.histogram.reset(new Histogram(std::move(bounds)));
    return it->second.histogram.get();
  }
  if (it->second.histogram == nullptr ||
      it->second.histogram->bounds() != bounds) {
    DieKindMismatch(name);
  }
  return it->second.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      snapshot.counters.push_back({name, entry.counter->Value()});
    } else if (entry.gauge != nullptr) {
      snapshot.gauges.push_back({name, entry.gauge->Value()});
    } else if (entry.histogram != nullptr) {
      snapshot.histograms.push_back({name, entry.histogram->bounds(),
                                     entry.histogram->Counts(),
                                     entry.histogram->TotalCount(),
                                     entry.histogram->Sum()});
    }
  }
  // std::map iteration is already name-sorted; keep the contract explicit
  // in case the container ever changes.
  return snapshot;
}

void MetricsRegistry::MergeCounters(const MetricsSnapshot& snapshot) {
  for (const MetricsSnapshot::CounterValue& c : snapshot.counters) {
    if (c.value == 0) continue;
    GetCounter(c.name)->Increment(c.value);
  }
}

}  // namespace obs
}  // namespace prefcover
