#include "obs/exposition.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <vector>

namespace prefcover {
namespace obs {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c));
}

std::string FormatValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  if (std::isdigit(static_cast<unsigned char>(name[0]))) out += '_';
  for (char c : name) {
    out += IsNameChar(c) ? c : '_';
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 const ExpositionOptions& /*options*/) {
  std::string out;
  for (const auto& counter : snapshot.counters) {
    const std::string name = SanitizeMetricName(counter.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " +
           FormatValue(static_cast<double>(counter.value)) + "\n";
  }
  for (const auto& gauge : snapshot.gauges) {
    const std::string name = SanitizeMetricName(gauge.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatValue(static_cast<double>(gauge.value)) + "\n";
  }
  for (const auto& histogram : snapshot.histograms) {
    const std::string name = SanitizeMetricName(histogram.name);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    const size_t buckets =
        histogram.counts.size() == histogram.bounds.size() + 1
            ? histogram.bounds.size()
            : 0;
    for (size_t b = 0; b < buckets; ++b) {
      cumulative += histogram.counts[b];
      out += name + "_bucket{le=\"" + FormatValue(histogram.bounds[b]) +
             "\"} " + FormatValue(static_cast<double>(cumulative)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           FormatValue(static_cast<double>(histogram.total_count)) + "\n";
    out += name + "_sum " + FormatValue(histogram.sum) + "\n";
    out += name + "_count " +
           FormatValue(static_cast<double>(histogram.total_count)) + "\n";
  }
  out += "# EOF\n";
  return out;
}

namespace {

// One parsed sample line: name, optional le label, value.
struct SampleLine {
  std::string name;
  bool has_le = false;
  std::string le;
  double value = 0.0;
};

bool ParseDouble(std::string_view text, double* value) {
  if (text == "+Inf") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    *value = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "NaN") {
    *value = std::nan("");
    return true;
  }
  std::string owned(text);
  char* end = nullptr;
  const double parsed = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0') return false;
  *value = parsed;
  return true;
}

bool ParseSampleLine(std::string_view line, SampleLine* out,
                     std::string* error) {
  size_t pos = 0;
  while (pos < line.size() && IsNameChar(line[pos])) ++pos;
  if (pos == 0 || !IsNameStartChar(line[0])) {
    *error = "illegal metric name";
    return false;
  }
  out->name = std::string(line.substr(0, pos));
  if (pos < line.size() && line[pos] == '{') {
    const size_t close = line.find('}', pos);
    if (close == std::string_view::npos) {
      *error = "unterminated label set";
      return false;
    }
    const std::string_view labels = line.substr(pos + 1, close - pos - 1);
    // Only the le label matters to us; everything else passes through.
    constexpr std::string_view kLe = "le=\"";
    const size_t le_pos = labels.find(kLe);
    if (le_pos != std::string_view::npos) {
      const size_t value_start = le_pos + kLe.size();
      const size_t value_end = labels.find('"', value_start);
      if (value_end == std::string_view::npos) {
        *error = "unterminated le label";
        return false;
      }
      out->has_le = true;
      out->le = std::string(
          labels.substr(value_start, value_end - value_start));
    }
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    *error = "expected space before value";
    return false;
  }
  ++pos;
  if (!ParseDouble(line.substr(pos), &out->value)) {
    *error = "unparseable sample value";
    return false;
  }
  return true;
}

// Strips a histogram series suffix, returning the family name.
std::string FamilyOf(const std::string& name) {
  for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

struct HistogramState {
  double last_bucket = -1.0;  // last cumulative bucket count seen
  double last_le = -std::numeric_limits<double>::infinity();
  bool saw_inf = false;
  double inf_value = 0.0;
  bool saw_sum = false;
  bool saw_count = false;
  double count_value = 0.0;
};

LintResult FailAt(size_t line_no, const std::string& message) {
  return LintResult::Fail("line " + std::to_string(line_no) + ": " +
                          message);
}

}  // namespace

LintResult LintPrometheusText(std::string_view text) {
  std::map<std::string, std::string> type_of;   // family -> type
  std::map<std::string, HistogramState> hists;  // family -> state
  bool saw_eof = false;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++line_no;
    if (saw_eof) return FailAt(line_no, "content after # EOF");
    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      constexpr std::string_view kType = "# TYPE ";
      if (line.substr(0, kType.size()) != kType) {
        // Other comments (e.g. # HELP) are legal and unchecked.
        continue;
      }
      const std::string_view rest = line.substr(kType.size());
      const size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return FailAt(line_no, "malformed # TYPE line");
      }
      const std::string family(rest.substr(0, space));
      const std::string type(rest.substr(space + 1));
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return FailAt(line_no, "unknown type '" + type + "'");
      }
      if (type_of.count(family) != 0) {
        return FailAt(line_no, "duplicate # TYPE for '" + family + "'");
      }
      type_of[family] = type;
      continue;
    }
    SampleLine sample;
    std::string error;
    if (!ParseSampleLine(line, &sample, &error)) {
      return FailAt(line_no, error);
    }
    const std::string family = FamilyOf(sample.name);
    auto type_it = type_of.find(family);
    if (type_it == type_of.end()) {
      // A _sum/_count-looking name may be a plain counter/gauge family.
      type_it = type_of.find(sample.name);
      if (type_it == type_of.end()) {
        return FailAt(line_no,
                      "sample for '" + sample.name + "' without # TYPE");
      }
    }
    const std::string& type = type_it->second;
    const std::string& typed_family = type_it->first;
    if (type == "counter") {
      if (std::isnan(sample.value) || sample.value < 0) {
        return FailAt(line_no, "counter '" + sample.name +
                                   "' with negative or NaN value");
      }
      continue;
    }
    if (type == "gauge") {
      if (std::isnan(sample.value)) {
        return FailAt(line_no, "gauge '" + sample.name + "' with NaN value");
      }
      continue;
    }
    // Histogram series.
    HistogramState& state = hists[typed_family];
    if (sample.name == typed_family + "_bucket") {
      if (!sample.has_le) {
        return FailAt(line_no, "bucket without le label");
      }
      double le = 0.0;
      if (!ParseDouble(sample.le, &le)) {
        return FailAt(line_no, "unparseable le value '" + sample.le + "'");
      }
      if (le <= state.last_le) {
        return FailAt(line_no, "histogram '" + typed_family +
                                   "' buckets out of le order");
      }
      if (sample.value < state.last_bucket) {
        return FailAt(line_no, "histogram '" + typed_family +
                                   "' buckets not cumulative");
      }
      state.last_le = le;
      state.last_bucket = sample.value;
      if (std::isinf(le) && le > 0) {
        state.saw_inf = true;
        state.inf_value = sample.value;
      }
    } else if (sample.name == typed_family + "_sum") {
      state.saw_sum = true;
    } else if (sample.name == typed_family + "_count") {
      state.saw_count = true;
      state.count_value = sample.value;
    } else {
      return FailAt(line_no, "unexpected histogram series '" + sample.name +
                                 "'");
    }
  }
  if (!saw_eof) return LintResult::Fail("missing # EOF terminator");
  for (const auto& [family, state] : hists) {
    if (!state.saw_inf) {
      return LintResult::Fail("histogram '" + family +
                              "' missing le=\"+Inf\" bucket");
    }
    if (!state.saw_sum) {
      return LintResult::Fail("histogram '" + family + "' missing _sum");
    }
    if (!state.saw_count) {
      return LintResult::Fail("histogram '" + family + "' missing _count");
    }
    if (state.inf_value != state.count_value) {
      return LintResult::Fail("histogram '" + family +
                              "' +Inf bucket != _count");
    }
  }
  // A declared histogram with no series at all is a rendering bug too.
  for (const auto& [family, type] : type_of) {
    if (type == "histogram" && hists.count(family) == 0) {
      return LintResult::Fail("histogram '" + family + "' has no series");
    }
  }
  return LintResult::Ok();
}

bool FindPrometheusValue(std::string_view text, std::string_view metric,
                         double* value) {
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    if (line.substr(0, metric.size()) != metric) continue;
    if (line.size() <= metric.size()) continue;
    const char next = line[metric.size()];
    if (next != ' ' && next != '{') continue;
    SampleLine sample;
    std::string error;
    if (!ParseSampleLine(line, &sample, &error)) continue;
    if (sample.name != metric) continue;
    *value = sample.value;
    return true;
  }
  return false;
}

}  // namespace obs
}  // namespace prefcover
