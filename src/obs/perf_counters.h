// Hardware/software performance counters via Linux perf_event_open(2).
//
// A PerfCounterGroup opens one file descriptor per event (cycles,
// instructions, branches/branch misses, cache references/misses, plus the
// task-clock / context-switch / page-fault software counters), counts
// between Start() and Stop(), and returns multiplex-scaled totals. The
// point is to settle kernel-level questions — IPC, miss rates — that
// wall-clock timing cannot, directly from the bench harness.
//
// Graceful degradation is the design center, not an afterthought:
//
//   - perf_event_open is frequently unavailable (containers without
//     CAP_PERFMON, kernel.perf_event_paranoid >= 3, CI sandboxes,
//     non-Linux hosts). Every such failure yields a group whose
//     supported() is false and whose Stop() returns values marked
//     unsupported — never an error, never a crash, and the bench JSON
//     marks the subtree instead of omitting the case.
//   - Individual events can fail while others work (VMs often expose
//     software counters but no PMU). Each event degrades independently;
//     derived ratios (Ipc() etc.) return NaN when an input is missing.
//   - PREFCOVER_NO_PERF=1 in the environment forces the unsupported path,
//     which pins down deterministic output for tests and golden files.
//
// Counting is per-thread (the calling thread) with inherit=0, user space
// only (exclude_kernel), so paranoid level 2 — the common default — is
// sufficient when the PMU exists.

#ifndef PREFCOVER_OBS_PERF_COUNTERS_H_
#define PREFCOVER_OBS_PERF_COUNTERS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace prefcover {
namespace obs {

/// \brief The fixed event set a PerfCounterGroup samples. Hardware events
/// first, then software events (always available on Linux even without a
/// PMU).
enum class PerfEvent : uint8_t {
  kCycles = 0,
  kInstructions,
  kBranches,
  kBranchMisses,
  kCacheReferences,
  kCacheMisses,
  kTaskClockNs,
  kContextSwitches,
  kPageFaults,
};

inline constexpr size_t kNumPerfEvents = 9;

/// \brief Stable lowercase name used as the JSON key for an event
/// ("cycles", "instructions", "branch_misses", ...).
std::string_view PerfEventName(PerfEvent event);

/// \brief Counter totals from one or more Start/Stop windows. Values are
/// multiplex-scaled (value * time_enabled / time_running) so concurrent
/// perf users do not silently shrink the numbers.
struct PerfCounterValues {
  struct Sample {
    bool supported = false;
    uint64_t value = 0;
  };

  /// True when at least one event was actually measured.
  bool supported = false;
  /// Human-readable reason when nothing could be measured ("" otherwise).
  std::string unsupported_reason;
  Sample events[kNumPerfEvents] = {};

  bool Has(PerfEvent event) const {
    return events[static_cast<size_t>(event)].supported;
  }
  uint64_t Value(PerfEvent event) const {
    return events[static_cast<size_t>(event)].value;
  }

  /// \name Derived ratios; NaN when an input is unsupported or the
  /// denominator is zero.
  /// @{
  double Ipc() const;               // instructions / cycles
  double BranchMissRate() const;    // branch_misses / branches
  double CacheMissRate() const;     // cache_misses / cache_references
  double CyclesPerNanosecond() const;  // cycles / task_clock_ns
  /// @}

  /// Element-wise sum; an event is supported in the result only when both
  /// sides support it (so accumulated ratios stay meaningful). The merged
  /// `supported` flag is the OR; the reason is kept from whichever side
  /// had one.
  void Accumulate(const PerfCounterValues& other);
};

struct PerfCounterOptions {
  /// Skip the syscall entirely and report unsupported. Used by tests and
  /// anything that needs byte-stable output regardless of host support.
  bool force_unsupported = false;
};

/// \brief A set of per-thread counting events. Not thread-safe: the
/// thread that calls Start() must call Stop(). Construction never fails;
/// an unavailable syscall just produces an unsupported group.
class PerfCounterGroup {
 public:
  explicit PerfCounterGroup(PerfCounterOptions options = {});
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when at least one event opened.
  bool supported() const { return supported_; }
  const std::string& unsupported_reason() const {
    return unsupported_reason_;
  }

  /// Zeroes every counter and starts counting. No-op when unsupported.
  void Start();

  /// Stops counting and returns the scaled totals since the last
  /// Start(). An unsupported group returns a values struct carrying the
  /// reason.
  PerfCounterValues Stop();

 private:
  bool supported_ = false;
  std::string unsupported_reason_;
  int fds_[kNumPerfEvents];
};

/// \brief RAII measurement window: Start() on construction, Stop() +
/// Accumulate into `sink` on destruction. `group` and `sink` may be
/// nullptr (the scope becomes a no-op), so call sites need no branches.
class PerfScope {
 public:
  PerfScope(PerfCounterGroup* group, PerfCounterValues* sink)
      : group_(group), sink_(sink) {
    if (group_ != nullptr) group_->Start();
  }
  ~PerfScope() {
    if (group_ == nullptr) return;
    PerfCounterValues values = group_->Stop();
    if (sink_ != nullptr) sink_->Accumulate(values);
  }

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  PerfCounterGroup* group_;
  PerfCounterValues* sink_;
};

}  // namespace obs
}  // namespace prefcover

#endif  // PREFCOVER_OBS_PERF_COUNTERS_H_
