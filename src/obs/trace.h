// Scoped tracing with Chrome trace-event export.
//
// `Span` is an RAII scope marker: construction stamps the start time,
// destruction records one *complete* event ("ph":"X") — name, category,
// start, duration, thread id, optional args — into a per-thread ring
// buffer. Complete events make nesting implicit (Perfetto/chrome://tracing
// reconstructs the stack from containment on each tid), so a ring
// overwrite can never orphan a begin/end pair.
//
// Cost model:
//   - tracing disabled (runtime): one relaxed atomic load per Span; no
//     clock reads, no allocation, no formatting;
//   - compiled out (PREFCOVER_TRACING_ENABLED=0): Span is an empty struct
//     and every call site folds to nothing;
//   - tracing enabled: two clock reads plus a short per-thread critical
//     section per span; args are formatted into a fixed inline buffer.
//
// Rings are fixed capacity (TracingOptions::ring_capacity events per
// thread). On overflow the oldest event is dropped and the
// `trace.dropped_events` counter in MetricsRegistry::Global() is bumped —
// a trace is a window, not an archive.
//
// Lifecycle: `Tracing::Start()` arms collection, `Tracing::Stop()`
// disarms it, `Tracing::Flush(sink)` drains every thread's ring (oldest
// first) into a TraceSink; `WriteChromeTraceFile` is the one-call export
// used by the CLI's --trace_out.

#ifndef PREFCOVER_OBS_TRACE_H_
#define PREFCOVER_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef PREFCOVER_TRACING_ENABLED
#define PREFCOVER_TRACING_ENABLED 1
#endif

namespace prefcover {
namespace obs {

/// \brief One finished span. `name` and `category` must be string
/// literals (or otherwise outlive the trace session): events store the
/// pointers, not copies — recording must not allocate.
struct TraceEvent {
  static constexpr size_t kArgsCapacity = 120;

  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t start_ns = 0;  // nanoseconds since the session started
  uint64_t duration_ns = 0;
  uint32_t tid = 0;
  uint16_t args_len = 0;
  // Preformatted JSON object *body* ("\"k\":1,\"s\":\"v\""), no braces.
  char args[kArgsCapacity];
};

/// \brief Receives drained events. Flush calls Begin once, then Consume
/// for every event (grouped by thread, oldest first within a thread),
/// then End.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Begin() {}
  virtual void Consume(const TraceEvent& event) = 0;
  virtual void End() {}
};

/// \brief TraceSink that writes the Chrome trace-event JSON object format:
/// {"displayTimeUnit":"ms","traceEvents":[...]} with one "X" (complete)
/// event per span, `ts`/`dur` in fractional microseconds. Loadable in
/// Perfetto and chrome://tracing.
class ChromeTraceSink : public TraceSink {
 public:
  /// The stream must outlive the sink. The caller owns error checking on
  /// the stream after End().
  explicit ChromeTraceSink(std::ostream* out);

  void Begin() override;
  void Consume(const TraceEvent& event) override;
  void End() override;

 private:
  std::ostream* out_;
  bool first_ = true;
};

/// \brief Collection knobs for Tracing::Start.
struct TracingOptions {
  /// Events retained per thread; the oldest is dropped on overflow.
  size_t ring_capacity = 64 * 1024;
};

/// \brief Global tracing control. All methods are safe to call from any
/// thread; Start/Stop/Flush serialize against each other.
class Tracing {
 public:
  /// Arms collection. Resets previously collected events and the session
  /// clock. No-op (returns false) when compiled out.
  static bool Start(const TracingOptions& options = TracingOptions());

  /// Disarms collection. Already-recorded events stay buffered for Flush.
  static void Stop();

  static bool IsEnabled() {
#if PREFCOVER_TRACING_ENABLED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Drains every thread's ring into `sink`, oldest-first per thread, and
  /// clears the rings. Returns the number of events delivered.
  static size_t Flush(TraceSink* sink);

  /// Total events dropped to ring overflow since Start.
  static uint64_t DroppedEvents();

  /// Nanoseconds since the session clock started (0 before any Start).
  static uint64_t NowNanos();

  /// \brief Records an already-timed complete event — for callers that
  /// measure a scope themselves (e.g. the solver's per-round stopwatch).
  /// `args_body` is a preformatted JSON object body and may be empty; it
  /// is truncated at TraceEvent::kArgsCapacity - 1.
  static void RecordComplete(const char* name, const char* category,
                             uint64_t start_ns, uint64_t duration_ns,
                             const char* args_body = nullptr);

 private:
  friend class Span;
  static std::atomic<bool> enabled_;
};

/// \brief Small helper that appends `"key":value` JSON members into a
/// fixed buffer; shared by Span and the solver's round events.
class TraceArgs {
 public:
  TraceArgs() { buffer_[0] = '\0'; }

  TraceArgs& Add(const char* key, uint64_t value);
  TraceArgs& Add(const char* key, int64_t value);
  TraceArgs& Add(const char* key, double value);
  /// `value` must not need JSON escaping (identifiers, enum names).
  TraceArgs& Add(const char* key, const char* value);

  const char* body() const { return buffer_; }
  size_t size() const { return len_; }

 private:
  void AppendPrefix(const char* key);

  char buffer_[TraceEvent::kArgsCapacity];
  size_t len_ = 0;
};

#if PREFCOVER_TRACING_ENABLED

/// \brief RAII scope span. Construction is a no-op unless tracing is
/// enabled at that moment; a span that started enabled records even if
/// tracing is stopped mid-scope (the session clock keeps counting).
class Span {
 public:
  Span(const char* name, const char* category = "prefcover")
      : enabled_(Tracing::IsEnabled()) {
    if (enabled_) {
      name_ = name;
      category_ = category;
      start_ns_ = Tracing::NowNanos();
    }
  }

  ~Span() {
    if (enabled_) {
      Tracing::RecordComplete(name_, category_, start_ns_,
                              Tracing::NowNanos() - start_ns_,
                              args_.body());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an argument shown in the trace viewer. Cheap no-op when the
  /// span is disabled.
  template <typename T>
  void Arg(const char* key, T value) {
    if (enabled_) args_.Add(key, value);
  }

 private:
  bool enabled_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  uint64_t start_ns_ = 0;
  TraceArgs args_;
};

#else  // !PREFCOVER_TRACING_ENABLED

class Span {
 public:
  Span(const char*, const char* = "prefcover") {}
  template <typename T>
  void Arg(const char*, T) {}
};

#endif  // PREFCOVER_TRACING_ENABLED

/// \brief Convenience: Stop(), then Flush() through a ChromeTraceSink
/// into `path`. Returns false (with a human-readable message in *error,
/// if non-null) on IO failure.
bool WriteChromeTraceFile(const std::string& path, std::string* error);

}  // namespace obs
}  // namespace prefcover

#endif  // PREFCOVER_OBS_TRACE_H_
