#include "dist/distributed_solver.h"

#if defined(__unix__) || defined(__APPLE__)

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "core/checkpoint.h"
#include "dist/protocol.h"
#include "obs/metrics.h"
#include "serve/transport.h"
#include "util/logging.h"
#include "util/timer.h"

namespace prefcover {
namespace dist {

namespace {

/// One worker process as the coordinator sees it. The client owns the
/// connection; `seq` mirrors the worker's commit sequence so the commit
/// broadcast knows who still needs the current round.
struct WorkerHandle {
  DistWorkerEndpoint endpoint;
  std::unique_ptr<serve::ResilientClient> client;
  size_t shard_begin = 0;
  size_t shard_end = 0;
  bool alive = true;
  uint64_t seq = 0;
  // Next-round proposal piggybacked on the last commit reply, valid for
  // round `cached_seq`. Lets the steady-state round skip the propose
  // fan-out entirely. `cached_tally` holds the counters that proposal
  // drained, merged when the proposal is consumed.
  std::optional<CandidateProposal> cached_proposal;
  uint64_t cached_seq = 0;
  EvaluatorCounters cached_tally;
};

/// Strips the expected `OK <verb> ` reply prefix; empty optional when the
/// reply is an error line or a different verb's.
std::optional<std::string_view> ReplyArgs(const std::string& reply,
                                          std::string_view verb) {
  std::string_view rest = reply;
  if (rest.rfind("OK ", 0) != 0) return std::nullopt;
  rest.remove_prefix(3);
  if (rest.rfind(verb, 0) != 0) return std::nullopt;
  rest.remove_prefix(verb.size());
  if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  return rest;
}

class DistributedCandidateEvaluator : public CandidateEvaluator {
 public:
  static Result<std::unique_ptr<CandidateEvaluator>> Create(
      const EvaluatorContext& context, const DistSolveOptions& options) {
    auto evaluator = std::unique_ptr<DistributedCandidateEvaluator>(
        new DistributedCandidateEvaluator(context, options));
    PREFCOVER_RETURN_NOT_OK(evaluator->Connect());
    return {std::move(evaluator)};
  }

  ~DistributedCandidateEvaluator() override {
    // Best-effort goodbye: ends each worker's session (their solve state
    // persists; dist_launch shuts the processes down separately). `quit`
    // is non-idempotent, so this is exactly one bounded attempt each.
    for (WorkerHandle& worker : workers_) {
      if (worker.alive) (void)worker.client->Call("quit");
    }
  }

  Result<CandidateProposal> BestCandidate() override {
    const size_t committed = context_.committed->size();
    if (options_.on_round) options_.on_round(committed);
    for (;;) {
      Stopwatch round_timer;
      std::vector<size_t> alive = AliveIndices();
      if (alive.empty()) {
        return Status::Internal(
            "distributed solve lost every worker (last: " + last_error_ +
            ")");
      }
      // Steady state sends nothing here: every worker that answered the
      // previous commit piggybacked this round's proposal on its reply.
      // Only workers without a valid cached proposal (first round, or
      // freshly re-seated after a rebalance) get a propose round trip.
      const std::string request = "propose seq=" + std::to_string(committed);
      std::vector<size_t> ask;
      for (size_t idx : alive) {
        const WorkerHandle& worker = workers_[idx];
        if (!worker.cached_proposal.has_value() ||
            worker.cached_seq != committed) {
          ask.push_back(idx);
        }
      }
      std::vector<std::optional<Result<std::string>>> replies(
          workers_.size());
      FanOut(ask, [&](size_t idx) {
        replies[idx] = CallWorker(workers_[idx], request);
      });

      CandidateProposal best;
      EvaluatorCounters round_tally;
      bool round_ok = true;
      for (size_t idx : alive) {
        if (!replies[idx].has_value()) {
          // Served from the commit piggyback; no wire round trip.
          WorkerHandle& worker = workers_[idx];
          EvaluatorCounters tally = worker.cached_tally;
          round_tally.MergeFrom(&tally);
          const CandidateProposal& proposal = *worker.cached_proposal;
          m_proposals_->Increment();
          if (proposal.found &&
              (!best.found || proposal.gain > best.gain ||
               (proposal.gain == best.gain && proposal.node < best.node))) {
            best = proposal;
          }
          continue;
        }
        Result<std::string>& reply = *replies[idx];
        if (!reply.ok()) {
          MarkDead(idx, reply.status());
          round_ok = false;
          continue;
        }
        auto proposal = ParseProposeReply(*reply, committed, &round_tally);
        if (!proposal.ok()) {
          // The worker answered but is out of step (e.g. it restarted, or
          // a half-applied broadcast): a re-init brings it back. Handled
          // below by the full rebalance.
          PREFCOVER_LOG(Warning)
              << "dist: worker " << workers_[idx].endpoint.host << ":"
              << workers_[idx].endpoint.port
              << " propose rejected: " << proposal.status().ToString();
          last_error_ = proposal.status().ToString();
          round_ok = false;
          continue;
        }
        m_proposals_->Increment();
        if (proposal->found &&
            (!best.found || proposal->gain > best.gain ||
             (proposal->gain == best.gain && proposal->node < best.node))) {
          best = *proposal;
        }
      }
      if (!round_ok) {
        PREFCOVER_RETURN_NOT_OK(Rebalance());
        continue;  // retry the round against the re-seated fleet
      }
      tally_.MergeFrom(&round_tally);
      m_rounds_->Increment();
      m_merge_seconds_->Record(round_timer.ElapsedSeconds());
      return best;
    }
  }

  Status CommitWinner(NodeId v) override {
    // The driver has already applied AddNode(v) and appended v to the
    // committed prefix, so the round being committed is the previous
    // sequence number and the local cover is the post-commit one.
    const uint64_t round_seq = context_.committed->size() - 1;
    const std::string expect_cover = FormatF64(context_.state->cover());
    const std::string request = "commit seq=" + std::to_string(round_seq) +
                                " node=" + std::to_string(v);
    for (;;) {
      std::vector<size_t> pending;
      for (size_t i = 0; i < workers_.size(); ++i) {
        if (workers_[i].alive && workers_[i].seq == round_seq) {
          pending.push_back(i);
        }
      }
      if (pending.empty()) return Status::OK();

      std::vector<std::optional<Result<std::string>>> replies(
          workers_.size());
      FanOut(pending, [&](size_t idx) {
        replies[idx] = CallWorker(workers_[idx], request);
      });

      bool round_ok = true;
      for (size_t idx : pending) {
        Result<std::string>& reply = *replies[idx];
        if (!reply.ok()) {
          MarkDead(idx, reply.status());
          round_ok = false;
          continue;
        }
        auto args = ReplyArgs(*reply, "commit");
        if (!args.has_value()) {
          last_error_ = *reply;
          round_ok = false;
          continue;
        }
        const KvArgs kv(*args);
        auto seq = kv.GetU64("seq");
        auto cover = kv.GetString("cover");
        if (!seq.ok() || *seq != round_seq + 1 || !cover.ok()) {
          last_error_ = *reply;
          round_ok = false;
          continue;
        }
        // The byte-identity cross-check: every worker replayed the same
        // prefix over the same kernels, so its running cover must match
        // ours to the last bit. A mismatch is a divergence bug, not a
        // fault to retry around.
        if (*cover != expect_cover) {
          return Status::Internal(
              "dist cover divergence at seq " +
              std::to_string(round_seq + 1) + ": worker " +
              workers_[idx].endpoint.host + ":" +
              std::to_string(workers_[idx].endpoint.port) + " reports " +
              *cover + ", coordinator has " + expect_cover);
        }
        workers_[idx].seq = round_seq + 1;
        m_commits_->Increment();
        // Stash the piggybacked next-round proposal, when present (the
        // final commit of a budget-exhausted solve carries none). A
        // malformed piggyback is not fatal — the worker just gets a
        // propose round trip next round, which re-checks everything.
        std::string_view found;
        if (kv.Get("found", &found)) {
          WorkerHandle& worker = workers_[idx];
          worker.cached_tally = EvaluatorCounters();
          auto next = ParseProposalFields(kv, &worker.cached_tally);
          if (next.ok()) {
            worker.cached_proposal = *next;
            worker.cached_seq = round_seq + 1;
          } else {
            worker.cached_proposal.reset();
          }
        }
      }
      if (!round_ok) {
        PREFCOVER_RETURN_NOT_OK(Rebalance());
        // Rebalance re-inits from the committed prefix (which includes
        // v), so re-seated workers are already past this round; the loop
        // re-checks who is still pending.
      }
    }
  }

  void DrainCounters(EvaluatorCounters* into) override {
    into->MergeFrom(&tally_);
  }

 private:
  DistributedCandidateEvaluator(const EvaluatorContext& context,
                                const DistSolveOptions& options)
      : context_(context),
        options_(options),
        digest_(GraphDigest(*context.graph)),
        opts_hash_(GreedyOptionsHash(*context.options, context.k)),
        exclude_csv_(FormatNodeCsv(context.options->force_exclude)) {
    simd_name_ = options_.simd_level.empty()
                     ? std::string(SimdLevelName(ActiveSimdLevel()))
                     : options_.simd_level;
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    m_rounds_ = registry.GetCounter(dist_metric::kRounds);
    m_proposals_ = registry.GetCounter(dist_metric::kProposals);
    m_commits_ = registry.GetCounter(dist_metric::kCommits);
    m_failures_ = registry.GetCounter(dist_metric::kWorkerFailures);
    m_rebalances_ = registry.GetCounter(dist_metric::kRebalances);
    m_bytes_sent_ = registry.GetCounter(dist_metric::kBytesSent);
    m_bytes_received_ = registry.GetCounter(dist_metric::kBytesReceived);
    m_merge_seconds_ = registry.GetHistogram(dist_metric::kMergeSeconds,
                                             obs::LatencyBucketsSeconds());
  }

  Status Connect() {
    if (options_.workers.empty()) {
      return Status::InvalidArgument(
          "distributed solve needs at least one worker endpoint");
    }
    serve::IgnoreSigpipe();
    workers_.reserve(options_.workers.size());
    for (size_t i = 0; i < options_.workers.size(); ++i) {
      WorkerHandle worker;
      worker.endpoint = options_.workers[i];
      serve::ResilientClientOptions client_options = options_.client;
      client_options.host = worker.endpoint.host;
      client_options.port = worker.endpoint.port;
      client_options.jitter_seed = options_.client.jitter_seed + i;
      worker.client =
          std::make_unique<serve::ResilientClient>(client_options);
      workers_.push_back(std::move(worker));
    }
    // First seating: like a rebalance, but every init failure is fatal —
    // a fleet that cannot fully seat at the start is a config error, not
    // a mid-solve fault. Seating fans out: each worker's init builds its
    // full CoverState (O(n + edges)), so a serial loop would multiply
    // that wall time by the fleet size.
    std::vector<size_t> all = AliveIndices();
    AssignShards(all);
    std::vector<Status> seated(workers_.size(), Status::OK());
    FanOut(all, [&](size_t idx) { seated[idx] = InitWorker(&workers_[idx]); });
    for (Status& status : seated) {
      PREFCOVER_RETURN_NOT_OK(std::move(status));
    }
    return Status::OK();
  }

  /// Contiguous equal partition of [0, n) over the listed workers (in
  /// their index order). Workers beyond the candidate count get the empty
  /// shard [n, n) — never [0, 0), which CelfShardEngine reads as "the
  /// full range".
  void AssignShards(const std::vector<size_t>& alive) {
    const size_t n = context_.graph->NumNodes();
    const size_t m = alive.size();
    for (size_t j = 0; j < m; ++j) {
      size_t begin = n * j / m;
      size_t end = n * (j + 1) / m;
      if (begin == end) begin = end = n;
      workers_[alive[j]].shard_begin = begin;
      workers_[alive[j]].shard_end = end;
    }
  }

  Status InitWorker(WorkerHandle* worker) {
    const std::string request =
        "init shard=" + std::to_string(worker->shard_begin) + ":" +
        std::to_string(worker->shard_end) +
        " variant=" + std::string(VariantName(context_.options->variant)) +
        " k=" + std::to_string(context_.k) + " simd=" + simd_name_ +
        " seed_cap=" +
        std::to_string(context_.options->seed_heap_capacity) +
        " digest=" + std::to_string(digest_) +
        " opts=" + std::to_string(opts_hash_) +
        " exclude=" + exclude_csv_ +
        " prefix=" + FormatNodeCsv(*context_.committed);
    PREFCOVER_ASSIGN_OR_RETURN(std::string reply,
                               CallWorker(*worker, request));
    auto args = ReplyArgs(reply, "init");
    if (!args.has_value()) {
      return Status::Internal("worker rejected init: " + reply);
    }
    const KvArgs kv(*args);
    PREFCOVER_ASSIGN_OR_RETURN(uint64_t seq, kv.GetU64("seq"));
    PREFCOVER_ASSIGN_OR_RETURN(std::string cover, kv.GetString("cover"));
    if (seq != context_.committed->size()) {
      return Status::Internal("worker init seq mismatch: " + reply);
    }
    // Same prefix, same kernels => bit-identical running cover.
    if (cover != FormatF64(context_.state->cover())) {
      return Status::Internal(
          "worker init cover divergence: worker has " + cover +
          ", coordinator has " + FormatF64(context_.state->cover()));
    }
    worker->seq = seq;
    worker->cached_proposal.reset();
    return Status::OK();
  }

  /// Re-partitions the candidate range over the survivors and re-seats
  /// each of them from the committed prefix (checkpoint-resume over the
  /// wire). Workers that fail their re-init are dropped and the partition
  /// shrinks again; fails only when nobody is left.
  Status Rebalance() {
    for (;;) {
      std::vector<size_t> alive = AliveIndices();
      if (alive.empty()) {
        return Status::Internal(
            "distributed solve lost every worker (last: " + last_error_ +
            ")");
      }
      AssignShards(alive);
      m_rebalances_->Increment();
      PREFCOVER_LOG(Warning)
          << "dist: rebalancing " << context_.graph->NumNodes()
          << " candidate(s) over " << alive.size() << " worker(s)";
      std::vector<Status> seated(workers_.size(), Status::OK());
      FanOut(alive, [&](size_t idx) {
        seated[idx] = InitWorker(&workers_[idx]);
      });
      bool all_ok = true;
      for (size_t idx : alive) {
        if (!seated[idx].ok()) {
          MarkDead(idx, seated[idx]);
          all_ok = false;
        }
      }
      if (all_ok) return Status::OK();
    }
  }

  Result<CandidateProposal> ParseProposeReply(const std::string& reply,
                                              uint64_t expected_seq,
                                              EvaluatorCounters* tally) {
    auto args = ReplyArgs(reply, "propose");
    if (!args.has_value()) {
      return Status::FailedPrecondition("propose rejected: " + reply);
    }
    const KvArgs kv(*args);
    PREFCOVER_ASSIGN_OR_RETURN(uint64_t seq, kv.GetU64("seq"));
    if (seq != expected_seq) {
      return Status::FailedPrecondition("propose seq mismatch: " + reply);
    }
    return ParseProposalFields(kv, tally);
  }

  /// The shared proposal key/values (`found= [node= gain=] evals= ...`),
  /// as emitted by both the `propose` reply and the `commit` piggyback.
  Result<CandidateProposal> ParseProposalFields(const KvArgs& kv,
                                                EvaluatorCounters* tally) {
    PREFCOVER_ASSIGN_OR_RETURN(uint64_t found, kv.GetU64("found"));
    CandidateProposal proposal;
    if (found != 0) {
      PREFCOVER_ASSIGN_OR_RETURN(uint64_t node, kv.GetU64("node"));
      PREFCOVER_ASSIGN_OR_RETURN(double gain, kv.GetF64("gain"));
      proposal.found = true;
      proposal.node = static_cast<NodeId>(node);
      proposal.gain = gain;
    }
    PREFCOVER_ASSIGN_OR_RETURN(uint64_t evals, kv.GetU64("evals"));
    PREFCOVER_ASSIGN_OR_RETURN(uint64_t pops, kv.GetU64("pops"));
    PREFCOVER_ASSIGN_OR_RETURN(uint64_t stale, kv.GetU64("stale"));
    PREFCOVER_ASSIGN_OR_RETURN(uint64_t refills, kv.GetU64("refills"));
    tally->gain_evaluations += evals;
    tally->heap_pops += pops;
    tally->stale_refreshes += stale;
    tally->seed_refills += refills;
    return proposal;
  }

  Result<std::string> CallWorker(WorkerHandle& worker,
                                 const std::string& request) {
    m_bytes_sent_->Increment(request.size() + 1);
    Result<std::string> reply = worker.client->Call(request);
    if (reply.ok()) m_bytes_received_->Increment(reply->size() + 1);
    return reply;
  }

  /// Runs `fn(idx)` for every index, on the pool when one is configured
  /// (each index touches a distinct worker, so the tasks are
  /// independent), serially otherwise.
  template <typename Fn>
  void FanOut(const std::vector<size_t>& indices, Fn&& fn) {
    if (options_.pool == nullptr || indices.size() < 2) {
      for (size_t idx : indices) fn(idx);
      return;
    }
    for (size_t idx : indices) {
      options_.pool->Submit([&fn, idx] { fn(idx); });
    }
    options_.pool->WaitIdle();
  }

  std::vector<size_t> AliveIndices() const {
    std::vector<size_t> alive;
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].alive) alive.push_back(i);
    }
    return alive;
  }

  void MarkDead(size_t idx, const Status& cause) {
    PREFCOVER_LOG(Warning)
        << "dist: worker " << workers_[idx].endpoint.host << ":"
        << workers_[idx].endpoint.port
        << " declared dead: " << cause.ToString();
    workers_[idx].alive = false;
    last_error_ = cause.ToString();
    m_failures_->Increment();
  }

  EvaluatorContext context_;
  DistSolveOptions options_;
  const uint64_t digest_;
  const uint64_t opts_hash_;
  const std::string exclude_csv_;
  std::string simd_name_;
  std::vector<WorkerHandle> workers_;
  EvaluatorCounters tally_;
  std::string last_error_ = "no failures recorded";

  obs::Counter* m_rounds_;
  obs::Counter* m_proposals_;
  obs::Counter* m_commits_;
  obs::Counter* m_failures_;
  obs::Counter* m_rebalances_;
  obs::Counter* m_bytes_sent_;
  obs::Counter* m_bytes_received_;
  obs::Histogram* m_merge_seconds_;
};

}  // namespace

CandidateEvaluatorFactory MakeDistributedEvaluatorFactory(
    const DistSolveOptions& dist_options) {
  return [dist_options](const EvaluatorContext& context) {
    return DistributedCandidateEvaluator::Create(context, dist_options);
  };
}

Result<Solution> SolveGreedyDistributed(
    const PreferenceGraph& graph, size_t k, const GreedyOptions& options,
    const DistSolveOptions& dist_options) {
  return SolveGreedyWithEvaluator(graph, k, options,
                                  MakeDistributedEvaluatorFactory(
                                      dist_options),
                                  "greedy-dist");
}

}  // namespace dist
}  // namespace prefcover

#endif  // __unix__ || __APPLE__
