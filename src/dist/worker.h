// The worker half of the distributed sharded greedy solve: owns one
// contiguous candidate shard of the graph and answers the dist protocol
// (src/dist/protocol.h) — `init` rebuilds a full-graph CoverState plus a
// CelfShardEngine over the shard, `propose` runs bound-ordered lazy CELF
// locally and returns the shard's exact argmax, `commit` applies a
// committed winner (any shard's) so the local residuals track the global
// retained set.
//
// The worker is deliberately state-per-process, not state-per-connection:
// a coordinator whose connection dies mid-solve reconnects (the
// ResilientClient path) and finds its solve exactly where it left it —
// the commit sequence number plus the one-deep replay cache make retried
// `commit`s exactly-once, and `propose` is naturally repeatable.
//
// Threading: one session at a time. The CLI's dist-worker accept loop is
// serial (one coordinator per worker is the topology), so HandleLine
// needs no locking.

#ifndef PREFCOVER_DIST_WORKER_H_
#define PREFCOVER_DIST_WORKER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/candidate_evaluator.h"
#include "core/cover_state.h"
#include "graph/preference_graph.h"
#include "util/bitset.h"
#include "util/status.h"

namespace prefcover {
namespace dist {

/// \brief One worker's in-memory solve state, driven line-by-line.
/// Transport-agnostic: the CLI serves it over TCP via
/// serve::ServeLineSessionLoop, tests call HandleLine directly.
class DistWorker {
 public:
  /// The graph must outlive the worker (loaded once per process; `init`
  /// validates the coordinator's digest against it).
  explicit DistWorker(const PreferenceGraph* graph);
  ~DistWorker();

  /// Answers one protocol line (no newline). Sets *stop_session on
  /// `quit`/`shutdown`, *stop_server on `shutdown`. Malformed or
  /// out-of-sequence requests get `ERR ...` replies; the worker itself
  /// never enters a broken state (a bad `init` leaves it uninitialized,
  /// a bad `commit` leaves the previous state intact).
  std::string HandleLine(const std::string& line, bool* stop_session,
                         bool* stop_server);

  /// True after a successful `init`.
  bool initialized() const { return state_ != nullptr; }

  /// Commits applied since `init` (the replay sequence number).
  uint64_t seq() const { return seq_; }

 private:
  std::string HandleHello();
  std::string HandleInit(const std::string& args);
  std::string HandlePropose(const std::string& args);
  std::string HandleCommit(const std::string& args);
  std::string HandleCkpt();
  std::string HandleStats();

  // Runs the engine's (repeatable) Propose for the current round and
  // formats the shared proposal key/values (`found= [node= gain=]
  // evals= pops= stale= refills=`) used by both the `propose` reply and
  // the piggyback on the `commit` reply.
  std::string ProposalFields();

  const PreferenceGraph* graph_;
  // GraphDigest of *graph_, computed on the first `init` (O(n + m), so
  // cached for the rebalance re-inits).
  std::optional<uint64_t> graph_digest_;

  // Solve state; null until the first successful `init`.
  std::unique_ptr<CoverState> state_;
  Bitset excluded_;
  std::unique_ptr<CelfShardEngine> engine_;
  std::vector<NodeId> prefix_;  // every committed selection, in order
  uint64_t seq_ = 0;            // == prefix_.size()
  uint64_t k_ = 0;              // solve budget, bounds the piggyback
  std::string last_commit_reply_;  // one-deep replay cache for retries
  EvaluatorCounters totals_;       // cumulative since init, for `stats`
};

#if defined(__unix__) || defined(__APPLE__)

/// \brief Serves one DistWorker over TCP: binds `port` (0 = ephemeral),
/// prints `DIST_WORKER_PORT=<port>` on stdout (flushed, so a launcher
/// can parse it from a pipe), then accepts coordinator connections
/// serially — worker state persists across connections — until a
/// `shutdown` verb arrives. Returns only then (or on a listen error).
Status RunDistWorkerServer(const PreferenceGraph& graph, uint16_t port);

#endif  // __unix__ || __APPLE__

}  // namespace dist
}  // namespace prefcover

#endif  // PREFCOVER_DIST_WORKER_H_
