#include "dist/protocol.h"

#include <charconv>
#include <cstdio>

#include "util/string_util.h"

namespace prefcover {
namespace dist {

std::string FormatF64(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

KvArgs::KvArgs(std::string_view line_after_verb) {
  for (const std::string& token :
       SplitString(TrimWhitespace(line_after_verb), ' ')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;  // bare tokens are ignored
    entries_.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
}

bool KvArgs::Get(std::string_view key, std::string_view* value) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) {
      *value = v;
      return true;
    }
  }
  return false;
}

Result<uint64_t> KvArgs::GetU64(std::string_view key) const {
  std::string_view raw;
  if (!Get(key, &raw)) {
    return Status::InvalidArgument("missing argument: " + std::string(key));
  }
  // Full-range u64 (graph digests use every bit), so not ParseInt64.
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), value, 10);
  if (ec != std::errc() || ptr != raw.data() + raw.size()) {
    return Status::InvalidArgument("not a u64: " + std::string(key) + "=" +
                                   std::string(raw));
  }
  return value;
}

Result<double> KvArgs::GetF64(std::string_view key) const {
  std::string_view raw;
  if (!Get(key, &raw)) {
    return Status::InvalidArgument("missing argument: " + std::string(key));
  }
  return ParseDouble(raw);
}

Result<std::string> KvArgs::GetString(std::string_view key) const {
  std::string_view raw;
  if (!Get(key, &raw)) {
    return Status::InvalidArgument("missing argument: " + std::string(key));
  }
  return std::string(raw);
}

std::string FormatNodeCsv(std::span<const NodeId> nodes) {
  if (nodes.empty()) return "-";
  std::string out;
  out.reserve(nodes.size() * 8);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(nodes[i]);
  }
  return out;
}

Result<std::vector<NodeId>> ParseNodeCsv(std::string_view text) {
  std::vector<NodeId> nodes;
  if (text == "-" || text.empty()) return nodes;
  for (const std::string& token : SplitString(text, ',')) {
    PREFCOVER_ASSIGN_OR_RETURN(uint32_t id, ParseUint32(token));
    nodes.push_back(id);
  }
  return nodes;
}

}  // namespace dist
}  // namespace prefcover
