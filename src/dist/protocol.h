// Wire protocol of the distributed sharded greedy solve (DISTRIBUTED.md
// has the full narrative; this header is the normative grammar).
//
// Single-line, newline-terminated request/response exchanges over the
// serve transport (src/serve/transport.h) — the same framing, fault
// injection and `@<id>` multiplex tagging as the query protocol, served
// by the same ServeLineSessionLoop. All doubles travel as %.17g, which
// round-trips IEEE-754 binary64 exactly: the coordinator's merge compares
// bit-identical gain values, never re-derived ones.
//
// Verbs (coordinator -> worker):
//
//   hello
//     -> OK hello prefcover-dist v=1 nodes=<n>
//   init shard=<begin>:<end> variant=<name> k=<k> simd=<level>
//        seed_cap=<cap> digest=<u64> opts=<u64> exclude=<csv|->
//        prefix=<csv|->
//     Rebuilds worker state from scratch: a CoverState at <simd>, the
//     exclusion mask, the committed prefix replayed in order (the PR 4
//     checkpoint resume semantics — <digest>/<opts> are GraphDigest /
//     GreedyOptionsHash and the worker refuses a mismatched instance),
//     and a CelfShardEngine over [begin, end). Idempotent.
//     -> OK init seq=<P> cover=<f>
//   propose seq=<s>
//     The shard's exact (gain, id)-argmax for commit sequence <s>
//     (repeatable: proposing twice without a commit returns the same
//     answer). The reply carries the engine's drained work tallies so
//     the coordinator can fold them into SolverStats.
//     -> OK propose seq=<s> found=<0|1> [node=<v> gain=<f>]
//        evals=<u> pops=<u> stale=<u> refills=<u>
//   commit seq=<s> node=<v>
//     Applies round <s>'s committed winner (any shard's): AddNode +
//     engine round advance. Exactly-once with a replay window: seq == current
//     applies; seq == current-1 with the same node returns the cached
//     reply (a retry after a lost response); anything else is
//     ERR FailedPrecondition and the coordinator must re-init.
//     -> OK commit seq=<s+1> cover=<f>
//   ckpt
//     The worker's committed prefix, for coordinator cross-checks and
//     shard re-assignment.
//     -> OK ckpt seq=<P> prefix=<csv|->
//   stats
//     Cumulative work tallies since the last init.
//     -> OK stats seq=<P> evals=<u> pops=<u> stale=<u> refills=<u>
//   quit      ends this connection; worker state persists (a reconnect
//             resumes mid-solve — this is what makes ResilientClient
//             retries safe).
//   shutdown  ends the connection AND the worker process's accept loop.
//
// Errors are the serve protocol's `ERR <Code> <message>` lines.

#ifndef PREFCOVER_DIST_PROTOCOL_H_
#define PREFCOVER_DIST_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/preference_graph.h"
#include "util/status.h"

namespace prefcover {
namespace dist {

/// \brief Protocol version spoken by DistWorker; bumped on any breaking
/// grammar change.
inline constexpr int kProtocolVersion = 1;

/// \brief Names of the global `dist.*` instruments the coordinator
/// publishes (catalog in OBSERVABILITY.md).
namespace dist_metric {
inline constexpr char kRounds[] = "dist.rounds";
inline constexpr char kProposals[] = "dist.proposals";
inline constexpr char kCommits[] = "dist.commits";
inline constexpr char kWorkerFailures[] = "dist.worker_failures";
inline constexpr char kRebalances[] = "dist.rebalances";
inline constexpr char kBytesSent[] = "dist.bytes_sent";
inline constexpr char kBytesReceived[] = "dist.bytes_received";
/// Seconds histogram over one full propose fan-out + merge.
inline constexpr char kMergeSeconds[] = "dist.merge_seconds";
}  // namespace dist_metric

/// \brief %.17g — round-trips binary64 exactly (same formatter as the
/// serve protocol's probabilities).
std::string FormatF64(double value);

/// \brief `key=value` token accessor over a space-separated verb line.
/// Keys are unique per line in this protocol; the first match wins.
class KvArgs {
 public:
  /// Tokenizes everything after the verb word of `line`.
  explicit KvArgs(std::string_view line_after_verb);

  /// The raw value for `key`, or empty-not-found.
  bool Get(std::string_view key, std::string_view* value) const;

  /// Typed accessors: error when missing or malformed.
  Result<uint64_t> GetU64(std::string_view key) const;
  Result<double> GetF64(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// \brief Comma-separated node ids; "-" encodes the empty list (an empty
/// field would be indistinguishable from a missing key).
std::string FormatNodeCsv(std::span<const NodeId> nodes);
Result<std::vector<NodeId>> ParseNodeCsv(std::string_view text);

}  // namespace dist
}  // namespace prefcover

#endif  // PREFCOVER_DIST_PROTOCOL_H_
