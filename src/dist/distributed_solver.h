// The coordinator half of the distributed sharded greedy solve.
//
// SolveGreedyDistributed is the generic greedy driver
// (core/greedy_solver.h, SolveGreedyWithEvaluator) over
// DistributedCandidateEvaluator: candidates are partitioned into
// contiguous shards across worker processes, each worker runs
// bound-ordered lazy CELF over its shard against a full-graph residual
// state, and each round the coordinator merges the per-shard exact
// argmaxes — max gain, ties toward the smaller node id, the canonical
// tie-break — then broadcasts the committed winner. Because the max of
// per-shard exact argmaxes IS the global exact argmax (the GreeDIMM
// decomposition), the selection sequence is byte-identical to
// SolveGreedyLazy for any worker count.
//
// Failure model (asserted by tests/dist/dist_chaos_test.cc): each verb
// travels through serve::ResilientClient, so transient faults (injected
// via the net.* failpoints or real) are retried transparently — worker
// state persists across connections and `commit` is exactly-once, so a
// reconnect-retry is always safe. A worker that stays unreachable past
// the client's retry budget is declared dead; the coordinator then
// re-partitions the candidate range over the survivors and re-inits them
// from the committed prefix (the PR 4 checkpoint resume semantics, over
// the wire), and the round is retried. The solve fails only when every
// worker is gone.
//
// POSIX-only, like the serve transport it rides on.

#ifndef PREFCOVER_DIST_DISTRIBUTED_SOLVER_H_
#define PREFCOVER_DIST_DISTRIBUTED_SOLVER_H_

#if defined(__unix__) || defined(__APPLE__)

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/greedy_solver.h"
#include "core/solution.h"
#include "graph/preference_graph.h"
#include "serve/client.h"
#include "util/simd_dispatch.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace dist {

/// \brief Where one worker process listens.
struct DistWorkerEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// \brief Coordinator knobs.
struct DistSolveOptions {
  /// One entry per worker process; must be non-empty. Shards are assigned
  /// contiguously in this order.
  std::vector<DistWorkerEndpoint> workers;

  /// Kernel dispatch tier the workers solve at (every tier is
  /// bit-identical, so this is purely a performance knob). Parsed with
  /// ParseSimdLevel; empty = the workers' own default dispatch.
  std::string simd_level = "";

  /// Template for each worker's ResilientClient (host/port and a
  /// per-worker jitter seed are overridden). The defaults suit loopback;
  /// raise request_timeout_ms for solves whose init replays a long
  /// prefix.
  serve::ResilientClientOptions client;

  /// Fan-out pool for the per-round propose/commit broadcasts; nullptr
  /// degrades to a serial loop (same result, one RTT per worker).
  ThreadPool* pool = nullptr;

  /// Test seam: called at the top of every selection round with the
  /// number of selections committed so far. The chaos harness uses it to
  /// kill a worker mid-solve at a deterministic point.
  std::function<void(size_t committed)> on_round;
};

/// \brief Builds the coordinator-side CandidateEvaluator. Exposed for
/// composition with SolveGreedyWithEvaluator in tests; SolveGreedyDistributed
/// is the packaged entry point. Fails when no worker is reachable or an
/// init cross-check (instance digest, replayed cover) mismatches.
CandidateEvaluatorFactory MakeDistributedEvaluatorFactory(
    const DistSolveOptions& dist_options);

/// \brief Distributed sharded greedy. Byte-identical to SolveGreedyLazy
/// (items, cover curve, item contributions) for any worker count;
/// `Solution::stats.algorithm` is "greedy-dist".
Result<Solution> SolveGreedyDistributed(const PreferenceGraph& graph,
                                        size_t k,
                                        const GreedyOptions& options,
                                        const DistSolveOptions& dist_options);

}  // namespace dist
}  // namespace prefcover

#endif  // __unix__ || __APPLE__

#endif  // PREFCOVER_DIST_DISTRIBUTED_SOLVER_H_
