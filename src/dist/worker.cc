#include "dist/worker.h"

#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <cstdio>

#include "core/checkpoint.h"
#include "core/variant.h"
#include "dist/protocol.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/logging.h"
#include "util/simd_dispatch.h"
#include "util/string_util.h"

namespace prefcover {
namespace dist {

namespace {

std::string Err(Status status) {
  return serve::FormatErrorLine(status);
}

}  // namespace

DistWorker::DistWorker(const PreferenceGraph* graph) : graph_(graph) {}

DistWorker::~DistWorker() = default;

std::string DistWorker::HandleLine(const std::string& line,
                                   bool* stop_session, bool* stop_server) {
  const std::string_view trimmed = TrimWhitespace(line);
  const size_t space = trimmed.find(' ');
  const std::string_view verb =
      space == std::string_view::npos ? trimmed : trimmed.substr(0, space);
  const std::string args(
      space == std::string_view::npos ? std::string_view() :
                                        trimmed.substr(space + 1));
  if (verb == "hello") return HandleHello();
  if (verb == "init") return HandleInit(args);
  if (verb == "propose") return HandlePropose(args);
  if (verb == "commit") return HandleCommit(args);
  if (verb == "ckpt") return HandleCkpt();
  if (verb == "stats") return HandleStats();
  if (verb == "quit") {
    *stop_session = true;
    return "OK bye";
  }
  if (verb == "shutdown") {
    *stop_session = true;
    *stop_server = true;
    return "OK bye";
  }
  return Err(Status::InvalidArgument("unknown verb: " + std::string(verb)));
}

std::string DistWorker::HandleHello() {
  return "OK hello prefcover-dist v=" + std::to_string(kProtocolVersion) +
         " nodes=" + std::to_string(graph_->NumNodes());
}

std::string DistWorker::HandleInit(const std::string& args) {
  const KvArgs kv(args);
  const size_t n = graph_->NumNodes();

  // --- Parse and validate everything before touching member state, so a
  // bad init leaves the previous solve intact.
  std::string_view shard_raw;
  if (!kv.Get("shard", &shard_raw)) {
    return Err(Status::InvalidArgument("missing argument: shard"));
  }
  const size_t colon = shard_raw.find(':');
  if (colon == std::string_view::npos) {
    return Err(Status::InvalidArgument("shard must be <begin>:<end>"));
  }
  auto begin_or = ParseUint32(shard_raw.substr(0, colon));
  auto end_or = ParseUint32(shard_raw.substr(colon + 1));
  if (!begin_or.ok()) return Err(begin_or.status());
  if (!end_or.ok()) return Err(end_or.status());
  const size_t shard_begin = *begin_or;
  const size_t shard_end = *end_or;
  if (shard_begin > shard_end || shard_end > n) {
    return Err(Status::InvalidArgument("shard out of range"));
  }

  auto variant_name = kv.GetString("variant");
  if (!variant_name.ok()) return Err(variant_name.status());
  auto variant = ParseVariant(*variant_name);
  if (!variant.ok()) return Err(variant.status());

  auto simd_name = kv.GetString("simd");
  if (!simd_name.ok()) return Err(simd_name.status());
  SimdLevel level;
  if (!ParseSimdLevel(*simd_name, &level)) {
    return Err(Status::InvalidArgument("unknown simd level: " + *simd_name));
  }

  auto k = kv.GetU64("k");
  if (!k.ok()) return Err(k.status());
  auto seed_cap = kv.GetU64("seed_cap");
  if (!seed_cap.ok()) return Err(seed_cap.status());
  auto digest = kv.GetU64("digest");
  if (!digest.ok()) return Err(digest.status());
  auto opts = kv.GetU64("opts");
  if (!opts.ok()) return Err(opts.status());

  // The PR 4 resume semantics: refuse to rebuild against the wrong
  // instance. The graph digest is the worker-side check (each process
  // loaded its own copy of the graph); the options hash rides along so a
  // coordinator recovering from a worker's `ckpt` can cross-check it
  // against its own GreedyOptionsHash.
  if (!graph_digest_.has_value()) graph_digest_ = GraphDigest(*graph_);
  if (*digest != *graph_digest_) {
    return Err(Status::FailedPrecondition(
        "graph digest mismatch: coordinator solves a different instance"));
  }

  auto exclude_raw = kv.GetString("exclude");
  if (!exclude_raw.ok()) return Err(exclude_raw.status());
  auto exclude = ParseNodeCsv(*exclude_raw);
  if (!exclude.ok()) return Err(exclude.status());
  auto prefix_raw = kv.GetString("prefix");
  if (!prefix_raw.ok()) return Err(prefix_raw.status());
  auto prefix = ParseNodeCsv(*prefix_raw);
  if (!prefix.ok()) return Err(prefix.status());
  if (prefix->size() > *k) {
    return Err(Status::InvalidArgument("prefix longer than budget k"));
  }

  Bitset excluded(n);
  for (NodeId v : *exclude) {
    if (v >= n) {
      return Err(Status::InvalidArgument("exclude node out of range: " +
                                         std::to_string(v)));
    }
    excluded.Set(v);
  }

  auto state = std::make_unique<CoverState>(graph_, *variant, level);
  for (NodeId v : *prefix) {
    if (v >= n || state->IsRetained(v) || excluded.Test(v)) {
      return Err(Status::InvalidArgument("invalid prefix node: " +
                                         std::to_string(v)));
    }
    state->AddNode(v);
  }

  // --- Swap in the new solve.
  state_ = std::move(state);
  excluded_ = std::move(excluded);
  CelfShardEngine::Config config;
  config.shard_begin = shard_begin;
  config.shard_end = shard_end;
  config.seed_heap_capacity = static_cast<size_t>(*seed_cap);
  engine_ = std::make_unique<CelfShardEngine>(state_.get(), &excluded_,
                                              config);
  prefix_ = std::move(*prefix);
  seq_ = prefix_.size();
  k_ = *k;
  last_commit_reply_.clear();
  totals_ = EvaluatorCounters();

  return "OK init seq=" + std::to_string(seq_) +
         " cover=" + FormatF64(state_->cover());
}

std::string DistWorker::HandlePropose(const std::string& args) {
  if (!initialized()) {
    return Err(Status::FailedPrecondition("propose before init"));
  }
  const KvArgs kv(args);
  auto seq = kv.GetU64("seq");
  if (!seq.ok()) return Err(seq.status());
  if (*seq != seq_) {
    return Err(Status::FailedPrecondition(
        "propose seq " + std::to_string(*seq) + " != worker seq " +
        std::to_string(seq_)));
  }
  return "OK propose seq=" + std::to_string(seq_) + " " + ProposalFields();
}

std::string DistWorker::ProposalFields() {
  const CandidateProposal proposal = engine_->Propose();
  EvaluatorCounters tally;
  engine_->DrainCounters(&tally);
  EvaluatorCounters copy = tally;
  totals_.MergeFrom(&copy);

  std::string fields = std::string("found=") + (proposal.found ? "1" : "0");
  if (proposal.found) {
    fields += " node=" + std::to_string(proposal.node);
    fields += " gain=" + FormatF64(proposal.gain);
  }
  fields += " evals=" + std::to_string(tally.gain_evaluations);
  fields += " pops=" + std::to_string(tally.heap_pops);
  fields += " stale=" + std::to_string(tally.stale_refreshes);
  fields += " refills=" + std::to_string(tally.seed_refills);
  return fields;
}

std::string DistWorker::HandleCommit(const std::string& args) {
  if (!initialized()) {
    return Err(Status::FailedPrecondition("commit before init"));
  }
  const KvArgs kv(args);
  auto seq = kv.GetU64("seq");
  if (!seq.ok()) return Err(seq.status());
  auto node = kv.GetU64("node");
  if (!node.ok()) return Err(node.status());

  // Replay window: a retried commit whose original reply was lost in
  // transit (the ResilientClient reconnect path) is answered from cache
  // instead of re-applied — exactly-once application.
  if (*seq + 1 == seq_ && !prefix_.empty() && *node == prefix_.back() &&
      !last_commit_reply_.empty()) {
    return last_commit_reply_;
  }
  if (*seq != seq_) {
    return Err(Status::FailedPrecondition(
        "commit seq " + std::to_string(*seq) + " != worker seq " +
        std::to_string(seq_) + "; re-init required"));
  }
  const size_t n = graph_->NumNodes();
  if (*node >= n) {
    return Err(Status::InvalidArgument("commit node out of range"));
  }
  const NodeId v = static_cast<NodeId>(*node);
  if (state_->IsRetained(v)) {
    return Err(Status::FailedPrecondition(
        "commit node already retained: " + std::to_string(v)));
  }
  state_->AddNode(v);
  engine_->OnCommitted(v);
  prefix_.push_back(v);
  ++seq_;
  last_commit_reply_ = "OK commit seq=" + std::to_string(seq_) +
                       " cover=" + FormatF64(state_->cover());
  // Piggyback the next round's proposal on the commit reply so the
  // coordinator's steady-state round costs one fan-out barrier, not two.
  // Propose() is repeatable, so a coordinator that asks again anyway (or
  // replays this commit) sees the same bytes; skipping at seq_ == k
  // avoids proposing for a round the budget rules out.
  if (seq_ < k_) {
    last_commit_reply_ += " " + ProposalFields();
  }
  return last_commit_reply_;
}

std::string DistWorker::HandleCkpt() {
  if (!initialized()) {
    return Err(Status::FailedPrecondition("ckpt before init"));
  }
  return "OK ckpt seq=" + std::to_string(seq_) +
         " prefix=" + FormatNodeCsv(prefix_);
}

std::string DistWorker::HandleStats() {
  if (!initialized()) {
    return Err(Status::FailedPrecondition("stats before init"));
  }
  // Fold in anything the engine accumulated since the last propose so the
  // totals are current.
  engine_->DrainCounters(&totals_);
  return "OK stats seq=" + std::to_string(seq_) +
         " evals=" + std::to_string(totals_.gain_evaluations) +
         " pops=" + std::to_string(totals_.heap_pops) +
         " stale=" + std::to_string(totals_.stale_refreshes) +
         " refills=" + std::to_string(totals_.seed_refills);
}

#if defined(__unix__) || defined(__APPLE__)

Status RunDistWorkerServer(const PreferenceGraph& graph, uint16_t port) {
  serve::IgnoreSigpipe();
  PREFCOVER_ASSIGN_OR_RETURN(int listener, serve::ListenTcp(port));
  PREFCOVER_ASSIGN_OR_RETURN(uint16_t bound, serve::LocalPort(listener));
  std::printf("DIST_WORKER_PORT=%u\n", static_cast<unsigned>(bound));
  std::fflush(stdout);
  PREFCOVER_LOG(Info) << "dist-worker listening on port " << bound;

  DistWorker worker(&graph);
  bool keep_serving = true;
  while (keep_serving) {
    auto client = serve::AcceptClient(listener);
    if (!client.ok()) continue;  // transient (EINTR / injected) — retry
    keep_serving = serve::ServeLineSessionLoop(
        *client, [&worker](const std::string& line, bool* stop_session,
                           bool* stop_server) {
          return worker.HandleLine(line, stop_session, stop_server);
        });
  }
  ::close(listener);
  return Status::OK();
}

#endif  // __unix__ || __APPLE__

}  // namespace dist
}  // namespace prefcover
