#include "util/timer.h"

#include <cstdio>

namespace prefcover {

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

std::string FormatCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i >= lead && (i - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace prefcover
