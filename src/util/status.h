// Status / Result<T> error model, in the style of RocksDB and Apache Arrow.
//
// Library code never throws across public API boundaries: fallible
// operations return Status (no payload) or Result<T> (payload or error).

#ifndef PREFCOVER_UTIL_STATUS_H_
#define PREFCOVER_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace prefcover {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kCancelled,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation with no payload.
///
/// An OK status carries no allocation. Non-OK statuses carry a code and a
/// message. Statuses are cheap to move and to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or a non-OK Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;` inside a Result<int> function.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. The status must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Error status; Status::OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define PREFCOVER_RETURN_NOT_OK(expr)              \
  do {                                             \
    ::prefcover::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Evaluates a Result expression; assigns the value to `lhs` or returns the
/// error. `lhs` may be a declaration (`auto x`).
#define PREFCOVER_ASSIGN_OR_RETURN(lhs, rexpr)            \
  PREFCOVER_ASSIGN_OR_RETURN_IMPL_(                       \
      PREFCOVER_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define PREFCOVER_CONCAT_INNER_(a, b) a##b
#define PREFCOVER_CONCAT_(a, b) PREFCOVER_CONCAT_INNER_(a, b)
#define PREFCOVER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                     \
  if (!tmp.ok()) return tmp.status();                     \
  lhs = std::move(tmp).value()

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_STATUS_H_
