#include "util/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

#include "util/logging.h"

namespace prefcover {

std::string_view SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kWord:
      return "word";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseSimdLevel(std::string_view name, SimdLevel* level) {
  if (name == "scalar") {
    *level = SimdLevel::kScalar;
    return true;
  }
  if (name == "word") {
    *level = SimdLevel::kWord;
    return true;
  }
  if (name == "avx2") {
    *level = SimdLevel::kAvx2;
    return true;
  }
  return false;
}

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel MaxSupportedSimdLevel() {
#if defined(PREFCOVER_HAVE_AVX2)
  if (CpuSupportsAvx2()) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kWord;
}

SimdResolution ResolveSimdLevel(const char* env_value,
                                SimdLevel max_supported) {
  SimdResolution resolution;
  resolution.level = max_supported;
  if (env_value == nullptr || env_value[0] == '\0') return resolution;
  SimdLevel requested;
  if (!ParseSimdLevel(env_value, &requested)) {
    resolution.warning =
        std::string("PREFCOVER_SIMD_LEVEL='") + env_value +
        "' is not scalar|word|avx2; using " +
        std::string(SimdLevelName(max_supported));
    return resolution;
  }
  if (requested > max_supported) {
    resolution.warning =
        std::string("PREFCOVER_SIMD_LEVEL=") +
        std::string(SimdLevelName(requested)) +
        " is not supported by this build/CPU; falling back to " +
        std::string(SimdLevelName(max_supported));
    return resolution;
  }
  resolution.level = requested;
  return resolution;
}

namespace {

// Cached active level: -1 until first resolution. Resolution is
// idempotent, so a benign first-call race costs at most a duplicate log
// line.
std::atomic<int> g_active_level{-1};

SimdLevel ResolveActiveFromEnv() {
  SimdResolution resolution = ResolveSimdLevel(
      std::getenv("PREFCOVER_SIMD_LEVEL"), MaxSupportedSimdLevel());
  if (!resolution.warning.empty()) {
    PREFCOVER_LOG(Warning) << resolution.warning;
  }
  return resolution.level;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  int cached = g_active_level.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<SimdLevel>(cached);
  SimdLevel level = ResolveActiveFromEnv();
  g_active_level.store(static_cast<int>(level), std::memory_order_release);
  return level;
}

void ReinitActiveSimdLevelForTest() {
  g_active_level.store(static_cast<int>(ResolveActiveFromEnv()),
                       std::memory_order_release);
}

}  // namespace prefcover
