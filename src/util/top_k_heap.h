// Bounded top-k selection by score.
//
// Used by the TopK-W / TopK-C baselines: streams (id, score) pairs and keeps
// the k best, with deterministic smaller-id tie-breaking to match the
// solvers' argmax rule.

#ifndef PREFCOVER_UTIL_TOP_K_HEAP_H_
#define PREFCOVER_UTIL_TOP_K_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

namespace prefcover {

/// \brief Keeps the k highest-scoring (id, score) entries seen.
///
/// Ordering: higher score wins; equal scores prefer the smaller id. O(log k)
/// per Push, O(k log k) extraction.
class TopKHeap {
 public:
  struct Entry {
    uint32_t id;
    double score;
  };

  explicit TopKHeap(size_t k) : k_(k) {}

  void Push(uint32_t id, double score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({id, score});
      std::push_heap(heap_.begin(), heap_.end(), WorseOnTop);
      return;
    }
    // heap_.front() is the current worst of the kept set.
    if (Better({id, score}, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), WorseOnTop);
      heap_.back() = {id, score};
      std::push_heap(heap_.begin(), heap_.end(), WorseOnTop);
    }
  }

  /// Entries sorted best-first. Leaves the heap empty.
  std::vector<Entry> Extract() {
    std::sort(heap_.begin(), heap_.end(),
              [](const Entry& a, const Entry& b) { return Better(a, b); });
    return std::move(heap_);
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

 private:
  /// True when a should rank ahead of b in the final order.
  static bool Better(const TopKHeap::Entry& a, const TopKHeap::Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }

  /// Min-heap comparator: keep the worst entry on top for O(1) eviction.
  static bool WorseOnTop(const Entry& a, const Entry& b) {
    return Better(a, b);
  }

  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_TOP_K_HEAP_H_
