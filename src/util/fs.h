// Crash-safe filesystem helpers.
//
// WriteFileAtomic gives all-or-nothing file replacement: readers (and a
// process restarted after a crash) observe either the complete previous
// contents or the complete new contents, never a torn prefix. The
// mechanism is the classic temp-file dance — write to `<path>.tmp.<pid>`
// in the same directory, fsync the file, rename(2) over the target, then
// fsync the directory so the rename itself survives a power cut.
//
// Every durable artifact the project emits (binary graphs, checkpoints,
// bench JSON, trace/metrics exports, solution CSVs) routes through this
// call; see ROBUSTNESS.md.

#ifndef PREFCOVER_UTIL_FS_H_
#define PREFCOVER_UTIL_FS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "util/status.h"

namespace prefcover {

/// \brief Atomically replaces `path` with `contents`.
///
/// On any failure the target is left untouched and the temp file is
/// removed. The rename is atomic only within one filesystem, which the
/// same-directory temp file guarantees.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// \brief Streaming variant: `writer` produces the contents into an
/// ostream (e.g. WriteGraphBinary). The payload is staged in memory, then
/// committed via the string overload — callers trade peak memory for the
/// atomicity guarantee.
Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer);

/// \brief Reads a whole file into a string (binary, no translation).
Result<std::string> ReadFileToString(const std::string& path);

/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes.
/// Chainable: pass a previous digest as `seed` to extend it.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_FS_H_
