#include "util/thread_pool.h"

#include <utility>

#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace prefcover {

ThreadPool::ThreadPool(size_t num_threads)
    : queue_depth_(obs::MetricsRegistry::Global().GetGauge(
          "pool.queue_depth")),
      tasks_executed_(obs::MetricsRegistry::Global().GetCounter(
          "pool.tasks_executed")),
      task_seconds_(obs::MetricsRegistry::Global().GetHistogram(
          "pool.task_seconds", obs::LatencyBucketsSeconds())) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  queue_depth_->Add(1);
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_->Add(-1);
    {
      obs::Span span("pool.task", "pool");
      Stopwatch watch;
      // Fault-injection site: `pool.task=delay(Nms)` stretches every task
      // dispatch, exercising cancellation under a slow pool.
      PREFCOVER_FAILPOINT("pool.task");
      task();
      task_seconds_->Record(watch.ElapsedSeconds());
    }
    tasks_executed_->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace prefcover
