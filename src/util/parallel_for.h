// Blocking data-parallel loop over an index range.
//
// ParallelFor partitions [begin, end) into contiguous chunks, one batch per
// worker, and blocks until all complete. This is the exact parallelization
// the paper describes for the greedy solver: per-iteration candidate gain
// scans are independent and are evaluated concurrently.

#ifndef PREFCOVER_UTIL_PARALLEL_FOR_H_
#define PREFCOVER_UTIL_PARALLEL_FOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>

#include "util/thread_pool.h"

namespace prefcover {

/// \brief Runs `body(chunk_begin, chunk_end, worker_index)` over a partition
/// of [begin, end) using `pool`. Blocks until all chunks complete.
///
/// `worker_index` is in [0, num_chunks) and is distinct per chunk, so the
/// body may accumulate into per-worker slots without synchronization.
/// If `pool` is nullptr the loop runs inline as a single chunk.
void ParallelForChunked(
    ThreadPool* pool, size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& body);

/// \brief Element-wise convenience wrapper: `body(i)` for i in [begin, end).
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

/// \brief Parallel argmax-by-score over [0, n).
///
/// `score(i)` returns the candidate's value; elements with score equal to
/// -infinity are skipped. Ties break toward the smaller index, matching the
/// deterministic tie-break rule used by every solver. Returns n if every
/// element was skipped.
size_t ParallelArgMax(ThreadPool* pool, size_t n,
                      const std::function<double(size_t)>& score,
                      double* best_score);

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_PARALLEL_FOR_H_
