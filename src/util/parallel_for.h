// Blocking data-parallel loop over an index range.
//
// ParallelFor partitions [begin, end) into contiguous chunks, one batch per
// worker, and blocks until all complete. This is the exact parallelization
// the paper describes for the greedy solver: per-iteration candidate gain
// scans are independent and are evaluated concurrently.

#ifndef PREFCOVER_UTIL_PARALLEL_FOR_H_
#define PREFCOVER_UTIL_PARALLEL_FOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace prefcover {

/// \brief Runs `body(chunk_begin, chunk_end, worker_index)` over a partition
/// of [begin, end) using `pool`. Blocks until all chunks complete.
///
/// `worker_index` is in [0, num_chunks) and is distinct per chunk, so the
/// body may accumulate into per-worker slots without synchronization.
/// If `pool` is nullptr the loop runs inline as a single chunk.
///
/// Cancellation is cooperative and chunk-granular: when `cancel` is non-null
/// and trips, chunks that have not *started* are skipped entirely (a running
/// chunk always finishes — no mid-task aborts). The call still blocks until
/// every chunk has started-and-finished or been skipped. Skipped chunks
/// leave their outputs untouched, so after a cancelled call the results are
/// INCOMPLETE — the caller must re-check the token and discard them.
void ParallelForChunked(
    ThreadPool* pool, size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& body,
    const CancelToken* cancel = nullptr);

/// \brief Element-wise convenience wrapper: `body(i)` for i in [begin, end).
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 const CancelToken* cancel = nullptr);

/// \brief Parallel argmax-by-score over [0, n).
///
/// `score(i)` returns the candidate's value; elements with score equal to
/// -infinity are skipped. Ties break toward the smaller index, matching the
/// deterministic tie-break rule used by every solver. Returns n if every
/// element was skipped — including when `cancel` tripped before any chunk
/// scored (cancelled calls may return an argmax over a subset; re-check the
/// token before trusting the result).
size_t ParallelArgMax(ThreadPool* pool, size_t n,
                      const std::function<double(size_t)>& score,
                      double* best_score,
                      const CancelToken* cancel = nullptr);

/// \brief Batched variant of ParallelArgMax over an explicit candidate
/// list (the batched-CELF re-evaluation primitive).
///
/// Evaluates `score(candidates[j])` for every j concurrently. If `scores`
/// is non-null it is resized to `candidates.size()` and receives every
/// evaluated score, so the caller can reinsert refreshed heap entries.
///
/// Returns the *position* j of the best candidate, or `candidates.size()`
/// when the list is empty or every score is -infinity. Ties break toward
/// the smaller candidate *value* (not position) — candidates may arrive in
/// arbitrary (e.g. heap-pop) order, and the solvers' deterministic rule is
/// "smaller node id wins", independent of evaluation order or thread
/// count.
size_t ParallelArgMaxBatch(ThreadPool* pool,
                           const std::vector<size_t>& candidates,
                           const std::function<double(size_t)>& score,
                           std::vector<double>* scores,
                           double* best_score,
                           const CancelToken* cancel = nullptr);

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_PARALLEL_FOR_H_
