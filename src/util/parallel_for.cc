#include "util/parallel_for.h"

#include <limits>
#include <vector>

#include "obs/trace.h"

namespace prefcover {

void ParallelForChunked(
    ThreadPool* pool, size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& body,
    const CancelToken* cancel) {
  if (begin >= end) return;
  if (cancel != nullptr && cancel->IsCancelled()) return;
  const size_t n = end - begin;
  const size_t num_workers = pool == nullptr ? 1 : pool->num_threads();
  if (num_workers <= 1 || n == 1) {
    body(begin, end, 0);
    return;
  }
  const size_t num_chunks = n < num_workers ? n : num_workers;
  obs::Span dispatch_span("pool.parallel_for", "pool");
  dispatch_span.Arg("items", static_cast<uint64_t>(n));
  dispatch_span.Arg("chunks", static_cast<uint64_t>(num_chunks));
  const size_t base = n / num_chunks;
  const size_t extra = n % num_chunks;

  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = num_chunks;

  size_t chunk_begin = begin;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t chunk_size = base + (c < extra ? 1 : 0);
    const size_t chunk_end = chunk_begin + chunk_size;
    pool->Submit([&, chunk_begin, chunk_end, c] {
      // Cooperative cancellation: a chunk that has not started when the
      // token trips is skipped whole; a started chunk always completes.
      if (cancel == nullptr || !cancel->IsCancelled()) {
        obs::Span chunk_span("pool.chunk", "pool");
        chunk_span.Arg("lo", static_cast<uint64_t>(chunk_begin));
        chunk_span.Arg("hi", static_cast<uint64_t>(chunk_end));
        body(chunk_begin, chunk_end, c);
      }
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done_cv.notify_one();
    });
    chunk_begin = chunk_end;
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 const CancelToken* cancel) {
  ParallelForChunked(
      pool, begin, end,
      [&body](size_t lo, size_t hi, size_t /*worker*/) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      cancel);
}

size_t ParallelArgMax(ThreadPool* pool, size_t n,
                      const std::function<double(size_t)>& score,
                      double* best_score, const CancelToken* cancel) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const size_t num_workers = pool == nullptr ? 1 : pool->num_threads();
  const size_t num_slots = num_workers < n ? num_workers : (n > 0 ? n : 1);
  std::vector<double> local_best(num_slots, kNegInf);
  std::vector<size_t> local_arg(num_slots, n);

  ParallelForChunked(pool, 0, n,
                     [&](size_t lo, size_t hi, size_t worker) {
                       double best = kNegInf;
                       size_t arg = n;
                       for (size_t i = lo; i < hi; ++i) {
                         double s = score(i);
                         if (s > best) {
                           best = s;
                           arg = i;
                         }
                       }
                       local_best[worker] = best;
                       local_arg[worker] = arg;
                     },
                     cancel);

  double best = kNegInf;
  size_t arg = n;
  for (size_t w = 0; w < num_slots; ++w) {
    // Chunks are contiguous and ascending, so the first strictly-better
    // slot wins and ties resolve to the smaller index.
    if (local_arg[w] != n && local_best[w] > best) {
      best = local_best[w];
      arg = local_arg[w];
    }
  }
  if (best_score != nullptr) *best_score = best;
  return arg;
}

size_t ParallelArgMaxBatch(ThreadPool* pool,
                           const std::vector<size_t>& candidates,
                           const std::function<double(size_t)>& score,
                           std::vector<double>* scores,
                           double* best_score, const CancelToken* cancel) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const size_t m = candidates.size();
  if (scores != nullptr) scores->assign(m, kNegInf);

  const size_t num_workers = pool == nullptr ? 1 : pool->num_threads();
  const size_t num_slots = num_workers < m ? num_workers : (m > 0 ? m : 1);
  std::vector<double> local_best(num_slots, kNegInf);
  std::vector<size_t> local_arg(num_slots, m);

  ParallelForChunked(pool, 0, m,
                     [&](size_t lo, size_t hi, size_t worker) {
                       double best = kNegInf;
                       size_t arg = m;
                       for (size_t j = lo; j < hi; ++j) {
                         double s = score(candidates[j]);
                         if (scores != nullptr) (*scores)[j] = s;
                         // Candidates are in arbitrary order, so ties must
                         // compare the candidate values themselves.
                         if (s > best ||
                             (s == best && arg != m &&
                              candidates[j] < candidates[arg])) {
                           best = s;
                           arg = j;
                         }
                       }
                       local_best[worker] = best;
                       local_arg[worker] = arg;
                     },
                     cancel);

  double best = kNegInf;
  size_t arg = m;
  for (size_t w = 0; w < num_slots; ++w) {
    if (local_arg[w] == m) continue;
    if (local_best[w] > best ||
        (local_best[w] == best && arg != m &&
         candidates[local_arg[w]] < candidates[arg])) {
      best = local_best[w];
      arg = local_arg[w];
    }
  }
  if (best_score != nullptr) *best_score = best;
  return arg;
}

}  // namespace prefcover
