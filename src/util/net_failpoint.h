// Fault-injectable wrappers around the POSIX socket calls.
//
// Every socket syscall in the serving stack (src/serve/transport,
// src/serve/client, the CLI serve loop) goes through these wrappers
// instead of calling read(2)/write(2)/accept(2)/connect(2) directly, so
// a chaos run can inject network faults from the environment without
// touching the kernel:
//
//   PREFCOVER_FAILPOINTS="net.read=error(0.02,11);net.accept=every(20)"
//
// Sites (all inert unless armed; see util/failpoint.h for the action
// grammar — the probabilistic error(p,seed) / every(N) modes make chaos
// runs reproducible):
//
//   net.accept       accept() fails with ECONNABORTED (a transient error
//                    a correct accept loop must retry, not exit on)
//   net.connect      connect() fails with ECONNREFUSED
//   net.read         read() fails with ECONNRESET (peer vanished)
//   net.read.short   read() returns at most 1 byte (pathological framing:
//                    every protocol line arrives one byte at a time)
//   net.write        write() fails with EPIPE (peer closed mid-response)
//   net.write.short  write() accepts at most 1 byte (forces the caller's
//                    short-write retry loop to actually loop)
//   net.conn_kill    the connection is shut down *before* the call — the
//                    peer sees a mid-response hangup, the caller sees
//                    ECONNRESET
//
// delay(Nms) on any site sleeps before the syscall (latency jitter).
//
// When the failpoint harness is compiled out
// (-DPREFCOVER_ENABLE_FAILPOINTS=OFF) each wrapper is the bare syscall
// plus one inlined always-false branch.

#ifndef PREFCOVER_UTIL_NET_FAILPOINT_H_
#define PREFCOVER_UTIL_NET_FAILPOINT_H_

#if defined(__unix__) || defined(__APPLE__)

#include <sys/socket.h>
#include <sys/types.h>

namespace prefcover {
namespace net {

/// \brief read(2) with `net.read` / `net.read.short` / `net.conn_kill`
/// injection. Returns the syscall result; injected failures set errno.
ssize_t FaultyRead(int fd, void* buf, size_t count);

/// \brief write(2) with `net.write` / `net.write.short` / `net.conn_kill`
/// injection.
ssize_t FaultyWrite(int fd, const void* buf, size_t count);

/// \brief accept(2) with `net.accept` injection (ECONNABORTED).
int FaultyAccept(int fd, struct sockaddr* addr, socklen_t* addrlen);

/// \brief connect(2) with `net.connect` injection (ECONNREFUSED).
int FaultyConnect(int fd, const struct sockaddr* addr, socklen_t addrlen);

}  // namespace net
}  // namespace prefcover

#endif  // __unix__ || __APPLE__

#endif  // PREFCOVER_UTIL_NET_FAILPOINT_H_
