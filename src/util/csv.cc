#include "util/csv.h"

#include <istream>
#include <ostream>

namespace prefcover {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool field_was_quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty() || field_was_quoted) {
        return Status::InvalidArgument(
            "unexpected quote inside unquoted field");
      }
      in_quotes = true;
      field_was_quoted = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
      field_was_quoted = false;
      ++i;
      continue;
    }
    if (field_was_quoted) {
      return Status::InvalidArgument("characters after closing quote");
    }
    current += c;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delimiter) {
  std::string out;
  for (size_t f = 0; f < fields.size(); ++f) {
    if (f > 0) out += delimiter;
    const std::string& field = fields[f];
    bool needs_quotes = false;
    for (char c : field) {
      if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
        needs_quotes = true;
        break;
      }
    }
    if (!needs_quotes) {
      out += field;
      continue;
    }
    out += '"';
    for (char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  }
  return out;
}

CsvReader::CsvReader(std::istream* input, char delimiter)
    : input_(input), delimiter_(delimiter) {}

bool CsvReader::Next(std::vector<std::string>* fields) {
  if (!status_.ok()) return false;
  std::string record;
  bool have_any = false;
  // Accumulate physical lines until quotes balance, to support embedded
  // newlines inside quoted fields.
  for (;;) {
    std::string line;
    if (!std::getline(*input_, line)) break;
    have_any = true;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!record.empty()) record += '\n';
    record += line;
    size_t quote_count = 0;
    for (char c : record) {
      if (c == '"') ++quote_count;
    }
    if (quote_count % 2 == 0) break;
  }
  if (!have_any) return false;
  ++record_number_;
  auto parsed = ParseCsvLine(record, delimiter_);
  if (!parsed.ok()) {
    status_ = Status::InvalidArgument("record " +
                                      std::to_string(record_number_) + ": " +
                                      parsed.status().message());
    return false;
  }
  *fields = std::move(parsed).value();
  return true;
}

CsvWriter::CsvWriter(std::ostream* output, char delimiter)
    : output_(output), delimiter_(delimiter) {}

void CsvWriter::WriteRecord(const std::vector<std::string>& fields) {
  *output_ << FormatCsvLine(fields, delimiter_) << '\n';
  ++records_written_;
}

}  // namespace prefcover
