// Deterministic random number generation for workload synthesis.
//
// All randomness in the library flows through Rng so that datasets,
// experiments and tests are reproducible from a single seed. The core
// generator is SplitMix64-seeded xoshiro256**, which is fast, high quality
// and trivially portable (unlike std::mt19937 whose streams differ across
// standard library implementations for some distributions).

#ifndef PREFCOVER_UTIL_RANDOM_H_
#define PREFCOVER_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace prefcover {

/// \brief Seeded pseudo-random generator (xoshiro256**) with the
/// distributions the library needs.
class Rng {
 public:
  /// Seeds the stream; equal seeds produce equal streams on all platforms.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0. Unbiased (rejection method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller (no cached spare; stream stays simple).
  double NextGaussian();

  /// Exponential with rate lambda > 0.
  double NextExponential(double lambda);

  /// Poisson with mean lambda >= 0 (Knuth for small lambda, normal
  /// approximation for large).
  uint64_t NextPoisson(double lambda);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Sample m distinct indices from [0, n) (order unspecified).
  /// Requires m <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t m);

  /// A new independent generator split off this one (jump-free: reseeds from
  /// the parent stream, which is sufficient for workload generation).
  Rng Split();

 private:
  uint64_t state_[4];
};

/// \brief Zipf(s, n) sampler over ranks {0, .., n-1}; rank r has probability
/// proportional to 1/(r+1)^s.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, O(1) per
/// sample after O(1) setup, exact for any s >= 0 (s == 0 degenerates to
/// uniform).
class ZipfDistribution {
 public:
  ZipfDistribution(uint32_t n, double s);

  uint32_t Sample(Rng* rng) const;

  uint32_t n() const { return n_; }
  double s() const { return s_; }

  /// Exact probability mass of rank r (for tests and weight assignment).
  double Pmf(uint32_t rank) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint32_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double normalizer_;  // sum of 1/(r+1)^s, for Pmf
};

/// \brief Draws indices proportionally to a fixed weight vector in O(1)
/// per sample (Walker/Vose alias method).
class AliasSampler {
 public:
  /// Weights must be nonnegative with a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  uint32_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_RANDOM_H_
