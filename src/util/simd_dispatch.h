// Runtime SIMD dispatch for the coverage kernels (core/coverage_kernels.h).
//
// Three levels, strictly ordered by capability:
//   kScalar — the literal reference loops, retained as the oracle every
//             faster path is differentially tested against;
//   kWord   — portable branchless kernels over the packed bitset /
//             structure-of-arrays layout (no intrinsics, any target);
//   kAvx2   — AVX2 gather/multiply kernels, compiled only when the build
//             enables them (PREFCOVER_HAVE_AVX2) and selected only when
//             the CPU reports AVX2 at runtime.
//
// The active level is resolved once per process: the highest level both
// built and supported by the CPU, unless the PREFCOVER_SIMD_LEVEL
// environment variable (scalar|word|avx2) overrides it. An override the
// build or CPU cannot honor falls back to the highest supported level
// with one warning — the override is a test/CI hook, never a correctness
// switch (every level is byte-identical by construction and by the
// differential suite in tests/core/coverage_kernels_test.cc).

#ifndef PREFCOVER_UTIL_SIMD_DISPATCH_H_
#define PREFCOVER_UTIL_SIMD_DISPATCH_H_

#include <string>
#include <string_view>

namespace prefcover {

/// \brief Kernel implementation tier, ordered by capability.
enum class SimdLevel : int {
  kScalar = 0,
  kWord = 1,
  kAvx2 = 2,
};

/// "scalar" / "word" / "avx2".
std::string_view SimdLevelName(SimdLevel level);

/// Parses a level name (case-sensitive, as accepted by
/// PREFCOVER_SIMD_LEVEL); false on anything else.
bool ParseSimdLevel(std::string_view name, SimdLevel* level);

/// True when the CPU this process runs on reports AVX2. Independent of
/// whether the AVX2 kernels were compiled in.
bool CpuSupportsAvx2();

/// Highest level this process can execute: kAvx2 when the AVX2 kernels
/// are built (PREFCOVER_HAVE_AVX2) and the CPU supports them, else kWord
/// (always available — the word kernels are portable C++).
SimdLevel MaxSupportedSimdLevel();

/// \brief Outcome of resolving a requested level against what the
/// process supports; pure and deterministic, exposed for tests.
struct SimdResolution {
  SimdLevel level;
  /// Non-empty when the request could not be honored verbatim (unknown
  /// name, or a level above max_supported); describes the fallback.
  std::string warning;
};

/// Resolves `env_value` (the PREFCOVER_SIMD_LEVEL setting, or nullptr /
/// empty for "no override") against `max_supported`. An explicit valid
/// level at or below `max_supported` is honored exactly — including
/// kScalar and kWord on an AVX2 machine; anything else falls back to
/// `max_supported` with a warning.
SimdResolution ResolveSimdLevel(const char* env_value,
                                SimdLevel max_supported);

/// The process-wide active level: resolved from the environment on first
/// call (logging the fallback warning, if any, once) and cached.
SimdLevel ActiveSimdLevel();

/// Re-reads PREFCOVER_SIMD_LEVEL and replaces the cached level. Test
/// hook: lets a test setenv() and assert the override is honored without
/// spawning a subprocess.
void ReinitActiveSimdLevelForTest();

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_SIMD_DISPATCH_H_
