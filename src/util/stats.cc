#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace prefcover {

void SummaryStats::Add(double value) {
  ++count_;
  sum_ += value;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge update.
  double delta = other.mean_ - mean_;
  uint64_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
  sum_ += other.sum_;
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::Quantile(double q) {
  if (values_.empty()) return std::nan("");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return values_.front();
  if (q >= 1.0) return values_.back();
  double pos = q * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), buckets_(num_buckets, 0) {
  PREFCOVER_CHECK(hi > lo);
  PREFCOVER_CHECK(num_buckets > 0);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
  size_t b = static_cast<size_t>((value - lo_) / width);
  if (b >= buckets_.size()) b = buckets_.size() - 1;  // fp edge
  ++buckets_[b];
}

double Histogram::bucket_lo(size_t bucket) const {
  double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
  return lo_ + width * static_cast<double>(bucket);
}

std::string Histogram::ToString(size_t max_bar_width) const {
  uint64_t peak = 1;
  for (uint64_t c : buckets_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (size_t b = 0; b < buckets_.size(); ++b) {
    size_t bar = static_cast<size_t>(
        static_cast<double>(buckets_[b]) /
        static_cast<double>(peak) * static_cast<double>(max_bar_width));
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %8llu ",
                  bucket_lo(b), bucket_lo(b + 1),
                  static_cast<unsigned long long>(buckets_[b]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "underflow: %llu\n",
                  static_cast<unsigned long long>(underflow_));
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "overflow: %llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace prefcover
