// Dynamic bitset used for retained-set membership tests in the solvers.
//
// std::vector<bool> would work but its proxy references pessimize hot loops;
// this fixed-word implementation keeps Test/Set branch-free and inlineable.

#ifndef PREFCOVER_UTIL_BITSET_H_
#define PREFCOVER_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prefcover {

/// \brief Fixed-size bitset sized at construction.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  void Reset() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  size_t size() const { return num_bits_; }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_BITSET_H_
