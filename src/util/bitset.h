// Dynamic bitset used for retained-set membership tests in the solvers
// and as the packed per-node flag layout of the coverage kernels.
//
// std::vector<bool> would work but its proxy references pessimize hot
// loops; this fixed-word implementation keeps Test/Set branch-free and
// inlineable, and exposes the raw 64-bit words so word-parallel callers
// (candidate enumeration, the SIMD kernels' retained-bit gathers) can
// process 64 nodes per load instead of one.
//
// Invariant: bits at positions >= size() inside the last word are zero —
// WordAt can be consumed without re-masking the tail, and Count/
// ForEachSetBit never see ghost bits.

#ifndef PREFCOVER_UTIL_BITSET_H_
#define PREFCOVER_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prefcover {

/// \brief Fixed-size bitset sized at construction.
class Bitset {
 public:
  /// Bits per storage word; positions map as i -> (word i/64, bit i%64).
  static constexpr size_t kWordBits = 64;

  Bitset() = default;
  explicit Bitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  void Reset() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  size_t size() const { return num_bits_; }

  /// Number of 64-bit storage words ((size() + 63) / 64).
  size_t NumWords() const { return words_.size(); }

  /// Raw word w (bits [64w, 64w+64) of the set; tail bits are zero).
  uint64_t WordAt(size_t w) const { return words_[w]; }

  /// Word base pointer for gather-style access; nullptr when empty.
  const uint64_t* WordData() const {
    return words_.empty() ? nullptr : words_.data();
  }

  /// Calls fn(i) for every set bit, in increasing position order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        fn(w * kWordBits + static_cast<size_t>(b));
      }
    }
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_BITSET_H_
