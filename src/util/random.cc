#include "util/random.h"

#include <cmath>
#include <numbers>

namespace prefcover {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PREFCOVER_DCHECK(bound > 0);
  // Lemire-style rejection: accept only values below the largest multiple of
  // bound, so every residue is equally likely.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  PREFCOVER_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; u1 is kept away from 0 to avoid log(0).
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextExponential(double lambda) {
  PREFCOVER_DCHECK(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

uint64_t Rng::NextPoisson(double lambda) {
  PREFCOVER_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double limit = std::exp(-lambda);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for workload
  // synthesis at large means.
  double g = lambda + std::sqrt(lambda) * NextGaussian() + 0.5;
  if (g < 0.0) return 0;
  return static_cast<uint64_t>(g);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t m) {
  PREFCOVER_CHECK(m <= n);
  if (m == 0) return {};
  if (m * 3 >= n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    for (uint32_t i = 0; i < m; ++i) {
      uint32_t j =
          i + static_cast<uint32_t>(NextBounded(static_cast<uint64_t>(n - i)));
      std::swap(all[i], all[j]);
    }
    all.resize(m);
    return all;
  }
  // Sparse case: Floyd's algorithm, O(m) expected insertions.
  std::vector<uint32_t> out;
  out.reserve(m);
  // A small open-addressing set would be faster, but m is small here and the
  // linear membership scan is dominated by RNG cost only for tiny m.
  auto contains = [&out](uint32_t x) {
    for (uint32_t v : out) {
      if (v == x) return true;
    }
    return false;
  };
  for (uint32_t j = n - m; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(NextBounded(j + 1));
    out.push_back(contains(t) ? j : t);
  }
  return out;
}

Rng Rng::Split() { return Rng(NextUint64()); }

ZipfDistribution::ZipfDistribution(uint32_t n, double s) : n_(n), s_(s) {
  PREFCOVER_CHECK(n > 0);
  PREFCOVER_CHECK(s >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  normalizer_ = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    normalizer_ += std::pow(static_cast<double>(r) + 1.0, -s_);
  }
}

double ZipfDistribution::H(double x) const {
  // Integral of x^-s: primitive used by rejection-inversion.
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint32_t ZipfDistribution::Sample(Rng* rng) const {
  if (s_ == 0.0) return static_cast<uint32_t>(rng->NextBounded(n_));
  // Hörmann-Derflinger rejection-inversion over the continuous envelope.
  for (;;) {
    double u = h_x1_ + rng->NextDouble() * (h_n_ - h_x1_);
    double x = HInverse(u);
    uint32_t k = static_cast<uint32_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (u >= H(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -s_)) {
      return k - 1;  // 0-based rank
    }
  }
}

double ZipfDistribution::Pmf(uint32_t rank) const {
  PREFCOVER_DCHECK(rank < n_);
  return std::pow(static_cast<double>(rank) + 1.0, -s_) / normalizer_;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  PREFCOVER_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    PREFCOVER_CHECK_MSG(w >= 0.0, "alias sampler weight must be nonnegative");
    total += w;
  }
  PREFCOVER_CHECK_MSG(total > 0.0, "alias sampler needs a positive total");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

uint32_t AliasSampler::Sample(Rng* rng) const {
  uint32_t col = static_cast<uint32_t>(rng->NextBounded(prob_.size()));
  return rng->NextDouble() < prob_[col] ? col : alias_[col];
}

}  // namespace prefcover
