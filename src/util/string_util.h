// Small string helpers shared across modules.

#ifndef PREFCOVER_UTIL_STRING_UTIL_H_
#define PREFCOVER_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace prefcover {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> SplitString(std::string_view input, char delimiter);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view input);

/// Case-sensitive prefix / suffix tests.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Strict numeric parses (whole string must be consumed).
Result<int64_t> ParseInt64(std::string_view text);
Result<uint32_t> ParseUint32(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// Joins items with a separator.
std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view separator);

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_STRING_UTIL_H_
