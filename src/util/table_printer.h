// Aligned console tables for the benchmark harness output.
//
// Every experiment binary prints paper-style tables through this class so
// the formatting is uniform; --csv switches the same rows to CSV.

#ifndef PREFCOVER_UTIL_TABLE_PRINTER_H_
#define PREFCOVER_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace prefcover {

/// \brief Collects rows of string cells and renders them aligned, or as CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; it must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// \name Cell formatting helpers.
  /// @{
  static std::string Fixed(double value, int decimals);
  static std::string Percent(double fraction, int decimals = 1);
  static std::string Scientific(double value, int decimals = 2);
  /// @}

  /// Renders the table with column alignment, a header separator and
  /// optional `title` line.
  void Print(std::ostream* out, const std::string& title = "") const;

  /// Renders as CSV (header row first).
  void PrintCsv(std::ostream* out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_TABLE_PRINTER_H_
