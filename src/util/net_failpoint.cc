#include "util/net_failpoint.h"

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <unistd.h>

#include "util/failpoint.h"

namespace prefcover {
namespace net {

namespace {

// A fired net.conn_kill tears the connection down underneath the caller:
// both directions are shut so the peer observes a mid-response hangup,
// and the caller's own syscall fails like the kernel had dropped it.
bool MaybeKillConnection(int fd) {
  if (!PREFCOVER_FAILPOINT_TRIGGERED("net.conn_kill")) return false;
  ::shutdown(fd, SHUT_RDWR);
  errno = ECONNRESET;
  return true;
}

}  // namespace

ssize_t FaultyRead(int fd, void* buf, size_t count) {
  if (MaybeKillConnection(fd)) return -1;
  if (PREFCOVER_FAILPOINT_TRIGGERED("net.read")) {
    errno = ECONNRESET;
    return -1;
  }
  if (count > 1 && PREFCOVER_FAILPOINT_TRIGGERED("net.read.short")) {
    count = 1;
  }
  return ::read(fd, buf, count);
}

ssize_t FaultyWrite(int fd, const void* buf, size_t count) {
  if (MaybeKillConnection(fd)) return -1;
  if (PREFCOVER_FAILPOINT_TRIGGERED("net.write")) {
    errno = EPIPE;
    return -1;
  }
  if (count > 1 && PREFCOVER_FAILPOINT_TRIGGERED("net.write.short")) {
    count = 1;
  }
  return ::write(fd, buf, count);
}

int FaultyAccept(int fd, struct sockaddr* addr, socklen_t* addrlen) {
  if (PREFCOVER_FAILPOINT_TRIGGERED("net.accept")) {
    errno = ECONNABORTED;
    return -1;
  }
  return ::accept(fd, addr, addrlen);
}

int FaultyConnect(int fd, const struct sockaddr* addr, socklen_t addrlen) {
  if (PREFCOVER_FAILPOINT_TRIGGERED("net.connect")) {
    errno = ECONNREFUSED;
    return -1;
  }
  return ::connect(fd, addr, addrlen);
}

}  // namespace net
}  // namespace prefcover

#endif  // __unix__ || __APPLE__
