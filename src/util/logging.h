// Minimal leveled logging and check macros.
//
// Logging goes to stderr. Each record is one line —
// `[<ISO-8601 UTC> <level> tid=<N> <file>:<line>] <message>` — emitted
// with a single write(2) so concurrent threads never interleave
// mid-record. The startup level honors the PREFCOVER_LOG_LEVEL
// environment variable (debug|info|warning|error or 0..3).
//
// PREFCOVER_CHECK-style macros abort on violation in all build types;
// they guard internal invariants, not user input (user input errors are
// reported via Status).

#ifndef PREFCOVER_UTIL_LOGGING_H_
#define PREFCOVER_UTIL_LOGGING_H_

#include <cassert>
#include <cstdint>
#include <sstream>
#include <string>

namespace prefcover {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal {

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug"|"info"|"warning"|"warn"|"error" (case-insensitive) or
/// "0".."3" into *level; false on anything else. Used for the
/// PREFCOVER_LOG_LEVEL environment variable; exposed for tests.
bool ParseLogLevel(const char* text, LogLevel* level);

/// "2026-08-06T12:34:56.789Z" for a CLOCK_REALTIME reading in
/// nanoseconds. Exposed for tests.
std::string FormatLogTimestamp(int64_t unix_nanos);

/// Accumulates a message and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& message);

}  // namespace internal

/// Sets the process-wide minimum log level.
inline void SetLogLevel(LogLevel level) { internal::SetLogLevel(level); }

#define PREFCOVER_LOG(level)                                              \
  ::prefcover::internal::LogMessage(::prefcover::LogLevel::k##level,     \
                                    __FILE__, __LINE__)

#define PREFCOVER_CHECK(expr)                                             \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::prefcover::internal::CheckFailed(#expr, __FILE__, __LINE__, ""); \
    }                                                                     \
  } while (false)

#define PREFCOVER_CHECK_MSG(expr, msg)                                    \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::prefcover::internal::CheckFailed(#expr, __FILE__, __LINE__,      \
                                         (msg));                          \
    }                                                                     \
  } while (false)

#define PREFCOVER_DCHECK(expr) assert(expr)

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_LOGGING_H_
