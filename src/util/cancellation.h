// Cooperative cancellation for long-running work.
//
// A CancelToken is a shared tripwire: the owner arms it (explicit
// Cancel(), a monotonic deadline, or the process signal hookup) and
// long-running loops poll IsCancelled() at natural safe points — solver
// round boundaries, ParallelFor chunk starts, streaming-session flushes.
// Nothing is ever aborted mid-operation: a cancelled greedy solve returns
// the best prefix selected so far (marked `SolverStats::truncated`), a
// cancelled ParallelFor stops dispatching *new* chunks, and a cancelled
// streaming construction returns Status::Cancelled.
//
// Cost model: IsCancelled() is one relaxed atomic load when no deadline
// is set, plus one steady_clock read when one is. Call sites that poll
// once per solver round pay well under 0.1% of round cost (asserted by
// the micro_core `solve/lazy_deadline` case against `solve/lazy`).
//
// Signal hookup: InstallSignalCancel(token) routes SIGINT/SIGTERM to
// token->Cancel(). The first signal trips the token (graceful: the solve
// finishes its round, outputs are still flushed); a second signal
// restores the default disposition and re-raises, so a repeat Ctrl-C
// force-kills a process stuck before its next check.

#ifndef PREFCOVER_UTIL_CANCELLATION_H_
#define PREFCOVER_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace prefcover {

/// \brief Shared cancellation flag plus an optional monotonic deadline.
///
/// Thread-safe and async-signal-safe: Cancel() is a lock-free atomic
/// store, so it may be called from any thread or from a signal handler
/// while workers poll IsCancelled().
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trips the token. Idempotent, lock-free, signal-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called or the deadline (if set) has passed.
  /// Sticky: a deadline is monotonic, so the result never reverts.
  bool IsCancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != kNoDeadline && NowNanos() >= deadline;
  }

  /// True only for an explicit Cancel() (signal / caller), not a deadline
  /// expiry; lets callers report *why* work was truncated.
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms (or moves) the deadline at an absolute steady_clock time.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// Arms the deadline `seconds` from now. Non-positive values expire
  /// immediately.
  void SetTimeout(double seconds) {
    deadline_ns_.store(
        NowNanos() + static_cast<int64_t>(seconds * 1e9),
        std::memory_order_relaxed);
  }

  /// Removes the deadline (an explicit Cancel() still holds).
  void ClearDeadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

/// \brief Routes SIGINT and SIGTERM to `token->Cancel()`.
///
/// Only one token is armed at a time; passing nullptr uninstalls the
/// handlers (restoring the default disposition). The second delivery of
/// either signal restores the default disposition and re-raises, so a
/// stuck process can still be killed interactively.
void InstallSignalCancel(CancelToken* token);

/// \brief Signal number that tripped the installed token (0 if none yet).
int LastCancelSignal();

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_CANCELLATION_H_
