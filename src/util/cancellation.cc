#include "util/cancellation.h"

#include <csignal>

namespace prefcover {

namespace {

// The handler only performs lock-free atomic operations, which is the
// async-signal-safe subset. `g_signal_token` is written exclusively from
// InstallSignalCancel (normal context) and read from the handler.
std::atomic<CancelToken*> g_signal_token{nullptr};
std::atomic<int> g_last_signal{0};

void HandleCancelSignal(int signum) {
  CancelToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr) token->Cancel();
  g_last_signal.store(signum, std::memory_order_relaxed);
  // Escalation path: the next delivery of this signal gets the default
  // disposition (terminate), so a process stuck before its next
  // cooperative check can still be killed with a second Ctrl-C.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void InstallSignalCancel(CancelToken* token) {
  g_signal_token.store(token, std::memory_order_relaxed);
  if (token == nullptr) {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    return;
  }
  g_last_signal.store(0, std::memory_order_relaxed);
  std::signal(SIGINT, HandleCancelSignal);
  std::signal(SIGTERM, HandleCancelSignal);
}

int LastCancelSignal() {
  return g_last_signal.load(std::memory_order_relaxed);
}

}  // namespace prefcover
