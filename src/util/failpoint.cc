#include "util/failpoint.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "util/string_util.h"

namespace prefcover {
namespace failpoint {

namespace {

enum class Kind {
  kOff,
  kError,
  kErrorOnce,
  kErrorProb,   // error(p,seed): independent Bernoulli(p) per hit
  kErrorEvery,  // every(N): error on hits N, 2N, 3N, ...
  kCrash,
  kCrashOnce,
  kDelay,
};

struct Entry {
  Kind kind = Kind::kOff;
  uint32_t delay_ms = 0;
  uint64_t hits = 0;   // reached while armed
  bool spent = false;  // *_once already fired
  // error(p,seed) state: the stream is a pure function of the seed, so a
  // re-armed identical spec replays the identical fire/pass sequence.
  double probability = 0.0;
  uint64_t rng_state = 0;
  // every(N) period.
  uint64_t period = 0;
};

// SplitMix64: one multiply-xor-shift step per draw. Deliberately local to
// the failpoint registry (not util/random's xoshiro) so the injection
// stream can never drift when the library generator evolves.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double SplitMix64NextDouble(uint64_t* state) {
  return static_cast<double>(SplitMix64Next(state) >> 11) * 0x1.0p-53;
}

// The registry is mutex-guarded: failpoints are a test/debug facility,
// and the armed path is allowed to serialize. The unarmed hot path never
// reaches here (AnyActive() gates it).
std::mutex g_mu;
std::map<std::string, Entry>& Registry() {
  static auto* registry = new std::map<std::string, Entry>();
  return *registry;
}

Result<Entry> ParseAction(std::string_view action) {
  Entry entry;
  std::string a(TrimWhitespace(action));
  if (a == "off") {
    entry.kind = Kind::kOff;
  } else if (a == "error") {
    entry.kind = Kind::kError;
  } else if (a == "error_once") {
    entry.kind = Kind::kErrorOnce;
  } else if (a.rfind("error(", 0) == 0 && a.back() == ')') {
    std::vector<std::string> args =
        SplitString(a.substr(6, a.size() - 7), ',');
    if (args.size() != 2) {
      return Status::InvalidArgument(
          "failpoint error(p,seed) needs exactly two arguments: " + a);
    }
    PREFCOVER_ASSIGN_OR_RETURN(double p,
                               ParseDouble(TrimWhitespace(args[0])));
    if (!(p >= 0.0 && p <= 1.0)) {  // negation also rejects NaN
      return Status::InvalidArgument(
          "failpoint error(p,seed) probability out of [0,1]: " + a);
    }
    PREFCOVER_ASSIGN_OR_RETURN(int64_t seed,
                               ParseInt64(TrimWhitespace(args[1])));
    entry.kind = Kind::kErrorProb;
    entry.probability = p;
    entry.rng_state = static_cast<uint64_t>(seed);
  } else if (a.rfind("every(", 0) == 0 && a.back() == ')') {
    PREFCOVER_ASSIGN_OR_RETURN(
        int64_t n, ParseInt64(TrimWhitespace(a.substr(6, a.size() - 7))));
    if (n < 1) {
      return Status::InvalidArgument("failpoint every(N) needs N >= 1: " +
                                     a);
    }
    entry.kind = Kind::kErrorEvery;
    entry.period = static_cast<uint64_t>(n);
  } else if (a == "crash") {
    entry.kind = Kind::kCrash;
  } else if (a == "crash_once") {
    entry.kind = Kind::kCrashOnce;
  } else if (a.rfind("delay(", 0) == 0 && a.size() > 8 &&
             a.compare(a.size() - 3, 3, "ms)") == 0) {
    PREFCOVER_ASSIGN_OR_RETURN(
        int64_t ms, ParseInt64(a.substr(6, a.size() - 9)));
    if (ms < 0 || ms > 60'000) {
      return Status::InvalidArgument("failpoint delay out of [0,60000]ms: " +
                                     a);
    }
    entry.kind = Kind::kDelay;
    entry.delay_ms = static_cast<uint32_t>(ms);
  } else {
    return Status::InvalidArgument(
        "unknown failpoint action '" + a +
        "' (expected off|error|error_once|error(p,seed)|every(N)|crash|"
        "crash_once|delay(Nms))");
  }
  return entry;
}

void RecountArmedLocked() {
  int armed = 0;
  for (const auto& [name, entry] : Registry()) {
    (void)name;
    if (entry.kind != Kind::kOff && !entry.spent) ++armed;
  }
  internal::g_armed_count.store(armed, std::memory_order_relaxed);
}

}  // namespace

namespace internal {

std::atomic<int> g_armed_count{0};

Status Evaluate(const char* name) {
  Kind kind;
  uint32_t delay_ms;
  bool fires = true;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    auto it = Registry().find(name);
    if (it == Registry().end() || it->second.spent) return Status::OK();
    Entry& entry = it->second;
    if (entry.kind == Kind::kOff) return Status::OK();
    ++entry.hits;
    if (entry.kind == Kind::kErrorOnce || entry.kind == Kind::kCrashOnce) {
      entry.spent = true;
      RecountArmedLocked();
    }
    if (entry.kind == Kind::kErrorProb) {
      fires = SplitMix64NextDouble(&entry.rng_state) < entry.probability;
    } else if (entry.kind == Kind::kErrorEvery) {
      fires = entry.hits % entry.period == 0;
    }
    kind = entry.kind;
    delay_ms = entry.delay_ms;
  }
  switch (kind) {
    case Kind::kError:
    case Kind::kErrorOnce:
      return Status::IOError(std::string("failpoint '") + name +
                             "' injected error");
    case Kind::kErrorProb:
    case Kind::kErrorEvery:
      if (!fires) return Status::OK();
      return Status::IOError(std::string("failpoint '") + name +
                             "' injected error");
    case Kind::kCrash:
    case Kind::kCrashOnce:
      // SIGKILL, not exit(): no atexit handlers, no stream flushes, no
      // destructors — exactly the crash the atomic-write path must
      // survive.
      std::fprintf(stderr, "failpoint '%s' crashing process\n", name);
      std::fflush(stderr);
      ::kill(::getpid(), SIGKILL);
      return Status::OK();  // unreachable
    case Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Status::OK();
    case Kind::kOff:
      break;
  }
  return Status::OK();
}

}  // namespace internal

bool Enabled() {
#if defined(PREFCOVER_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

Status LoadFromSpec(std::string_view spec) {
  std::map<std::string, Entry> parsed;
  for (const std::string& pair : SplitString(std::string(spec), ';')) {
    std::string trimmed(TrimWhitespace(pair));
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec entry '" + trimmed +
                                     "' is not name=action");
    }
    std::string name(TrimWhitespace(trimmed.substr(0, eq)));
    PREFCOVER_ASSIGN_OR_RETURN(Entry entry,
                               ParseAction(trimmed.substr(eq + 1)));
    parsed[name] = entry;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  Registry() = std::move(parsed);
  RecountArmedLocked();
  return Status::OK();
}

Status LoadFromEnv() {
  const char* spec = std::getenv("PREFCOVER_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return LoadFromSpec(spec);
}

namespace {

// $PREFCOVER_FAILPOINTS is armed before main so every site — including
// static-initialization-time code — sees it. A malformed spec aborts
// loudly rather than silently injecting nothing.
[[maybe_unused]] const bool g_env_armed = [] {
  Status st = LoadFromEnv();
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: bad PREFCOVER_FAILPOINTS: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return true;
}();

}  // namespace

Status Set(const std::string& name, const std::string& action) {
  PREFCOVER_ASSIGN_OR_RETURN(Entry entry, ParseAction(action));
  std::lock_guard<std::mutex> lock(g_mu);
  uint64_t hits = 0;
  auto it = Registry().find(name);
  if (it != Registry().end()) hits = it->second.hits;
  entry.hits = hits;
  Registry()[name] = entry;
  RecountArmedLocked();
  return Status::OK();
}

void Clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  Registry().clear();
  RecountArmedLocked();
}

uint64_t HitCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

}  // namespace failpoint
}  // namespace prefcover
