#include "util/table_printer.h"

#include <cstdio>
#include <ostream>

#include "util/csv.h"
#include "util/logging.h"

namespace prefcover {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PREFCOVER_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PREFCOVER_CHECK_MSG(cells.size() == headers_.size(),
                      "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::Percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TablePrinter::Scientific(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, value);
  return buf;
}

void TablePrinter::Print(std::ostream* out, const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  if (!title.empty()) *out << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      *out << (c == 0 ? "| " : " | ");
      *out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) *out << ' ';
    }
    *out << " |\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    *out << (c == 0 ? "|-" : "-|-");
    for (size_t i = 0; i < widths[c]; ++i) *out << '-';
  }
  *out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::PrintCsv(std::ostream* out) const {
  *out << FormatCsvLine(headers_) << '\n';
  for (const auto& row : rows_) *out << FormatCsvLine(row) << '\n';
}

}  // namespace prefcover
