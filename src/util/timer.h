// Wall-clock timing utilities for benchmarks and experiment harnesses.

#ifndef PREFCOVER_UTIL_TIMER_H_
#define PREFCOVER_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace prefcover {

/// \brief Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Formats a duration with an auto-selected unit, e.g. "1.23 ms".
std::string FormatDuration(double seconds);

/// \brief Formats a count with thousands separators, e.g. "1,921,701".
std::string FormatCount(uint64_t count);

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_TIMER_H_
