#include "util/string_util.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace prefcover {

std::vector<std::string> SplitString(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t b = 0;
  size_t e = input.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (b < e && is_space(input[b])) ++b;
  while (e > b && is_space(input[e - 1])) --e;
  return input.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buf(TrimWhitespace(text));
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<uint32_t> ParseUint32(std::string_view text) {
  PREFCOVER_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
  if (v < 0 || v > std::numeric_limits<uint32_t>::max()) {
    return Status::OutOfRange("value out of uint32 range: " +
                              std::to_string(v));
  }
  return static_cast<uint32_t>(v);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(TrimWhitespace(text));
  if (buf.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

}  // namespace prefcover
