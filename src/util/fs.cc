#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/failpoint.h"

namespace prefcover {

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

// Parent directory of `path` ("." for a bare filename).
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  // Some filesystems refuse to open or fsync directories; the rename is
  // already on its way to disk, so treat that as best-effort.
  if (fd < 0) return Status::OK();
  ::fsync(fd);
  ::close(fd);
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  PREFCOVER_FAILPOINT_STATUS("fs.write_atomic");
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot create temp file", temp));
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::IOError(ErrnoMessage("write failed", temp));
      ::close(fd);
      ::unlink(temp.c_str());
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Status::IOError(ErrnoMessage("fsync failed", temp));
    ::close(fd);
    ::unlink(temp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    Status st = Status::IOError(ErrnoMessage("close failed", temp));
    ::unlink(temp.c_str());
    return st;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    Status st = Status::IOError(ErrnoMessage("rename failed", path));
    ::unlink(temp.c_str());
    return st;
  }
  return SyncDirectory(DirName(path));
}

Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  std::ostringstream staging(std::ios::binary);
  PREFCOVER_RETURN_NOT_OK(writer(&staging));
  if (!staging.good()) {
    return Status::IOError("staging stream failed for '" + path + "'");
  }
  return WriteFileAtomic(path, staging.str());
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for: " + path);
  return buffer.str();
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  // Table generated once, on first use, from the reflected polynomial.
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace prefcover
