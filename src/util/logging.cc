#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace prefcover {
namespace internal {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes emission so concurrent log lines do not interleave.
std::mutex& EmitMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace prefcover
