#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <unistd.h>

#include "obs/metrics.h"

namespace prefcover {
namespace internal {

namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Startup level: PREFCOVER_LOG_LEVEL=debug|info|warning|error (or 0..3),
// read once when the first translation unit touches the logger; unset or
// unparsable falls back to info.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("PREFCOVER_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  LogLevel level;
  if (ParseLogLevel(env, &level)) return level;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_log_level{InitialLogLevel()};

// One write(2) for the whole record (prefix, message, newline) so
// concurrent writers never interleave mid-line: POSIX guarantees
// atomicity for pipes up to PIPE_BUF, and a single syscall is the best
// available guarantee for files/terminals. Partial writes (signals,
// full pipes) retry on the remainder.
void WriteRecord(const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(STDERR_FILENO, data + written, size - written);
    if (n <= 0) return;  // nowhere to report a logging failure
    written += static_cast<size_t>(n);
  }
}

}  // namespace

bool ParseLogLevel(const char* text, LogLevel* level) {
  if (text == nullptr || level == nullptr) return false;
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

std::string FormatLogTimestamp(int64_t unix_nanos) {
  time_t seconds = static_cast<time_t>(unix_nanos / 1'000'000'000);
  int millis = static_cast<int>((unix_nanos % 1'000'000'000) / 1'000'000);
  if (millis < 0) {  // keep pre-epoch inputs well-formed
    millis += 1000;
    seconds -= 1;
  }
  struct tm utc;
  gmtime_r(&seconds, &utc);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, millis);
  return buffer;
}

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    struct timespec ts;
    clock_gettime(CLOCK_REALTIME, &ts);
    stream_ << "[" << FormatLogTimestamp(static_cast<int64_t>(ts.tv_sec) *
                                             1'000'000'000 +
                                         ts.tv_nsec)
            << " " << LevelTag(level_) << " tid=" << obs::CurrentThreadId()
            << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::string record = stream_.str();
  record.push_back('\n');
  WriteRecord(record.data(), record.size());
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& message) {
  char buffer[1024];
  int len = std::snprintf(buffer, sizeof(buffer),
                          "CHECK failed at %s:%d: %s%s%s\n", file, line,
                          expr, message.empty() ? "" : " — ",
                          message.c_str());
  if (len > 0) {
    WriteRecord(buffer, std::min(sizeof(buffer) - 1,
                                 static_cast<size_t>(len)));
  }
  std::abort();
}

}  // namespace internal
}  // namespace prefcover
