// Minimal CSV reading/writing used by the clickstream I/O layer and the
// benchmark harness (--csv output).
//
// Supports RFC-4180-style quoting (fields containing the delimiter, quotes
// or newlines are double-quoted; embedded quotes are doubled). No external
// dependencies.

#ifndef PREFCOVER_UTIL_CSV_H_
#define PREFCOVER_UTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace prefcover {

/// \brief Parses one CSV record (no trailing newline) into fields.
///
/// Returns InvalidArgument on malformed quoting (unterminated quote,
/// characters after a closing quote).
Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              char delimiter = ',');

/// \brief Serializes fields into one CSV record (no trailing newline),
/// quoting only where required.
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delimiter = ',');

/// \brief Streaming CSV reader over an istream.
///
/// Handles quoted fields spanning multiple physical lines and both LF and
/// CRLF line endings.
class CsvReader {
 public:
  /// The stream must outlive the reader.
  explicit CsvReader(std::istream* input, char delimiter = ',');

  /// Reads the next record into `*fields`. Returns false at end of input.
  /// A malformed record surfaces through status().
  bool Next(std::vector<std::string>* fields);

  /// OK unless a malformed record has been encountered.
  const Status& status() const { return status_; }

  /// 1-based index of the last record returned by Next.
  size_t record_number() const { return record_number_; }

 private:
  std::istream* input_;
  char delimiter_;
  Status status_;
  size_t record_number_ = 0;
};

/// \brief Streaming CSV writer over an ostream.
class CsvWriter {
 public:
  /// The stream must outlive the writer.
  explicit CsvWriter(std::ostream* output, char delimiter = ',');

  void WriteRecord(const std::vector<std::string>& fields);

  size_t records_written() const { return records_written_; }

 private:
  std::ostream* output_;
  char delimiter_;
  size_t records_written_ = 0;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_CSV_H_
