// Named failpoints: deterministic fault injection for robustness tests.
//
// A failpoint is a named site in production code where a test (or an
// operator reproducing an incident) can inject a failure without
// recompiling:
//
//   PREFCOVER_FAILPOINTS="graph_io.read=error;pool.task=delay(5ms)"
//   PREFCOVER_FAILPOINTS="checkpoint.after_write=crash_once"
//
// Syntax: `name=action` pairs separated by ';'. Actions:
//   off           — registered but inert (useful to park a spec)
//   error         — the site returns Status::IOError every hit
//   error_once    — as `error`, but only the first hit
//   error(p,seed) — the site fails each hit independently with
//                   probability p, driven by a private SplitMix64 stream
//                   seeded with `seed`: the fire/pass sequence is a pure
//                   function of (p, seed, hit number), so a chaos run
//                   armed with the same spec injects the same faults
//   every(N)      — the site fails on every Nth hit (hits N, 2N, 3N, ...)
//   crash         — SIGKILL the process at the site (no cleanup runs, so
//                   crash-safety claims are tested for real)
//   crash_once    — as `crash`, but only the first hit; later hits pass
//                   (meaningful when the spec is re-applied after restart)
//   delay(Nms)    — sleep N milliseconds, then pass
//
// Call sites use the macros:
//   PREFCOVER_FAILPOINT(name)         — void site (crash/delay only;
//                                       error acts like off)
//   PREFCOVER_FAILPOINT_STATUS(name)  — returns the injected Status from
//                                       the enclosing function
//   PREFCOVER_FAILPOINT_TRIGGERED(name) — expression, true when the armed
//                                       action injected an error this hit
//                                       (for sites that mutate behaviour
//                                       instead of returning a Status,
//                                       e.g. the net shim's short
//                                       reads/writes and connection kills)
//
// Cost: compiled out entirely (macros expand to nothing) unless the
// build sets -DPREFCOVER_ENABLE_FAILPOINTS=ON, which defines
// PREFCOVER_FAILPOINTS_ENABLED. When compiled in but no failpoint is
// armed, each site costs one relaxed atomic load.
//
// The catalog of planted sites lives in ROBUSTNESS.md.

#ifndef PREFCOVER_UTIL_FAILPOINT_H_
#define PREFCOVER_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace prefcover {
namespace failpoint {

/// \brief True when the harness was compiled in
/// (-DPREFCOVER_ENABLE_FAILPOINTS=ON). Tests that need injection skip
/// themselves when this is false.
bool Enabled();

/// \brief Parses a `name=action;name=action` spec and arms it, replacing
/// any previously armed set. An empty spec clears everything.
Status LoadFromSpec(std::string_view spec);

/// \brief Arms the spec from $PREFCOVER_FAILPOINTS (no-op when unset).
/// Runs automatically before main(); a malformed env spec aborts the
/// process loudly rather than silently injecting nothing.
Status LoadFromEnv();

/// \brief Arms a single failpoint programmatically (test hook).
Status Set(const std::string& name, const std::string& action);

/// \brief Disarms everything.
void Clear();

/// \brief Times the named site was reached while armed (0 if never or
/// unknown).
uint64_t HitCount(const std::string& name);

namespace internal {

extern std::atomic<int> g_armed_count;

/// Fast gate: true when at least one failpoint is armed.
inline bool AnyActive() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// Applies the action armed for `name` (if any). Returns the injected
/// error for `error*` / a firing `error(p,seed)` / `every(N)`; crashes
/// the process for `crash*`; sleeps for `delay`; OK otherwise.
Status Evaluate(const char* name);

/// True when Evaluate(name) injected an error this hit (the boolean form
/// behind PREFCOVER_FAILPOINT_TRIGGERED).
inline bool Triggered(const char* name) {
  return AnyActive() && !Evaluate(name).ok();
}

}  // namespace internal
}  // namespace failpoint
}  // namespace prefcover

#if defined(PREFCOVER_FAILPOINTS_ENABLED)

#define PREFCOVER_FAILPOINT(name)                                      \
  do {                                                                 \
    if (::prefcover::failpoint::internal::AnyActive()) {               \
      (void)::prefcover::failpoint::internal::Evaluate(name);          \
    }                                                                  \
  } while (false)

#define PREFCOVER_FAILPOINT_STATUS(name)                               \
  do {                                                                 \
    if (::prefcover::failpoint::internal::AnyActive()) {               \
      ::prefcover::Status _fp_st =                                     \
          ::prefcover::failpoint::internal::Evaluate(name);            \
      if (!_fp_st.ok()) return _fp_st;                                 \
    }                                                                  \
  } while (false)

#define PREFCOVER_FAILPOINT_TRIGGERED(name) \
  (::prefcover::failpoint::internal::Triggered(name))

#else  // !PREFCOVER_FAILPOINTS_ENABLED

#define PREFCOVER_FAILPOINT(name) \
  do {                            \
  } while (false)

#define PREFCOVER_FAILPOINT_STATUS(name) \
  do {                                   \
  } while (false)

#define PREFCOVER_FAILPOINT_TRIGGERED(name) (false)

#endif  // PREFCOVER_FAILPOINTS_ENABLED

#endif  // PREFCOVER_UTIL_FAILPOINT_H_
