// Tiny command-line flag parser for the benchmark and example binaries.
//
// Syntax: --name=value or --name value; bare --name sets a boolean flag to
// true. Positional arguments are collected in order. Unknown flags are an
// error so typos fail loudly.

#ifndef PREFCOVER_UTIL_FLAGS_H_
#define PREFCOVER_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace prefcover {

/// \brief Declarative flag set: register flags, parse argv, read values.
class FlagParser {
 public:
  /// `description` is shown by --help.
  explicit FlagParser(std::string program_description);

  /// \name Flag registration. Each returns *this for chaining.
  /// @{
  FlagParser& AddString(const std::string& name, std::string default_value,
                        const std::string& help);
  FlagParser& AddInt(const std::string& name, int64_t default_value,
                     const std::string& help);
  FlagParser& AddDouble(const std::string& name, double default_value,
                        const std::string& help);
  FlagParser& AddBool(const std::string& name, bool default_value,
                      const std::string& help);
  /// @}

  /// Parses argv (argv[0] is skipped). On `--help` prints usage and returns
  /// OutOfRange so callers can exit cleanly.
  Status Parse(int argc, const char* const* argv);

  /// \name Typed accessors; the flag must have been registered with the
  /// matching type (checked).
  /// @{
  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  /// @}

  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every flag with its default and help string.
  std::string UsageString() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  Status SetFlag(const std::string& name, const std::string& value);
  const Flag& GetFlagOrDie(const std::string& name, Type type) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_FLAGS_H_
