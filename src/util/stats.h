// Streaming summary statistics and quantile estimation.

#ifndef PREFCOVER_UTIL_STATS_H_
#define PREFCOVER_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace prefcover {

/// \brief Streaming mean/variance/min/max (Welford's algorithm).
class SummaryStats {
 public:
  void Add(double value);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const SummaryStats& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Exact quantiles over a retained sample vector.
///
/// Suitable for the dataset sizes in this library (tens of millions of
/// doubles at most); uses linear interpolation between order statistics.
class QuantileSketch {
 public:
  void Add(double value) { values_.push_back(value); }
  void Reserve(size_t n) { values_.reserve(n); }

  /// Quantile q in [0, 1]. Returns NaN when empty. Sorts lazily.
  double Quantile(double q);

  size_t count() const { return values_.size(); }

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

/// \brief Fixed-bucket histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double value);

  uint64_t bucket_count(size_t bucket) const { return buckets_[bucket]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Lower bound of bucket b.
  double bucket_lo(size_t bucket) const;

  /// Multi-line ASCII rendering with proportional bars.
  std::string ToString(size_t max_bar_width = 40) const;

 private:
  double lo_, hi_;
  std::vector<uint64_t> buckets_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_STATS_H_
