// Fixed-size worker pool used by the parallel greedy solver.
//
// The pool executes opaque tasks; ParallelFor (parallel_for.h) layers a
// blocking data-parallel loop on top. Workers are started once and reused
// across solver iterations, which matters because the greedy algorithm
// dispatches k rounds of short parallel scans.
//
// Observability: every pool shares the global instruments
// `pool.queue_depth` (gauge: queued, not yet executing tasks),
// `pool.tasks_executed` (counter) and `pool.task_seconds` (latency
// histogram of task bodies), and each executed task is wrapped in a
// "pool.task" trace span on the worker thread.

#ifndef PREFCOVER_UTIL_THREAD_POOL_H_
#define PREFCOVER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace prefcover {

/// \brief Fixed-size FIFO thread pool.
///
/// Thread-safe: Submit may be called from any thread, including from inside
/// a task. Destruction waits for all queued tasks to finish.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  // Shared global instruments; registered once in the constructor so
  // worker hot paths only touch lock-free cells.
  obs::Gauge* queue_depth_;
  obs::Counter* tasks_executed_;
  obs::Histogram* task_seconds_;

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace prefcover

#endif  // PREFCOVER_UTIL_THREAD_POOL_H_
