#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace prefcover {

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

FlagParser& FlagParser::AddString(const std::string& name,
                                  std::string default_value,
                                  const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = std::move(default_value);
  flags_[name] = std::move(f);
  return *this;
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t default_value,
                               const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name,
                                  double default_value,
                                  const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool default_value,
                                const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
  return *this;
}

Status FlagParser::SetFlag(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& f = it->second;
  errno = 0;
  char* end = nullptr;
  switch (f.type) {
    case Type::kString:
      f.string_value = value;
      return Status::OK();
    case Type::kInt: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      f.int_value = v;
      return Status::OK();
    }
    case Type::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      f.double_value = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        f.bool_value = true;
      } else if (value == "false" || value == "0") {
        f.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(UsageString().c_str(), stdout);
      return Status::OutOfRange("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      if (it->second.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing value");
      }
    }
    PREFCOVER_RETURN_NOT_OK(SetFlag(name, value));
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::GetFlagOrDie(const std::string& name,
                                                 Type type) const {
  auto it = flags_.find(name);
  PREFCOVER_CHECK_MSG(it != flags_.end(), "flag not registered: " + name);
  PREFCOVER_CHECK_MSG(it->second.type == type,
                      "flag accessed with wrong type: " + name);
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetFlagOrDie(name, Type::kString).string_value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return GetFlagOrDie(name, Type::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetFlagOrDie(name, Type::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetFlagOrDie(name, Type::kBool).bool_value;
}

std::string FlagParser::UsageString() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    switch (flag.type) {
      case Type::kString:
        out += "=<string> (default \"" + flag.string_value + "\")";
        break;
      case Type::kInt:
        out += "=<int> (default " + std::to_string(flag.int_value) + ")";
        break;
      case Type::kDouble:
        out += "=<double> (default " + std::to_string(flag.double_value) + ")";
        break;
      case Type::kBool:
        out += std::string("=<bool> (default ") +
               (flag.bool_value ? "true" : "false") + ")";
        break;
    }
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace prefcover
