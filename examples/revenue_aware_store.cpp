// Revenue- and storage-aware inventory selection (the paper's other
// Section 7 future-work direction, implemented in core/revenue_cover.h).
//
// A same-day-delivery warehouse has shelf capacity, items have different
// footprints (a TV is not a phone case) and different margins. Compares
// the budgeted revenue-aware solver against the revenue-blind cardinality
// greedy, at an equal shelf budget.
//
// Flags: --items, --capacity-share, --seed.

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/greedy_solver.h"
#include "core/revenue_cover.h"
#include "synth/dataset_profiles.h"
#include "util/flags.h"
#include "util/random.h"

using namespace prefcover;

int main(int argc, char** argv) {
  FlagParser flags("revenue_aware_store: margin- and shelf-aware selection");
  flags.AddInt("items", 5000, "catalog size");
  flags.AddDouble("capacity-share", 0.1,
                  "shelf capacity as a share of the whole catalog's "
                  "footprint");
  flags.AddInt("seed", 42, "RNG seed");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint32_t items = static_cast<uint32_t>(flags.GetInt("items"));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")) ^ 0xECC0);

  auto graph = GenerateProfileGraphWithNodes(
      DatasetProfile::kPE, items,
      static_cast<uint64_t>(flags.GetInt("seed")));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  // Economics: margins in $2-$80, footprints in 1-20 shelf units, both
  // independent of popularity (realistic: cheap accessories sell most).
  RevenueCoverOptions options;
  options.revenues.resize(items);
  options.costs.resize(items);
  for (uint32_t i = 0; i < items; ++i) {
    options.revenues[i] = rng.NextDouble(2.0, 80.0);
    options.costs[i] = 1.0 + std::floor(rng.NextDouble(0.0, 20.0));
  }
  double total_footprint =
      std::accumulate(options.costs.begin(), options.costs.end(), 0.0);
  options.capacity = total_footprint * flags.GetDouble("capacity-share");

  auto revenue_aware = SolveRevenueCover(*graph, options);
  if (!revenue_aware.ok()) {
    std::fprintf(stderr, "%s\n",
                 revenue_aware.status().ToString().c_str());
    return 1;
  }

  // Baseline: revenue-blind cardinality greedy, then cut to the same
  // shelf budget (take its ranking order until capacity is exhausted).
  auto blind = SolveGreedyLazy(*graph, graph->NumNodes());
  if (!blind.ok()) {
    std::fprintf(stderr, "%s\n", blind.status().ToString().c_str());
    return 1;
  }
  std::vector<NodeId> blind_set;
  double blind_cost = 0.0;
  for (NodeId v : blind->items) {
    if (blind_cost + options.costs[v] > options.capacity) continue;
    blind_cost += options.costs[v];
    blind_set.push_back(v);
  }
  auto blind_revenue = EvaluateExpectedRevenue(
      *graph, blind_set, options.revenues, Variant::kIndependent);
  if (!blind_revenue.ok()) return 1;

  std::printf("Shelf capacity: %.0f units (%.0f%% of the catalog "
              "footprint)\n\n",
              options.capacity, flags.GetDouble("capacity-share") * 100.0);
  std::printf("Revenue-aware greedy: %5zu items, %7.0f units used, "
              "expected revenue %.4f $/request\n",
              revenue_aware->items.size(), revenue_aware->total_cost,
              revenue_aware->expected_revenue);
  std::printf("Revenue-blind greedy: %5zu items, %7.0f units used, "
              "expected revenue %.4f $/request\n",
              blind_set.size(), blind_cost, *blind_revenue);
  double uplift = revenue_aware->expected_revenue / *blind_revenue - 1.0;
  std::printf("\nAccounting for margins and footprints lifts expected "
              "revenue by %.1f%% at\nthe same shelf budget (upper bound "
              "with everything stocked: %.4f).\n",
              uplift * 100.0, revenue_aware->revenue_upper_bound);
  return 0;
}
