// Incremental maintenance over a live catalog (the paper's Section 7
// future-work direction, implemented in core/inventory_maintainer.h).
//
// Simulates a day of catalog churn — popularity drift, re-estimated
// alternative probabilities, items entering and leaving — and shows the
// maintainer reacting with the cheapest adequate action at each step,
// while the maintained cover stays near the fresh-solve optimum.
//
// Flags: --items, --k, --steps, --seed.

#include <cstdio>

#include "core/greedy_solver.h"
#include "core/inventory_maintainer.h"
#include "util/flags.h"
#include "util/random.h"

using namespace prefcover;

int main(int argc, char** argv) {
  FlagParser flags("live_maintenance: retained set under catalog churn");
  flags.AddInt("items", 2000, "initial catalog size");
  flags.AddInt("k", 200, "retained-set size");
  flags.AddInt("steps", 50, "churn steps to simulate");
  flags.AddInt("seed", 42, "RNG seed");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const uint32_t items = static_cast<uint32_t>(flags.GetInt("items"));

  // Build the initial catalog.
  DynamicPreferenceGraph catalog;
  std::vector<StableId> ids;
  for (uint32_t i = 0; i < items; ++i) {
    ids.push_back(catalog.AddItem(rng.NextDouble(0.05, 5.0),
                                  "sku" + std::to_string(i)));
  }
  for (uint32_t i = 0; i < items; ++i) {
    uint32_t degree = 2 + static_cast<uint32_t>(rng.NextBounded(5));
    for (uint32_t d = 0; d < degree; ++d) {
      StableId to = ids[rng.NextBounded(items)];
      if (to == ids[i]) continue;
      (void)catalog.UpsertEdge(ids[i], to, rng.NextDouble(0.1, 0.9));
    }
  }

  MaintainerOptions options;
  options.k = static_cast<size_t>(flags.GetInt("k"));
  options.resolve_drift_tolerance = 0.02;
  options.force_resolve_every = 25;
  InventoryMaintainer maintainer(&catalog, options);

  const int steps = static_cast<int>(flags.GetInt("steps"));
  std::printf("step  action     cover     retained  (catalog size)\n");
  for (int step = 0; step <= steps; ++step) {
    if (step > 0) {
      // A burst of catalog churn.
      for (int burst = 0; burst < 20; ++burst) {
        uint64_t pick = rng.NextBounded(100);
        StableId item = ids[rng.NextBounded(ids.size())];
        if (!catalog.HasItem(item)) continue;
        if (pick < 70) {
          (void)catalog.SetItemWeight(
              item, catalog.ItemWeight(item) *
                        rng.NextDouble(0.7, 1.4));
        } else if (pick < 90) {
          StableId to = ids[rng.NextBounded(ids.size())];
          if (catalog.HasItem(to) && to != item) {
            (void)catalog.UpsertEdge(item, to, rng.NextDouble(0.1, 0.9));
          }
        } else if (catalog.NumItems() > items / 2) {
          (void)catalog.RemoveItem(item);
        }
      }
      // New arrivals keep the catalog alive.
      if (step % 5 == 0) {
        StableId fresh = catalog.AddItem(rng.NextDouble(0.5, 5.0));
        ids.push_back(fresh);
        for (int e = 0; e < 3; ++e) {
          StableId to = ids[rng.NextBounded(ids.size())];
          if (catalog.HasItem(to) && to != fresh) {
            (void)catalog.UpsertEdge(fresh, to, rng.NextDouble(0.2, 0.8));
          }
        }
      }
    }
    auto action = maintainer.Maintain();
    if (!action.ok()) {
      std::fprintf(stderr, "%s\n", action.status().ToString().c_str());
      return 1;
    }
    if (step % 5 == 0 || *action == MaintenanceAction::kResolved) {
      std::printf("%4d  %-9s  %7.3f%%  %8zu  (%zu items)\n", step,
                  std::string(MaintenanceActionName(*action)).c_str(),
                  maintainer.current_cover() * 100.0,
                  maintainer.retained().size(), catalog.NumItems());
    }
  }
  std::printf(
      "\nLifetime: %llu maintain calls, %llu full re-solves, %llu cheap "
      "repairs.\nThe maintainer re-solved only when drift exceeded the "
      "tolerance (or on the\nforced cadence); the rest of the churn was "
      "absorbed by evaluation and\nlocal repair.\n",
      static_cast<unsigned long long>(maintainer.maintain_calls()),
      static_cast<unsigned long long>(maintainer.full_resolves()),
      static_cast<unsigned long long>(maintainer.repairs()));
  return 0;
}
