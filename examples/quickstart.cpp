// Quickstart: the paper's running example (Figure 1 / Example 1.1).
//
// Builds the five-item preference graph, solves the Preference Cover
// problem for k = 2 under both variants, and prints the retained items
// with the per-item coverage report — reproducing the 87.3% optimum the
// paper walks through, versus the 77% of the naive top-sellers choice.

#include <cstdio>

#include "core/baseline_solvers.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"

using namespace prefcover;

int main() {
  PreferenceGraph graph = MakePaperExampleGraph();

  std::printf("Catalog (%zu items):\n", graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    std::printf("  %s: requested by %.0f%% of consumers\n",
                graph.Label(v).c_str(), graph.NodeWeight(v) * 100.0);
  }

  for (Variant variant : {Variant::kNormalized, Variant::kIndependent}) {
    std::printf("\n--- %s variant, k = 2 ---\n",
                std::string(VariantName(variant)).c_str());

    GreedyOptions options;
    options.variant = variant;
    auto greedy = SolveGreedy(graph, 2, options);
    if (!greedy.ok()) {
      std::fprintf(stderr, "greedy failed: %s\n",
                   greedy.status().ToString().c_str());
      return 1;
    }
    std::printf("Greedy retains:");
    for (NodeId v : greedy->items) std::printf(" %s", graph.Label(v).c_str());
    std::printf("  -> covers %.1f%% of requests\n", greedy->cover * 100.0);

    auto naive = SolveTopKWeight(graph, 2, variant);
    if (!naive.ok()) return 1;
    std::printf("Top sellers retain:");
    for (NodeId v : naive->items) std::printf(" %s", graph.Label(v).c_str());
    std::printf("  -> covers %.1f%% of requests\n", naive->cover * 100.0);

    std::printf("Per-item coverage under the greedy selection:\n");
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      std::printf("  %s: %.0f%%\n", graph.Label(v).c_str(),
                  greedy->ItemCoverage(graph, v) * 100.0);
    }
  }
  std::printf(
      "\nThe least-sold item D makes the optimal pair {B, D}: B covers "
      "most\nrequests for A, B and C, while D covers itself and 90%% of "
      "E.\n");
  return 0;
}
