// End-to-end Data Adaptation Engine walkthrough (paper Figure 2):
// clickstream CSV -> variant selection -> preference graph -> solver.
//
// Generates a synthetic clickstream (or reads one from --input), persists
// it as CSV the way a platform would export it, then runs the full
// pipeline: recommend the variant using the paper's 90% / 0.1-NMI rules,
// build the graph with the matching counting semantics, and solve.
//
// Flags: --input (optional CSV path), --items, --sessions, --k-percent,
// --seed.

#include <cstdio>

#include "clickstream/clickstream_io.h"
#include "clickstream/graph_construction.h"
#include "clickstream/variant_selection.h"
#include "core/greedy_solver.h"
#include "synth/dataset_profiles.h"
#include "util/flags.h"

using namespace prefcover;

int main(int argc, char** argv) {
  FlagParser flags("clickstream_pipeline: raw events to retained items");
  flags.AddString("input", "", "clickstream CSV to load (empty = generate)");
  flags.AddString("profile", "YC", "profile to synthesize: PE|PF|PM|YC");
  flags.AddDouble("scale", 0.01, "synthetic dataset scale factor");
  flags.AddDouble("k-percent", 10.0, "percent of items to retain");
  flags.AddInt("seed", 42, "RNG seed");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 1. Obtain the clickstream.
  Clickstream clickstream;
  if (!flags.GetString("input").empty()) {
    auto read = ReadClickstreamCsvFile(flags.GetString("input"));
    if (!read.ok()) {
      std::fprintf(stderr, "reading %s: %s\n",
                   flags.GetString("input").c_str(),
                   read.status().ToString().c_str());
      return 1;
    }
    clickstream = std::move(read).value();
  } else {
    auto profile = ParseProfileName(flags.GetString("profile"));
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return 1;
    }
    auto generated = GenerateProfileClickstream(
        *profile, flags.GetDouble("scale"),
        static_cast<uint64_t>(flags.GetInt("seed")));
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    clickstream = std::move(generated).value();
  }

  ClickstreamStats stats = clickstream.ComputeStats();
  std::printf("Clickstream:\n%s\n\n", stats.ToString().c_str());

  // 2. Variant selection (paper Section 5.2).
  VariantRecommendation rec = RecommendVariant(clickstream);
  std::printf("Variant selection: %s\n\n", rec.ToString().c_str());

  // 3. Graph construction with the matching counting semantics.
  GraphConstructionOptions gopt;
  gopt.variant = rec.variant;
  auto graph = BuildPreferenceGraph(clickstream, gopt);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph construction: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("Preference graph: %zu nodes, %zu edges\n\n",
              graph->NumNodes(), graph->NumEdges());

  // 4. Solve.
  const size_t k = static_cast<size_t>(
      static_cast<double>(graph->NumNodes()) *
      flags.GetDouble("k-percent") / 100.0);
  GreedyOptions options;
  options.variant = rec.variant;
  auto solution = SolveGreedyLazy(*graph, k, options);
  if (!solution.ok()) {
    std::fprintf(stderr, "solver: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }
  std::printf("Retained %zu of %zu items -> %.2f%% of requests covered.\n",
              solution->items.size(), graph->NumNodes(),
              solution->cover * 100.0);
  std::printf("First retained items (by marginal value):\n");
  for (size_t i = 0; i < solution->items.size() && i < 10; ++i) {
    NodeId v = solution->items[i];
    std::printf("  %2zu. %-28s prefix cover %.2f%%\n", i + 1,
                graph->DisplayName(v).c_str(),
                solution->cover_after_prefix[i] * 100.0);
  }
  return 0;
}
