// Constrained selection: vendor contracts and shipping restrictions.
//
// Real inventory decisions rarely start from a blank slate: some items are
// contractually guaranteed shelf space (force_include) and some cannot be
// offered at all in a target market (force_exclude — e.g. batteries or
// liquids in cross-border shipping). This example quantifies the cost of
// such constraints against the unconstrained optimum and shows how well
// excluded items remain covered through retained alternatives.
//
// Flags: --items, --k-percent, --contracted, --restricted, --seed.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/greedy_solver.h"
#include "eval/metrics.h"
#include "synth/dataset_profiles.h"
#include "util/flags.h"
#include "util/random.h"

using namespace prefcover;

int main(int argc, char** argv) {
  FlagParser flags(
      "constrained_selection: contracts and restrictions in play");
  flags.AddInt("items", 5000, "catalog size");
  flags.AddDouble("k-percent", 10.0, "percent of items to retain");
  flags.AddInt("contracted", 25, "vendor-contracted items (must retain)");
  flags.AddInt("restricted", 200, "restricted items (cannot retain)");
  flags.AddInt("seed", 42, "RNG seed");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint32_t items = static_cast<uint32_t>(flags.GetInt("items"));
  const size_t k = static_cast<size_t>(
      static_cast<double>(items) * flags.GetDouble("k-percent") / 100.0);

  auto graph = GenerateProfileGraphWithNodes(
      DatasetProfile::kPF, items,
      static_cast<uint64_t>(flags.GetInt("seed")));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  // Draw disjoint contracted / restricted sets.
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")) ^ 0xC0117AC7);
  const uint32_t contracted_n =
      static_cast<uint32_t>(flags.GetInt("contracted"));
  const uint32_t restricted_n =
      static_cast<uint32_t>(flags.GetInt("restricted"));
  std::vector<uint32_t> draw =
      rng.SampleWithoutReplacement(items, contracted_n + restricted_n);
  GreedyOptions constrained;
  constrained.force_include.assign(draw.begin(),
                                   draw.begin() + contracted_n);
  constrained.force_exclude.assign(draw.begin() + contracted_n, draw.end());

  auto free_solution = SolveGreedyLazy(*graph, k);
  auto constrained_solution = SolveGreedyLazy(*graph, k, constrained);
  if (!free_solution.ok() || !constrained_solution.ok()) {
    std::fprintf(stderr, "solver failure\n");
    return 1;
  }

  std::printf("Budget: %zu of %u items; %u contracted, %u restricted.\n\n",
              k, items, contracted_n, restricted_n);
  std::printf("Unconstrained cover: %.3f%%\n",
              free_solution->cover * 100.0);
  std::printf("Constrained cover:   %.3f%%  (constraint cost %.3f%%)\n",
              constrained_solution->cover * 100.0,
              (free_solution->cover - constrained_solution->cover) * 100.0);
  std::printf("Selection overlap (Jaccard): %.3f\n\n",
              JaccardSimilarity(free_solution->items,
                                constrained_solution->items));

  // How well are the restricted items still served?
  double restricted_demand = 0.0, restricted_served = 0.0;
  for (NodeId v : constrained.force_exclude) {
    restricted_demand += graph->NodeWeight(v);
    restricted_served += constrained_solution->item_contributions[v];
  }
  std::printf("Restricted items carry %.3f%% of demand; %.1f%% of it still "
              "converts\nthrough retained alternatives despite the ban.\n",
              restricted_demand * 100.0,
              restricted_demand > 0.0
                  ? 100.0 * restricted_served / restricted_demand
                  : 0.0);

  // Contracted items that the optimizer would not have picked.
  size_t forced_against_merit = 0;
  for (NodeId v : constrained.force_include) {
    if (std::find(free_solution->items.begin(), free_solution->items.end(),
                  v) == free_solution->items.end()) {
      ++forced_against_merit;
    }
  }
  std::printf("\n%zu of %u contracted items would not have made the "
              "unconstrained cut —\nthe shelf space they occupy is the "
              "contract's opportunity cost.\n",
              forced_against_merit, contracted_n);
  return 0;
}
