// Reducing maintenance costs (paper Section 1, third motivating scenario):
// periodically dispose of the least valuable items. With the ordered
// greedy solution, the items *outside* the retained prefix are exactly the
// disposal candidates, and the I array quantifies how much of their demand
// survives through alternatives.
//
// Flags: --items, --dispose-percent, --seed.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/greedy_solver.h"
#include "synth/dataset_profiles.h"
#include "util/flags.h"

using namespace prefcover;

int main(int argc, char** argv) {
  FlagParser flags("maintenance_pruning: dispose of low-value inventory");
  flags.AddInt("items", 20000, "catalog size");
  flags.AddDouble("dispose-percent", 10.0, "percent of items to dispose");
  flags.AddInt("seed", 42, "RNG seed");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint32_t items = static_cast<uint32_t>(flags.GetInt("items"));
  const double dispose_pct = flags.GetDouble("dispose-percent");
  const size_t keep = static_cast<size_t>(
      static_cast<double>(items) * (100.0 - dispose_pct) / 100.0);

  // Motors: the Normalized variant's home turf (specific parts, at most
  // one acceptable substitute).
  std::printf("Generating a PM-shaped parts catalog (%u items)...\n", items);
  auto graph = GenerateProfileGraphWithNodes(
      DatasetProfile::kPM, items,
      static_cast<uint64_t>(flags.GetInt("seed")));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  GreedyOptions options;
  options.variant = Variant::kNormalized;
  auto solution = SolveGreedyLazy(*graph, keep, options);
  if (!solution.ok()) {
    std::fprintf(stderr, "%s\n", solution.status().ToString().c_str());
    return 1;
  }

  std::printf("Disposing %.0f%% of the catalog keeps %.3f%% of expected "
              "sales.\n\n",
              dispose_pct, solution->cover * 100.0);

  // Disposal report: demand on disposed items and how much of it is
  // absorbed by retained alternatives.
  std::vector<bool> retained(graph->NumNodes(), false);
  for (NodeId v : solution->items) retained[v] = true;
  double disposed_demand = 0.0, absorbed_demand = 0.0;
  std::vector<NodeId> disposed;
  for (NodeId v = 0; v < graph->NumNodes(); ++v) {
    if (retained[v]) continue;
    disposed.push_back(v);
    disposed_demand += graph->NodeWeight(v);
    absorbed_demand += solution->item_contributions[v];
  }
  std::printf("Disposed items: %zu, carrying %.2f%% of demand, of which "
              "%.1f%% still\nconverts through retained alternatives.\n",
              disposed.size(), disposed_demand * 100.0,
              disposed_demand > 0.0
                  ? 100.0 * absorbed_demand / disposed_demand
                  : 0.0);

  // The riskiest disposals: most uncovered demand.
  std::sort(disposed.begin(), disposed.end(), [&](NodeId a, NodeId b) {
    double ua = graph->NodeWeight(a) - solution->item_contributions[a];
    double ub = graph->NodeWeight(b) - solution->item_contributions[b];
    return ua > ub;
  });
  std::printf("\nLargest unserved demand among disposals:\n");
  for (size_t i = 0; i < disposed.size() && i < 5; ++i) {
    NodeId v = disposed[i];
    double lost = graph->NodeWeight(v) - solution->item_contributions[v];
    std::printf("  %-28s demand %.4f%%, unserved %.4f%%\n",
                graph->DisplayName(v).c_str(),
                graph->NodeWeight(v) * 100.0, lost * 100.0);
  }
  return 0;
}
