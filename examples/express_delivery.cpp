// Express delivery store (paper Section 1, first motivating scenario).
//
// A same-day-delivery warehouse can stock only a small fraction of the
// electronics catalog. This example generates a PE-shaped catalog, selects
// the reduced inventory with the greedy solver, and contrasts the achieved
// request coverage with the naive top-sellers policy — the decision the
// paper argues a platform actually faces.
//
// Flags: --items, --budget-percent, --seed, --threads.

#include <cstdio>

#include "core/baseline_solvers.h"
#include "core/greedy_solver.h"
#include "graph/graph_stats.h"
#include "synth/dataset_profiles.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  FlagParser flags(
      "express_delivery: choose a same-day-delivery inventory subset");
  flags.AddInt("items", 20000, "electronics catalog size");
  flags.AddDouble("budget-percent", 5.0,
                  "percentage of the catalog the warehouse can stock");
  flags.AddInt("seed", 42, "RNG seed");
  flags.AddInt("threads", 0, "solver threads (0 = hardware)");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const uint32_t items = static_cast<uint32_t>(flags.GetInt("items"));
  const double pct = flags.GetDouble("budget-percent");
  const size_t k = static_cast<size_t>(static_cast<double>(items) * pct /
                                       100.0);

  std::printf("Generating a PE-shaped electronics catalog (%u items)...\n",
              items);
  auto graph = GenerateProfileGraphWithNodes(
      DatasetProfile::kPE, items,
      static_cast<uint64_t>(flags.GetInt("seed")));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  GraphStats stats = ComputeGraphStats(*graph);
  std::printf("%s\n\n", stats.ToString().c_str());

  std::printf("Selecting %zu items (%.1f%% of the catalog) for the "
              "express warehouse...\n",
              k, pct);
  Stopwatch timer;
  auto greedy = SolveGreedyLazy(*graph, k);
  if (!greedy.ok()) {
    std::fprintf(stderr, "%s\n", greedy.status().ToString().c_str());
    return 1;
  }
  std::printf("Greedy:       covers %6.2f%% of requests  (%s)\n",
              greedy->cover * 100.0,
              FormatDuration(greedy->solve_seconds).c_str());

  auto naive = SolveTopKWeight(*graph, k, Variant::kIndependent);
  if (!naive.ok()) return 1;
  std::printf("Top sellers:  covers %6.2f%% of requests  (%s)\n",
              naive->cover * 100.0,
              FormatDuration(naive->solve_seconds).c_str());

  double uplift = (greedy->cover - naive->cover) * 100.0;
  std::printf("\nStocking by preference cover instead of sales rank "
              "recovers an extra\n%.2f%% of consumer requests at the same "
              "warehouse capacity.\n",
              uplift);

  // Show a few popular items left out of the warehouse but well covered by
  // retained alternatives — the "hidden relations" the paper highlights.
  std::printf("\nPopular items NOT stocked but covered by alternatives:\n");
  int shown = 0;
  for (NodeId v = 0; v < graph->NumNodes() && shown < 5; ++v) {
    if (graph->NodeWeight(v) < 2.0 / static_cast<double>(items)) continue;
    double coverage = greedy->ItemCoverage(*graph, v);
    bool retained = coverage == 1.0 && greedy->item_contributions[v] ==
                                           graph->NodeWeight(v);
    // Heuristic: skip retained items (their coverage is exactly 1).
    if (retained) continue;
    if (coverage < 0.5) continue;
    std::printf("  %s: %.0f%% of its requests still convert\n",
                graph->DisplayName(v).c_str(), coverage * 100.0);
    ++shown;
  }
  return 0;
}
