// Opening a branch overseas (paper Section 1, second motivating scenario),
// phrased as the complementary minimization problem: regulations restrict
// the number of items shipped abroad, and the platform wants the SMALLEST
// catalog that still serves a target share of consumer demand.
//
// Flags: --items, --coverage-target, --seed.

#include <cstdio>

#include "core/complementary_solver.h"
#include "synth/dataset_profiles.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  FlagParser flags(
      "region_launch: smallest catalog covering a demand target");
  flags.AddInt("items", 20000, "home-market catalog size");
  flags.AddDouble("coverage-target", 0.8,
                  "fraction of consumer requests the launch catalog must "
                  "cover");
  flags.AddInt("seed", 42, "RNG seed");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double target = flags.GetDouble("coverage-target");
  const uint32_t items = static_cast<uint32_t>(flags.GetInt("items"));

  std::printf("Generating a PF-shaped fashion catalog (%u items)...\n",
              items);
  auto graph = GenerateProfileGraphWithNodes(
      DatasetProfile::kPF, items,
      static_cast<uint64_t>(flags.GetInt("seed")));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  std::printf("Finding the smallest launch catalog covering %.0f%% of "
              "demand...\n\n",
              target * 100.0);
  struct Row {
    const char* name;
    ThresholdAlgorithm algorithm;
  };
  const Row rows[] = {
      {"Greedy", ThresholdAlgorithm::kGreedy},
      {"TopK-W", ThresholdAlgorithm::kTopKWeight},
      {"TopK-C", ThresholdAlgorithm::kTopKCoverage},
  };
  size_t greedy_size = 0;
  for (const Row& row : rows) {
    auto result = SolveCoverageThreshold(*graph, target,
                                         Variant::kIndependent,
                                         row.algorithm);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", row.name,
                   result.status().ToString().c_str());
      return 1;
    }
    if (!result->reached) {
      std::printf("%-8s cannot reach the target (max %.2f%%)\n", row.name,
                  result->solution.cover * 100.0);
      continue;
    }
    std::printf("%-8s needs %6zu items (%.2f%% of the catalog), covering "
                "%.2f%%  [%s]\n",
                row.name, result->set_size,
                100.0 * static_cast<double>(result->set_size) /
                    static_cast<double>(graph->NumNodes()),
                result->solution.cover * 100.0,
                FormatDuration(result->solution.solve_seconds).c_str());
    if (row.algorithm == ThresholdAlgorithm::kGreedy) {
      greedy_size = result->set_size;
    }
  }
  if (greedy_size > 0) {
    std::printf(
        "\nThe greedy launch catalog ships %zu item types abroad; the "
        "baselines\nneed substantially more shelf (and regulation) budget "
        "for the same\nconsumer satisfaction.\n",
        greedy_size);
  }
  return 0;
}
