// prefcover — command-line front end to the Preference Cover library.
//
// Subcommands (run `prefcover <command> --help` for flags):
//   generate    synthesize a profile-shaped clickstream CSV
//   construct   build a preference graph (.pcg) from a clickstream CSV,
//               with automatic variant selection
//   stats       describe a graph file
//   solve       select k items maximizing the cover
//   threshold   smallest set reaching a coverage target
//   export      dump a .pcg graph to nodes/edges CSV
//   serve       answer substitute queries over a serving index
//   dist-worker candidate-shard worker for the distributed greedy solve
//   dist-solve  coordinate a sharded greedy solve over dist-workers
//   version     print the build version
//
// Typical session:
//   prefcover generate --profile=YC --scale=0.01 --out=clicks.csv
//   prefcover construct --input=clicks.csv --out=graph.pcg
//   prefcover solve --graph=graph.pcg --k=500 --out=retained.csv
//       --index_out=index.pcsidx
//   prefcover serve --index=index.pcsidx

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__)
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <atomic>
#include <chrono>
#include <thread>

#include "bench/env_capture.h"
#include "bench/metrics_json.h"
#include "bench/pareto_json.h"
#include "clickstream/clickstream_io.h"
#include "clickstream/graph_construction.h"
#include "clickstream/streaming_construction.h"
#include "clickstream/variant_selection.h"
#include "core/checkpoint.h"
#include "core/complementary_solver.h"
#include "core/constrained_solver.h"
#include "core/greedy_solver.h"
#include "dist/distributed_solver.h"
#include "dist/worker.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "obs/exposition.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/serving_index.h"
#include "serve/transport.h"
#include "synth/dataset_profiles.h"
#include "util/cancellation.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/string_util.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace prefcover;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Exit code for a solve truncated by SIGINT/SIGTERM: nonzero so scripts
// notice the budget was the signal's, not the solver's — but distinct
// from 1 (error) and 2 (usage) so the partial result is recognizable.
constexpr int kExitSignalTruncated = 3;

// Uninstalls the process signal->CancelToken hook when the command
// returns, so the token (a stack local) never dangles behind the handler.
struct ScopedSignalCancel {
  explicit ScopedSignalCancel(CancelToken* token) {
    InstallSignalCancel(token);
  }
  ~ScopedSignalCancel() { InstallSignalCancel(nullptr); }
};

// Returns 0/1 exit code semantics from flag parsing; 2 = --help shown.
int ParseOrExit(FlagParser* flags, int argc, char** argv) {
  Status st = flags->Parse(argc, argv);
  if (st.IsOutOfRange()) return 2;
  if (!st.ok()) {
    Fail(st);
    return 1;
  }
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  FlagParser flags("prefcover generate: synthesize a clickstream CSV");
  flags.AddString("profile", "YC", "dataset profile: PE|PF|PM|YC");
  flags.AddDouble("scale", 0.01, "scale factor in (0,1]");
  flags.AddInt("seed", 42, "RNG seed");
  flags.AddString("out", "clickstream.csv", "output CSV path");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;

  auto profile = ParseProfileName(flags.GetString("profile"));
  if (!profile.ok()) return Fail(profile.status());
  auto cs = GenerateProfileClickstream(
      *profile, flags.GetDouble("scale"),
      static_cast<uint64_t>(flags.GetInt("seed")));
  if (!cs.ok()) return Fail(cs.status());
  Status st = WriteClickstreamCsvFile(*cs, flags.GetString("out"));
  if (!st.ok()) return Fail(st);
  ClickstreamStats stats = cs->ComputeStats();
  std::printf("wrote %s\n%s\n", flags.GetString("out").c_str(),
              stats.ToString().c_str());
  return 0;
}

int CmdConstruct(int argc, char** argv) {
  FlagParser flags(
      "prefcover construct: clickstream CSV -> preference graph (.pcg)");
  flags.AddString("input", "clickstream.csv", "clickstream CSV path");
  flags.AddString("out", "graph.pcg", "output graph path");
  flags.AddString("variant", "auto",
                  "independent|normalized|auto (auto applies the paper's "
                  "selection rules)");
  flags.AddDouble("min-edge-weight", 0.0, "drop edges weaker than this");
  flags.AddInt("min-purchases", 0,
               "drop edges out of items with fewer purchases");
  flags.AddBool("streaming", false,
                "single-pass construction without loading sessions into "
                "memory (for very large inputs; requires an explicit "
                "--variant)");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;

  GraphConstructionOptions options;
  options.min_edge_weight = flags.GetDouble("min-edge-weight");
  options.min_purchases_for_edges =
      static_cast<size_t>(flags.GetInt("min-purchases"));
  const std::string& variant_flag = flags.GetString("variant");

  Result<PreferenceGraph> graph = Status::Internal("unset");
  if (flags.GetBool("streaming")) {
    // Variant selection needs the sessions in memory; the streaming path
    // therefore requires the caller to commit to a variant.
    auto variant = ParseVariant(variant_flag);
    if (!variant.ok()) {
      return Fail(Status::InvalidArgument(
          "--streaming requires --variant=independent|normalized"));
    }
    options.variant = *variant;
    graph = BuildPreferenceGraphStreamingFile(flags.GetString("input"),
                                              options);
  } else {
    auto cs = ReadClickstreamCsvFile(flags.GetString("input"));
    if (!cs.ok()) return Fail(cs.status());
    if (variant_flag == "auto") {
      VariantRecommendation rec = RecommendVariant(*cs);
      std::printf("variant selection: %s\n", rec.ToString().c_str());
      options.variant = rec.variant;
    } else {
      auto variant = ParseVariant(variant_flag);
      if (!variant.ok()) return Fail(variant.status());
      options.variant = *variant;
    }
    graph = BuildPreferenceGraph(*cs, options);
  }
  if (!graph.ok()) return Fail(graph.status());
  Status st = WriteGraphBinaryFile(*graph, flags.GetString("out"));
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s: %zu nodes, %zu edges (variant hint: %s)\n",
              flags.GetString("out").c_str(), graph->NumNodes(),
              graph->NumEdges(),
              std::string(VariantName(options.variant)).c_str());
  return 0;
}

int CmdStats(int argc, char** argv) {
  FlagParser flags("prefcover stats: describe a graph file");
  flags.AddString("graph", "graph.pcg", "graph path");
  flags.AddBool("degrees", false, "also print the out-degree histogram");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;
  auto graph = ReadGraphBinaryFile(flags.GetString("graph"));
  if (!graph.ok()) return Fail(graph.status());
  GraphStats stats = ComputeGraphStats(*graph);
  std::printf("%s\n", stats.ToString().c_str());
  std::printf("normalized-admissible: %s\n",
              IsNormalizedAdmissible(*graph) ? "yes" : "no");
  if (flags.GetBool("degrees")) {
    double hi = static_cast<double>(stats.max_out_degree) + 1.0;
    Histogram degrees(0.0, hi, std::min<size_t>(16, stats.max_out_degree + 1));
    for (NodeId v = 0; v < graph->NumNodes(); ++v) {
      degrees.Add(static_cast<double>(graph->OutDegree(v)));
    }
    std::printf("\nout-degree distribution:\n%s",
                degrees.ToString().c_str());
  }
  return 0;
}

Result<Variant> ResolveVariant(const std::string& name,
                               const PreferenceGraph& graph) {
  if (name == "auto") {
    // Without session data, pick Normalized only when admissible.
    return IsNormalizedAdmissible(graph) ? Variant::kNormalized
                                         : Variant::kIndependent;
  }
  return ParseVariant(name);
}

Status WriteSolutionCsv(const PreferenceGraph& graph,
                        const Solution& solution, const std::string& path) {
  return WriteFileAtomic(path, [&](std::ostream* out) {
    CsvWriter writer(out);
    writer.WriteRecord({"rank", "item_id", "label", "weight",
                        "cover_after_prefix"});
    for (size_t i = 0; i < solution.items.size(); ++i) {
      NodeId v = solution.items[i];
      char weight[32], cover[32];
      std::snprintf(weight, sizeof(weight), "%.10g", graph.NodeWeight(v));
      std::snprintf(cover, sizeof(cover), "%.10g",
                    solution.cover_after_prefix[i]);
      writer.WriteRecord({std::to_string(i + 1), std::to_string(v),
                          graph.DisplayName(v), weight, cover});
    }
    return Status::OK();
  });
}

// --- solve --budget/--costs/--quota/--pareto_out helpers ------------------

// Reads an `item_id,cost` CSV into a dense cost vector; items absent from
// the file keep unit cost. A first record whose id is non-numeric is
// treated as a header and skipped.
Result<std::vector<double>> ReadCostsCsv(const std::string& path, size_t n) {
  std::ifstream input(path);
  if (!input) return Status::IOError("cannot open costs file " + path);
  std::vector<double> costs(n, 1.0);
  CsvReader reader(&input);
  std::vector<std::string> fields;
  while (reader.Next(&fields)) {
    if (fields.size() == 1 && fields[0].empty()) continue;
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          path + ": record " + std::to_string(reader.record_number()) +
          " must be `item_id,cost`");
    }
    auto id = ParseUint32(fields[0]);
    if (!id.ok()) {
      if (reader.record_number() == 1) continue;  // header row
      return id.status();
    }
    if (*id >= n) {
      return Status::InvalidArgument(path + ": item " + fields[0] +
                                     " is out of range (graph has " +
                                     std::to_string(n) + " nodes)");
    }
    auto value = ParseDouble(fields[1]);
    if (!value.ok()) return value.status();
    costs[*id] = *value;
  }
  PREFCOVER_RETURN_NOT_OK(reader.status());
  return costs;
}

// Reads an `item_id,category` CSV; every item must be assigned (quotas
// over a partial assignment would silently mean "category 0").
Result<std::vector<uint32_t>> ReadCategoriesCsv(const std::string& path,
                                                size_t n) {
  std::ifstream input(path);
  if (!input) return Status::IOError("cannot open categories file " + path);
  std::vector<uint32_t> categories(n, 0);
  std::vector<bool> seen(n, false);
  CsvReader reader(&input);
  std::vector<std::string> fields;
  while (reader.Next(&fields)) {
    if (fields.size() == 1 && fields[0].empty()) continue;
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          path + ": record " + std::to_string(reader.record_number()) +
          " must be `item_id,category`");
    }
    auto id = ParseUint32(fields[0]);
    if (!id.ok()) {
      if (reader.record_number() == 1) continue;  // header row
      return id.status();
    }
    if (*id >= n) {
      return Status::InvalidArgument(path + ": item " + fields[0] +
                                     " is out of range (graph has " +
                                     std::to_string(n) + " nodes)");
    }
    auto category = ParseUint32(fields[1]);
    if (!category.ok()) return category.status();
    categories[*id] = *category;
    seen[*id] = true;
  }
  PREFCOVER_RETURN_NOT_OK(reader.status());
  for (size_t v = 0; v < n; ++v) {
    if (!seen[v]) {
      return Status::InvalidArgument(
          path + ": item " + std::to_string(v) +
          " has no category (the file must assign every item)");
    }
  }
  return categories;
}

// Parses `cat:min[:max],...` into a quota vector covering every category
// present in `categories`; unmentioned categories stay unconstrained.
Result<std::vector<CategoryQuota>> ParseQuotaSpec(
    const std::string& spec, const std::vector<uint32_t>& categories) {
  uint32_t num_categories = 0;
  for (uint32_t c : categories) {
    num_categories = std::max(num_categories, c + 1);
  }
  std::vector<CategoryQuota> quotas(num_categories);
  for (const std::string& field : SplitString(spec, ',')) {
    if (field.empty()) continue;
    std::vector<std::string> parts = SplitString(field, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument(
          "--quota entries must be `cat:min[:max]`, got `" + field + "`");
    }
    auto category = ParseUint32(parts[0]);
    if (!category.ok()) return category.status();
    if (*category >= num_categories) {
      return Status::InvalidArgument(
          "--quota category " + parts[0] +
          " does not appear in --categories");
    }
    auto min_items = ParseUint32(parts[1]);
    if (!min_items.ok()) return min_items.status();
    quotas[*category].min_items = *min_items;
    if (parts.size() == 3) {
      auto max_items = ParseUint32(parts[2]);
      if (!max_items.ok()) return max_items.status();
      quotas[*category].max_items = *max_items;
    }
  }
  return quotas;
}

int CmdSolve(int argc, char** argv) {
  FlagParser flags("prefcover solve: select k items maximizing the cover");
  flags.AddString("graph", "graph.pcg", "graph path");
  flags.AddInt("k", 100, "number of items to retain");
  flags.AddString("variant", "auto", "independent|normalized|auto");
  flags.AddString("algorithm", "lazy",
                  "greedy|lazy|parallel|lazy-parallel|constrained|"
                  "topk-w|topk-c|random");
  flags.AddInt("threads", 4,
               "threads for --algorithm=parallel|lazy-parallel");
  flags.AddInt("batch", 0,
               "CELF batch size for --algorithm=lazy-parallel (0 = auto: "
               "4x threads)");
  flags.AddInt("seed", 42, "seed for --algorithm=random");
  flags.AddBool("stats", false,
                "print solver telemetry (gain evaluations, heap pops, "
                "stale ratio, pool utilization)");
  flags.AddString("out", "", "optional CSV for the retained items");
  flags.AddString("coverage-out", "",
                  "optional per-item coverage CSV (whole catalog)");
  flags.AddString("index_out", "",
                  "optional serving-index (PCSIDX01) output for "
                  "`prefcover serve` / serve_loadgen");
  flags.AddInt("index_top_m", 8,
               "substitutes stored per node in --index_out");
  flags.AddBool("report", false, "print the full solution report");
  flags.AddString("force-include", "",
                  "comma-separated item ids that must be retained "
                  "(greedy algorithms only)");
  flags.AddString("force-exclude", "",
                  "comma-separated item ids that must not be retained "
                  "(greedy algorithms only)");
  flags.AddString("clicks", "",
                  "clickstream CSV to construct the graph from in-process "
                  "(streaming, instead of --graph; requires an explicit "
                  "--variant)");
  flags.AddString("trace_out", "",
                  "write a Chrome trace-event JSON of this run to the "
                  "path (open in Perfetto / chrome://tracing)");
  flags.AddString("metrics_out", "",
                  "write a JSON snapshot of the process metrics registry "
                  "to the path");
  flags.AddInt("deadline_ms", 0,
               "wall-clock budget in milliseconds; 0 = none. An expired "
               "deadline returns the best prefix found so far (exit 0, "
               "stats marked TRUNCATED), never an error");
  flags.AddString("checkpoint_path", "",
                  "write a crash-safe solve checkpoint to this path every "
                  "--checkpoint_every selections (greedy algorithms only)");
  flags.AddInt("checkpoint_every", 16,
               "checkpoint cadence in selections (>= 1)");
  flags.AddBool("resume", false,
                "resume from --checkpoint_path when it exists: the "
                "checkpointed prefix is replayed and the final solution "
                "is identical to an uninterrupted run");
  flags.AddDouble("budget", 0.0,
                  "inventory-cost budget; 0 = none. Any of "
                  "--budget/--costs/--quota routes the solve through the "
                  "constrained cost-ratio greedy");
  flags.AddString("costs", "",
                  "per-item cost CSV (`item_id,cost`; unlisted items "
                  "cost 1.0), used by --budget and --pareto_out");
  flags.AddString("categories", "",
                  "per-item category CSV (`item_id,category`; must "
                  "assign every item), required by --quota");
  flags.AddString("quota", "",
                  "comma-separated per-category retention quotas "
                  "`cat:min[:max]`; unmentioned categories are "
                  "unconstrained (requires --categories)");
  flags.AddString("pareto_out", "",
                  "sweep budgets and write the non-dominated "
                  "coverage-vs-cost frontier JSON to this path instead "
                  "of solving once (uses --costs; quotas unsupported)");
  flags.AddInt("pareto_points", 16,
               "budget-schedule size for --pareto_out (>= 2)");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;

  // One token for the whole command: SIGINT/SIGTERM and --deadline_ms
  // both trip it, construction and solve both watch it.
  CancelToken cancel;
  const int64_t deadline_ms = flags.GetInt("deadline_ms");
  if (deadline_ms < 0) {
    return Fail(Status::InvalidArgument("--deadline_ms must be >= 0"));
  }
  if (deadline_ms > 0) {
    cancel.SetTimeout(static_cast<double>(deadline_ms) / 1000.0);
  }
  ScopedSignalCancel signal_hookup(&cancel);

  // Arm tracing before any traced work (construction included) runs.
  const std::string& trace_out = flags.GetString("trace_out");
  if (!trace_out.empty() && !obs::Tracing::Start()) {
    std::fprintf(stderr,
                 "warning: tracing was compiled out "
                 "(PREFCOVER_ENABLE_TRACING=OFF); %s will be empty\n",
                 trace_out.c_str());
  }

  // Exports run on success, cancellation AND failure paths — the trace
  // of a cancelled or failed run is often exactly what one wants to see.
  auto export_observability = [&flags, &trace_out]() -> Status {
    if (!trace_out.empty()) {
      PREFCOVER_FAILPOINT_STATUS("trace.export");
      obs::Tracing::Stop();
      std::ostringstream json;
      obs::ChromeTraceSink sink(&json);
      obs::Tracing::Flush(&sink);
      PREFCOVER_RETURN_NOT_OK(WriteFileAtomic(trace_out, json.str()));
      std::printf(
          "wrote %s (%llu event(s) dropped to ring overflow)\n",
          trace_out.c_str(),
          static_cast<unsigned long long>(obs::Tracing::DroppedEvents()));
    }
    const std::string& metrics_out = flags.GetString("metrics_out");
    if (!metrics_out.empty()) {
      PREFCOVER_FAILPOINT_STATUS("metrics.export");
      PREFCOVER_RETURN_NOT_OK(WriteFileAtomic(
          metrics_out,
          MetricsSnapshotToJson(obs::MetricsRegistry::Global().Snapshot())
              .Dump()));
      std::printf("wrote %s\n", metrics_out.c_str());
    }
    return Status::OK();
  };
  auto fail_with_observability = [&export_observability](
                                     const Status& status) {
    Status obs_st = export_observability();
    if (!obs_st.ok()) {
      std::fprintf(stderr, "warning: %s\n", obs_st.ToString().c_str());
    }
    return Fail(status);
  };

  Result<PreferenceGraph> graph = Status::Internal("unset");
  if (!flags.GetString("clicks").empty()) {
    auto clicks_variant = ParseVariant(flags.GetString("variant"));
    if (!clicks_variant.ok()) {
      return Fail(Status::InvalidArgument(
          "--clicks requires --variant=independent|normalized (streaming "
          "construction cannot auto-select)"));
    }
    GraphConstructionOptions construction;
    construction.variant = *clicks_variant;
    construction.cancel = &cancel;
    graph = BuildPreferenceGraphStreamingFile(flags.GetString("clicks"),
                                              construction);
  } else {
    graph = ReadGraphBinaryFile(flags.GetString("graph"));
  }
  if (!graph.ok()) return fail_with_observability(graph.status());
  auto variant = ResolveVariant(flags.GetString("variant"), *graph);
  if (!variant.ok()) return Fail(variant.status());

  const std::string& algo_name = flags.GetString("algorithm");
  Algorithm algorithm;
  if (algo_name == "greedy") {
    algorithm = Algorithm::kGreedy;
  } else if (algo_name == "lazy") {
    algorithm = Algorithm::kGreedyLazy;
  } else if (algo_name == "parallel") {
    algorithm = Algorithm::kGreedyParallel;
  } else if (algo_name == "lazy-parallel") {
    algorithm = Algorithm::kGreedyLazyParallel;
  } else if (algo_name == "topk-w") {
    algorithm = Algorithm::kTopKWeight;
  } else if (algo_name == "topk-c") {
    algorithm = Algorithm::kTopKCoverage;
  } else if (algo_name == "random") {
    algorithm = Algorithm::kRandom;
  } else if (algo_name == "constrained") {
    algorithm = Algorithm::kConstrainedGreedy;
  } else {
    return Fail(Status::InvalidArgument("unknown algorithm " + algo_name));
  }

  GreedyOptions greedy_options;
  greedy_options.variant = *variant;
  for (const std::string& field :
       SplitString(flags.GetString("force-include"), ',')) {
    if (field.empty()) continue;
    auto id = ParseUint32(field);
    if (!id.ok()) return Fail(id.status());
    greedy_options.force_include.push_back(*id);
  }
  for (const std::string& field :
       SplitString(flags.GetString("force-exclude"), ',')) {
    if (field.empty()) continue;
    auto id = ParseUint32(field);
    if (!id.ok()) return Fail(id.status());
    greedy_options.force_exclude.push_back(*id);
  }
  const int64_t batch_flag = flags.GetInt("batch");
  if (batch_flag < 0) {
    return Fail(Status::InvalidArgument("--batch must be >= 0, got " +
                                        std::to_string(batch_flag)));
  }
  greedy_options.batch_size = static_cast<size_t>(batch_flag);
  const bool constrained = !greedy_options.force_include.empty() ||
                           !greedy_options.force_exclude.empty();
  if (flags.GetInt("k") <= 0) {
    return Fail(Status::InvalidArgument("--k must be >= 1, got " +
                                        std::to_string(flags.GetInt("k"))));
  }
  size_t k = static_cast<size_t>(flags.GetInt("k"));
  // A budget beyond the catalog is satisfiable — by the whole catalog.
  // Clamp with a warning instead of erroring so scripts can pass a
  // generous bound without sizing the graph first.
  if (k > graph->NumNodes()) {
    std::fprintf(stderr,
                 "warning: --k %zu exceeds the catalog size %zu; "
                 "clamping to %zu\n",
                 k, graph->NumNodes(), graph->NumNodes());
    obs::MetricsRegistry::Global().GetCounter("solver.k_clamped")
        ->Increment();
    k = graph->NumNodes();
  }
  const size_t threads = static_cast<size_t>(flags.GetInt("threads"));

  // Everything routes through the eval runner (which forwards the full
  // GreedyOptions to the greedy family), so traced solves carry the
  // eval.run_algorithm phase span above the solver's own spans.
  const bool greedy_family = algorithm == Algorithm::kGreedy ||
                             algorithm == Algorithm::kGreedyLazy ||
                             algorithm == Algorithm::kGreedyParallel ||
                             algorithm == Algorithm::kGreedyLazyParallel;
  if (constrained && !greedy_family) {
    return Fail(Status::InvalidArgument(
        "--force-include/--force-exclude require a greedy algorithm"));
  }

  // --- constraint-spec assembly (--budget/--costs/--quota) ---
  const double budget_flag = flags.GetDouble("budget");
  if (!(budget_flag >= 0.0)) {  // negation also rejects NaN
    return Fail(Status::InvalidArgument("--budget must be >= 0"));
  }
  ConstraintSpec spec;
  bool use_spec = algorithm == Algorithm::kConstrainedGreedy;
  if (budget_flag > 0.0) {
    spec.budget = budget_flag;
    use_spec = true;
  }
  if (!flags.GetString("costs").empty()) {
    auto costs = ReadCostsCsv(flags.GetString("costs"), graph->NumNodes());
    if (!costs.ok()) return Fail(costs.status());
    spec.costs = std::move(*costs);
    use_spec = true;
  }
  if (!flags.GetString("quota").empty()) {
    if (flags.GetString("categories").empty()) {
      return Fail(Status::InvalidArgument("--quota requires --categories"));
    }
    auto categories =
        ReadCategoriesCsv(flags.GetString("categories"), graph->NumNodes());
    if (!categories.ok()) return Fail(categories.status());
    auto quotas = ParseQuotaSpec(flags.GetString("quota"), *categories);
    if (!quotas.ok()) return Fail(quotas.status());
    spec.categories = std::move(*categories);
    spec.quotas = std::move(*quotas);
    use_spec = true;
  } else if (!flags.GetString("categories").empty()) {
    return Fail(Status::InvalidArgument(
        "--categories without --quota has no effect; pass --quota"));
  }

  // --pareto_out: a budget sweep replaces the single solve.
  const std::string& pareto_out = flags.GetString("pareto_out");
  if (!pareto_out.empty()) {
    if (spec.HasQuotas()) {
      return Fail(Status::InvalidArgument(
          "--pareto_out sweeps budgets over costs only; quotas are "
          "unsupported"));
    }
    const int64_t pareto_points = flags.GetInt("pareto_points");
    if (pareto_points < 2) {
      return Fail(Status::InvalidArgument("--pareto_points must be >= 2"));
    }
    ParetoSweepOptions sweep;
    sweep.variant = *variant;
    sweep.costs = spec.costs;
    sweep.num_points = static_cast<size_t>(pareto_points);
    sweep.max_items = k;
    auto frontier = SolveParetoFrontier(*graph, sweep);
    if (!frontier.ok()) return fail_with_observability(frontier.status());
    ParetoArtifactMeta meta;
    meta.instance = !flags.GetString("clicks").empty()
                        ? flags.GetString("clicks")
                        : flags.GetString("graph");
    meta.variant = *variant;
    meta.num_nodes = graph->NumNodes();
    meta.points_requested = static_cast<size_t>(pareto_points);
    Status pareto_st = WriteParetoArtifact(pareto_out, *frontier, meta);
    if (!pareto_st.ok()) return fail_with_observability(pareto_st);
    std::printf("wrote %s (pareto frontier: %zu non-dominated point(s), "
                "%lld budget(s) swept)\n",
                pareto_out.c_str(), frontier->size(),
                static_cast<long long>(pareto_points));
    Status export_st = export_observability();
    if (!export_st.ok()) return Fail(export_st);
    return 0;
  }

  if (use_spec && algorithm != Algorithm::kConstrainedGreedy) {
    if (!greedy_family) {
      return Fail(Status::InvalidArgument(
          "--budget/--costs/--quota require a greedy algorithm (or "
          "--algorithm=constrained)"));
    }
    algorithm = Algorithm::kConstrainedGreedy;
  }
  greedy_options.cancel = &cancel;

  const std::string& checkpoint_path = flags.GetString("checkpoint_path");
  const int64_t checkpoint_every = flags.GetInt("checkpoint_every");
  if (!checkpoint_path.empty() || flags.GetBool("resume")) {
    if (!greedy_family || algorithm == Algorithm::kConstrainedGreedy) {
      return Fail(Status::InvalidArgument(
          "--checkpoint_path/--resume require an unconstrained greedy "
          "algorithm"));
    }
    if (checkpoint_path.empty()) {
      return Fail(Status::InvalidArgument(
          "--resume requires --checkpoint_path"));
    }
    if (checkpoint_every <= 0) {
      return Fail(Status::InvalidArgument(
          "--checkpoint_every must be >= 1"));
    }
    greedy_options.checkpoint.path = checkpoint_path;
    greedy_options.checkpoint.every_rounds =
        static_cast<uint32_t>(checkpoint_every);
  }
  if (flags.GetBool("resume")) {
    auto checkpoint = ReadCheckpoint(checkpoint_path);
    if (checkpoint.ok()) {
      auto prefix = ValidateCheckpointForResume(*checkpoint, *graph, k,
                                                greedy_options);
      if (!prefix.ok()) return Fail(prefix.status());
      std::printf("resuming from %s: replaying %zu selection(s)\n",
                  checkpoint_path.c_str(), prefix->size());
      greedy_options.checkpoint.resume_prefix = std::move(*prefix);
    } else if (checkpoint.status().IsIOError()) {
      // No checkpoint yet (first run, or it never got written before the
      // crash): a cold start is the correct resume of "nothing".
      std::printf("no checkpoint at %s; starting fresh\n",
                  checkpoint_path.c_str());
    } else {
      // Corrupt or stale files are refused loudly — resuming the wrong
      // prefix would silently produce a non-greedy solution.
      return Fail(checkpoint.status());
    }
  }

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  Result<Solution> solution =
      algorithm == Algorithm::kConstrainedGreedy
          ? RunAlgorithm(algorithm, *graph, k, greedy_options, spec, &rng,
                         threads)
          : RunAlgorithm(algorithm, *graph, k, greedy_options, &rng,
                         threads);
  if (!solution.ok()) return fail_with_observability(solution.status());

  std::printf("%s (%s variant): retained %zu of %zu items, cover %.4f%% "
              "in %s\n",
              AlgorithmDisplayName(algorithm).c_str(),
              std::string(VariantName(*variant)).c_str(),
              solution->items.size(), graph->NumNodes(),
              solution->cover * 100.0,
              FormatDuration(solution->solve_seconds).c_str());
  if (algorithm == Algorithm::kConstrainedGreedy) {
    double total_cost = 0.0;
    for (NodeId item : solution->items) total_cost += spec.CostOf(item);
    if (spec.HasBudget()) {
      std::printf("constraints: total cost %.6g of budget %.6g\n",
                  total_cost, spec.budget);
    } else {
      std::printf("constraints: total cost %.6g\n", total_cost);
    }
  }
  const bool signal_truncated =
      solution->stats.truncated && LastCancelSignal() != 0;
  if (solution->stats.truncated) {
    std::printf("solve truncated by %s after %zu selection(s); the prefix "
                "above is a valid (shorter) greedy solution\n",
                signal_truncated ? "signal" : "deadline",
                solution->items.size());
  }
  if (flags.GetBool("stats")) {
    std::printf("stats: %s\n", solution->stats.ToString().c_str());
  }
  if (flags.GetBool("report")) {
    auto report = BuildSolutionReport(*graph, *solution);
    if (!report.ok()) return Fail(report.status());
    PrintSolutionReport(*report, &std::cout);
  }
  if (!flags.GetString("out").empty()) {
    Status st = WriteSolutionCsv(*graph, *solution, flags.GetString("out"));
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s\n", flags.GetString("out").c_str());
  }
  if (!flags.GetString("coverage-out").empty()) {
    std::ofstream cov(flags.GetString("coverage-out"));
    if (!cov) return Fail(Status::IOError("cannot open coverage-out"));
    Status st = WriteCoverageCsv(*graph, *solution, &cov);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s\n", flags.GetString("coverage-out").c_str());
  }
  if (!flags.GetString("index_out").empty()) {
    serve::ServingIndexOptions index_options;
    index_options.top_m =
        static_cast<size_t>(flags.GetInt("index_top_m"));
    auto index = serve::ServingIndex::Build(*graph, *solution,
                                            index_options);
    if (!index.ok()) return Fail(index.status());
    Status st = index->Save(flags.GetString("index_out"));
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s (serving index: %zu nodes, %zu retained, "
                "top_m=%zu)\n",
                flags.GetString("index_out").c_str(), index->NumNodes(),
                index->NumRetained(), index->top_m());
  }
  Status export_st = export_observability();
  if (!export_st.ok()) return Fail(export_st);
  // A deadline-truncated solve exits 0 — the user asked for a time budget
  // and got the best solution it bought. A signal-truncated one exits
  // with a distinct nonzero code so scripts can tell it was interrupted.
  return signal_truncated ? kExitSignalTruncated : 0;
}

int CmdThreshold(int argc, char** argv) {
  FlagParser flags(
      "prefcover threshold: smallest set reaching a coverage target");
  flags.AddString("graph", "graph.pcg", "graph path");
  flags.AddDouble("coverage", 0.8, "coverage target in [0,1]");
  flags.AddString("variant", "auto", "independent|normalized|auto");
  flags.AddString("out", "", "optional CSV for the retained items");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;

  auto graph = ReadGraphBinaryFile(flags.GetString("graph"));
  if (!graph.ok()) return Fail(graph.status());
  auto variant = ResolveVariant(flags.GetString("variant"), *graph);
  if (!variant.ok()) return Fail(variant.status());

  auto result = SolveCoverageThreshold(*graph, flags.GetDouble("coverage"),
                                       *variant,
                                       ThresholdAlgorithm::kGreedy);
  if (!result.ok()) return Fail(result.status());
  if (!result->reached) {
    std::printf("target unreachable: full catalog covers %.4f%%\n",
                result->solution.cover * 100.0);
    return 1;
  }
  std::printf("%zu items (%.2f%% of the catalog) cover %.4f%%\n",
              result->set_size,
              100.0 * static_cast<double>(result->set_size) /
                  static_cast<double>(graph->NumNodes()),
              result->solution.cover * 100.0);
  if (!flags.GetString("out").empty()) {
    Status st =
        WriteSolutionCsv(*graph, result->solution, flags.GetString("out"));
    if (!st.ok()) return Fail(st);
  }
  return 0;
}

int CmdExport(int argc, char** argv) {
  FlagParser flags("prefcover export: dump a .pcg graph to CSV");
  flags.AddString("graph", "graph.pcg", "graph path");
  flags.AddString("nodes", "nodes.csv", "output node CSV");
  flags.AddString("edges", "edges.csv", "output edge CSV");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;
  auto graph = ReadGraphBinaryFile(flags.GetString("graph"));
  if (!graph.ok()) return Fail(graph.status());
  std::ofstream nodes(flags.GetString("nodes"));
  std::ofstream edges(flags.GetString("edges"));
  if (!nodes || !edges) {
    return Fail(Status::IOError("cannot open output files"));
  }
  Status st = WriteGraphCsv(*graph, &nodes, &edges);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s and %s\n", flags.GetString("nodes").c_str(),
              flags.GetString("edges").c_str());
  return 0;
}

int CmdServe(int argc, char** argv) {
  FlagParser flags(
      "prefcover serve: answer substitute queries over a serving index "
      "(line protocol on stdin, or a TCP socket with --port; see "
      "SERVING.md)");
  flags.AddString("index", "", "PCSIDX01 index file (from solve "
                  "--index_out); required unless --graph is given");
  flags.AddString("graph", "",
                  "solve in-process instead of loading --index "
                  "(requires --k)");
  flags.AddInt("k", 0, "items to retain for --graph");
  flags.AddString("variant", "auto", "independent|normalized|auto");
  flags.AddInt("top_m", 8, "substitutes per node for --graph");
  flags.AddInt("batch", 64, "max requests answered per batch");
  flags.AddInt("batch_window_us", 100,
               "batch fill window in microseconds (0 = no wait)");
  flags.AddInt("cache_capacity", 65536,
               "response cache entries; 0 disables caching");
  flags.AddInt("max_queue", 8192,
               "queued-request bound; excess requests are shed");
  flags.AddInt("deadline_us", 0,
               "per-request deadline in microseconds; 0 = none");
  flags.AddInt("brownout_watermark", 0,
               "post-batch queue backlog at which the engine serves "
               "degraded (top-1, uncached) answers; 0 = off");
  flags.AddInt("threads", 0,
               "worker pool threads for intra-batch fan-out; 0 = the "
               "dispatcher answers batches itself");
  flags.AddInt("port", 0, "TCP port to listen on; 0 = read stdin");
  flags.AddDouble("stats_every_s", 0.0,
                  "print a live qps / p99 line to stderr at this interval "
                  "(0 = off)");
  flags.AddString("metrics_out", "",
                  "write the final metrics snapshot JSON here on clean "
                  "shutdown (same document as solve --metrics_out)");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;

  std::shared_ptr<const serve::ServingIndex> index;
  if (!flags.GetString("index").empty()) {
    auto loaded = serve::ServingIndex::Load(flags.GetString("index"));
    if (!loaded.ok()) return Fail(loaded.status());
    index = std::make_shared<const serve::ServingIndex>(
        std::move(*loaded));
  } else if (!flags.GetString("graph").empty()) {
    if (flags.GetInt("k") <= 0) {
      return Fail(Status::InvalidArgument("--graph requires --k >= 1"));
    }
    auto graph = ReadGraphBinaryFile(flags.GetString("graph"));
    if (!graph.ok()) return Fail(graph.status());
    auto variant = ResolveVariant(flags.GetString("variant"), *graph);
    if (!variant.ok()) return Fail(variant.status());
    size_t k = static_cast<size_t>(flags.GetInt("k"));
    if (k > graph->NumNodes()) k = graph->NumNodes();
    GreedyOptions greedy_options;
    greedy_options.variant = *variant;
    auto solution = SolveGreedyLazy(*graph, k, greedy_options);
    if (!solution.ok()) return Fail(solution.status());
    serve::ServingIndexOptions index_options;
    index_options.top_m = static_cast<size_t>(flags.GetInt("top_m"));
    auto built = serve::ServingIndex::Build(*graph, *solution,
                                            index_options);
    if (!built.ok()) return Fail(built.status());
    index = std::make_shared<const serve::ServingIndex>(
        std::move(*built));
  } else {
    return Fail(
        Status::InvalidArgument("serve needs --index or --graph"));
  }

  serve::QueryEngineOptions engine_options;
  engine_options.batch_limit = static_cast<size_t>(flags.GetInt("batch"));
  engine_options.batch_window_us = flags.GetInt("batch_window_us");
  engine_options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache_capacity"));
  engine_options.max_queue =
      static_cast<size_t>(flags.GetInt("max_queue"));
  engine_options.default_deadline_us = flags.GetInt("deadline_us");
  engine_options.brownout_watermark =
      static_cast<size_t>(flags.GetInt("brownout_watermark"));
  std::unique_ptr<ThreadPool> pool;
  if (flags.GetInt("threads") > 0) {
    pool = std::make_unique<ThreadPool>(
        static_cast<size_t>(flags.GetInt("threads")));
    engine_options.pool = pool.get();
  }
  std::fprintf(stderr,
               "serving %zu nodes (%zu retained, %s variant, top_m=%zu)\n",
               index->NumNodes(), index->NumRetained(),
               std::string(VariantName(index->variant())).c_str(),
               index->top_m());
  serve::QueryEngine engine(std::move(index), engine_options);

  // Live stats line: one background sampler drives both the ring (for the
  // final --metrics_out snapshot) and the periodic stderr report.
  std::unique_ptr<obs::MetricsSampler> sampler;
  const double stats_every_s = flags.GetDouble("stats_every_s");
  if (stats_every_s > 0.0) {
    obs::TimeseriesOptions sampler_options;
    sampler_options.interval_s = stats_every_s;
    sampler_options.on_sample = [](const obs::MetricsSample& current,
                                   const obs::MetricsSample* previous) {
      if (previous == nullptr) return;  // nothing to rate against yet
      const double qps =
          obs::CounterRatePerSecond(*previous, current, "serve.requests");
      double p99_us = 0.0;
      for (const auto& h : current.snapshot.histograms) {
        if (h.name != "serve.latency_us") continue;
        for (const auto& earlier : previous->snapshot.histograms) {
          if (earlier.name == h.name) {
            p99_us = obs::HistogramDeltaQuantile(earlier, h, 0.99);
            break;
          }
        }
        break;
      }
      std::fprintf(stderr,
                   "[stats] requests=%llu qps=%.1f p99_us=%.0f shed=%llu\n",
                   static_cast<unsigned long long>(
                       current.snapshot.CounterOr("serve.requests")),
                   qps, p99_us,
                   static_cast<unsigned long long>(current.snapshot.CounterOr(
                       "serve.admission_rejected")));
    };
    sampler = std::make_unique<obs::MetricsSampler>(
        &obs::MetricsRegistry::Global(), sampler_options);
    sampler->Start();
  }
  // Snapshot written on every clean shutdown path (quit, EOF, TCP
  // shutdown verb); skipped when the process is killed, by design.
  auto export_metrics = [&flags, &sampler]() -> int {
    if (sampler != nullptr) sampler->Stop();
    const std::string& metrics_out = flags.GetString("metrics_out");
    if (metrics_out.empty()) return 0;
    auto write = [&metrics_out]() -> Status {
      PREFCOVER_FAILPOINT_STATUS("metrics.export");
      return WriteFileAtomic(
          metrics_out,
          MetricsSnapshotToJson(obs::MetricsRegistry::Global().Snapshot())
              .Dump());
    };
    Status st = write();
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote %s\n", metrics_out.c_str());
    return 0;
  };

  const int64_t port = flags.GetInt("port");
  if (port == 0) {
    std::string line;
    bool quit = false;
    while (!quit && std::getline(std::cin, line)) {
      std::string response = serve::HandleServeLine(&engine, line, &quit);
      std::printf("%s\n", response.c_str());
      std::fflush(stdout);
    }
    return export_metrics();
  }

#if defined(__unix__)
  // A client vanishing mid-write must surface as an EPIPE write error on
  // that connection, not kill the whole server.
  serve::IgnoreSigpipe();
  auto listener = serve::ListenTcp(static_cast<uint16_t>(port));
  if (!listener.ok()) return Fail(listener.status());
  auto bound = serve::LocalPort(*listener);
  if (!bound.ok()) return Fail(bound.status());
  std::fprintf(stderr, "listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(*bound));
  // One session thread per connection: resilient clients hold their
  // connection for many requests, so a serial accept loop would let one
  // client starve the rest. Request concurrency still lives in the
  // engine (Submit is thread-safe); the threads only pump sockets.
  // AcceptClient rides out EINTR and transient (ECONNABORTED-class)
  // failures internally.
  const int listener_fd = *listener;
  std::atomic<bool> stop{false};
  std::atomic<int> active_sessions{0};
  for (;;) {
    auto fd = serve::AcceptClient(listener_fd);
    if (!fd.ok()) {
      // A `shutdown` session unblocks this accept by shutting the
      // listener down; anything else is a real error.
      if (stop.load(std::memory_order_relaxed)) break;
      close(listener_fd);
      return Fail(fd.status());
    }
    active_sessions.fetch_add(1, std::memory_order_relaxed);
    std::thread([&engine, &stop, &active_sessions, listener_fd,
                 conn = *fd] {
      if (!serve::ServeConnectionLoop(&engine, conn)) {
        stop.store(true, std::memory_order_relaxed);
        ::shutdown(listener_fd, SHUT_RDWR);
      }
      active_sessions.fetch_sub(1, std::memory_order_relaxed);
    }).detach();
    if (stop.load(std::memory_order_relaxed)) break;
  }
  // Let in-flight sessions finish before tearing the engine down under
  // them.
  while (active_sessions.load(std::memory_order_relaxed) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  close(listener_fd);
  return export_metrics();
#else
  return Fail(Status::Unimplemented("--port requires a POSIX host"));
#endif
}

#if defined(__unix__) || defined(__APPLE__)

int CmdDistWorker(int argc, char** argv) {
  FlagParser flags(
      "prefcover dist-worker: candidate-shard worker for the distributed "
      "greedy solve (protocol in DISTRIBUTED.md). Prints "
      "DIST_WORKER_PORT=<port> once listening; runs until a coordinator "
      "sends `shutdown`");
  flags.AddString("graph", "graph.pcg",
                  "graph path (every worker loads the full graph; the "
                  "coordinator's `init` assigns the candidate shard)");
  flags.AddInt("port", 0, "TCP port to listen on (0 = ephemeral)");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;
  const int64_t port = flags.GetInt("port");
  if (port < 0 || port > 65535) {
    return Fail(Status::InvalidArgument("--port must be in [0, 65535]"));
  }
  auto graph = ReadGraphBinaryFile(flags.GetString("graph"));
  if (!graph.ok()) return Fail(graph.status());
  Status st = dist::RunDistWorkerServer(*graph, static_cast<uint16_t>(port));
  if (!st.ok()) return Fail(st);
  return 0;
}

int CmdDistSolve(int argc, char** argv) {
  FlagParser flags(
      "prefcover dist-solve: coordinate a sharded greedy solve over "
      "running dist-worker processes (byte-identical to "
      "solve --algorithm=lazy; see DISTRIBUTED.md)");
  flags.AddString("graph", "graph.pcg", "graph path");
  flags.AddInt("k", 100, "number of items to retain");
  flags.AddString("variant", "auto", "independent|normalized|auto");
  flags.AddString("workers", "",
                  "comma-separated worker endpoints `host:port[,...]` "
                  "(required)");
  flags.AddString("simd", "",
                  "worker kernel tier scalar|word|avx2 (empty = each "
                  "worker's default dispatch)");
  flags.AddInt("threads", 0,
               "fan-out pool threads for the per-round broadcasts "
               "(0 = serial)");
  flags.AddBool("stats", false, "print solver telemetry");
  flags.AddString("out", "", "optional CSV for the retained items");
  if (int rc = ParseOrExit(&flags, argc, argv); rc != 0) return rc == 2 ? 0 : 1;

  auto graph = ReadGraphBinaryFile(flags.GetString("graph"));
  if (!graph.ok()) return Fail(graph.status());
  auto variant = ResolveVariant(flags.GetString("variant"), *graph);
  if (!variant.ok()) return Fail(variant.status());
  if (flags.GetInt("k") <= 0) {
    return Fail(Status::InvalidArgument("--k must be >= 1"));
  }
  size_t k = static_cast<size_t>(flags.GetInt("k"));
  if (k > graph->NumNodes()) k = graph->NumNodes();

  dist::DistSolveOptions dist_options;
  for (const std::string& field :
       SplitString(flags.GetString("workers"), ',')) {
    if (field.empty()) continue;
    const size_t colon = field.rfind(':');
    if (colon == std::string::npos) {
      return Fail(Status::InvalidArgument(
          "worker endpoint must be host:port, got " + field));
    }
    auto port = ParseUint32(field.substr(colon + 1));
    if (!port.ok()) return Fail(port.status());
    if (*port == 0 || *port > 65535) {
      return Fail(Status::InvalidArgument("bad worker port in " + field));
    }
    dist::DistWorkerEndpoint endpoint;
    endpoint.host = field.substr(0, colon);
    endpoint.port = static_cast<uint16_t>(*port);
    dist_options.workers.push_back(endpoint);
  }
  if (dist_options.workers.empty()) {
    return Fail(Status::InvalidArgument(
        "--workers requires at least one host:port endpoint"));
  }
  dist_options.simd_level = flags.GetString("simd");

  std::unique_ptr<ThreadPool> pool;
  if (flags.GetInt("threads") > 0) {
    pool = std::make_unique<ThreadPool>(
        static_cast<size_t>(flags.GetInt("threads")));
    dist_options.pool = pool.get();
  }

  GreedyOptions greedy_options;
  greedy_options.variant = *variant;
  auto solution =
      dist::SolveGreedyDistributed(*graph, k, greedy_options, dist_options);
  if (!solution.ok()) return Fail(solution.status());

  std::printf("greedy-dist (%s variant, %zu worker(s)): retained %zu of "
              "%zu items, cover %.4f%% in %s\n",
              std::string(VariantName(*variant)).c_str(),
              dist_options.workers.size(), solution->items.size(),
              graph->NumNodes(), solution->cover * 100.0,
              FormatDuration(solution->solve_seconds).c_str());
  if (flags.GetBool("stats")) {
    std::printf("stats: %s\n", solution->stats.ToString().c_str());
  }
  if (!flags.GetString("out").empty()) {
    Status st = WriteSolutionCsv(*graph, *solution, flags.GetString("out"));
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s\n", flags.GetString("out").c_str());
  }
  return 0;
}

#endif  // __unix__ || __APPLE__

int CmdVersion() {
  EnvCapture env = EnvCapture::Capture();
  std::printf("prefcover %s\n", BuildVersionString().c_str());
  std::printf("git: %s\nbuild: %s, %s\n", env.git_sha.c_str(),
              env.build_type.c_str(), env.compiler.c_str());
  return 0;
}

void PrintUsage() {
  std::fputs(
      "usage: prefcover <command> [flags]\n\n"
      "commands:\n"
      "  generate    synthesize a profile-shaped clickstream CSV\n"
      "  construct   clickstream CSV -> preference graph (.pcg)\n"
      "  stats       describe a graph file\n"
      "  solve       select k items maximizing the cover\n"
      "  threshold   smallest set reaching a coverage target\n"
      "  export      dump a .pcg graph to nodes/edges CSV\n"
      "  serve       answer substitute queries over a serving index\n"
      "  dist-worker candidate-shard worker for the distributed solve\n"
      "  dist-solve  coordinate a sharded greedy solve over workers\n"
      "  version     print the build version\n\n"
      "run `prefcover <command> --help` for command flags\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  std::string command = argv[1];
  // Shift argv so each command parses its own flags from argv[1:].
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (command == "construct") return CmdConstruct(sub_argc, sub_argv);
  if (command == "stats") return CmdStats(sub_argc, sub_argv);
  if (command == "solve") return CmdSolve(sub_argc, sub_argv);
  if (command == "threshold") return CmdThreshold(sub_argc, sub_argv);
  if (command == "export") return CmdExport(sub_argc, sub_argv);
  if (command == "serve") return CmdServe(sub_argc, sub_argv);
#if defined(__unix__) || defined(__APPLE__)
  if (command == "dist-worker") return CmdDistWorker(sub_argc, sub_argv);
  if (command == "dist-solve") return CmdDistSolve(sub_argc, sub_argv);
#endif
  if (command == "version" || command == "--version") return CmdVersion();
  if (command == "--help" || command == "-h" || command == "help") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  PrintUsage();
  return 1;
}
