// Load generator for the serving layer.
//
// Drives an in-process QueryEngine with a Zipf-distributed query stream at
// a target QPS (or open throttle) and reports achieved throughput,
// p50/p95/p99 latency and cache hit-rate. Latency is measured as
// Response.done_ns - submit_ns, both stamps taken on the engine's steady
// clock, so the numbers are exact per-request service+queue times and do
// not race the future hand-off.
//
// The traffic mix mirrors production lookups: mostly `subs` (the
// render-a-substitute path), some `covered` probes, an occasional
// `coverk` planning query. Item popularity follows Zipf(s) over the
// catalog, the regime in which the engine's LRU cache is designed to pay
// off.
//
// Exit status: 0 on success; 1 when any SLO assertion fails
// (--p99_budget_us, --min_qps, --min_hit_rate) or when any protocol error
// (a response that is neither OK, deadline-cancelled, nor load-shed)
// occurs — a valid generated stream must never produce one.
//
// TCP mode: --connect=host:port drives a live `prefcover serve --port`
// process through the ResilientClient (timeouts, retry/backoff,
// reconnect, circuit breaker) instead of an in-process engine, and
// additionally reports retry/timeout/reconnect counts and the longest
// success gap (time_to_recovery_ms — how long the stream was dark across
// an induced server restart). --assert_max_error_rate turns the observed
// failure rate into the exit status.
//
// Methodology notes live in SERVING.md ("Latency methodology").

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/baseline_solvers.h"
#include "serve/client.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "serve/query_engine.h"
#include "serve/serving_index.h"
#include "synth/dataset_profiles.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace {

using prefcover::FlagParser;
using prefcover::NodeId;
using prefcover::QuantileSketch;
using prefcover::Rng;
using prefcover::Status;
using prefcover::StatusCode;
using prefcover::ZipfDistribution;
using prefcover::serve::QueryEngine;
using prefcover::serve::QueryEngineOptions;
using prefcover::serve::QueryType;
using prefcover::serve::Request;
using prefcover::serve::Response;
using prefcover::serve::ServingIndex;
using prefcover::serve::SteadyNowNanos;
namespace obs = prefcover::obs;

struct InFlight {
  std::future<Response> future;
  int64_t submit_ns = 0;
};

struct Tally {
  uint64_t ok = 0;
  uint64_t deadline_cancelled = 0;
  uint64_t shed = 0;
  uint64_t protocol_errors = 0;
  QuantileSketch latency_us;

  void Absorb(const Response& response, int64_t submit_ns) {
    if (response.status.ok()) {
      ++ok;
      latency_us.Add(
          static_cast<double>(response.done_ns - submit_ns) / 1000.0);
    } else if (response.status.IsCancelled()) {
      ++deadline_cancelled;
    } else if (response.status.code() == StatusCode::kOutOfRange) {
      ++shed;
    } else {
      if (protocol_errors < 5) {
        std::fprintf(stderr, "protocol error: %s\n",
                     response.line.c_str());
      }
      ++protocol_errors;
    }
  }
};

// Live scrape state, filled from the sampler thread (which holds the
// sampler lock during on_sample); the main thread reads it only after
// Stop() joins, so no extra synchronization is needed.
struct LiveScrape {
  std::vector<double> requests;  // scraped serve_requests, one per sample
  std::string first_error;      // first lint/parse failure, if any
};

#if defined(__unix__) || defined(__APPLE__)

// Closed-loop TCP mode against a live server. Returns the process exit
// code.
int RunTcpLoadgen(const FlagParser& flags) {
  using prefcover::serve::ClientCounters;
  using prefcover::serve::ResilientClient;
  using prefcover::serve::ResilientClientOptions;

  const std::string target = flags.GetString("connect");
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants host:port, got '%s'\n",
                 target.c_str());
    return 2;
  }
  ResilientClientOptions base;
  base.host = target.substr(0, colon);
  base.port = static_cast<uint16_t>(
      std::atoi(target.substr(colon + 1).c_str()));
  base.request_timeout_ms =
      static_cast<int>(flags.GetInt("request_timeout_ms"));
  base.max_attempts = static_cast<int>(flags.GetInt("max_attempts"));
  base.breaker_threshold =
      static_cast<int>(flags.GetInt("breaker_threshold"));

  const uint32_t nodes =
      static_cast<uint32_t>(flags.GetInt("connect_nodes"));
  const double subs_frac = flags.GetDouble("subs_frac");
  const double covered_frac = flags.GetDouble("covered_frac");
  const uint32_t top_j = static_cast<uint32_t>(flags.GetInt("top_j"));
  const double zipf_s = flags.GetDouble("zipf_s");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const int64_t duration_ms =
      static_cast<int64_t>(flags.GetDouble("duration_s") * 1e3);
  const size_t n_conns =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("connections")));

  auto now_ms = [] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  struct ConnResult {
    ClientCounters counters;
    std::vector<std::pair<int64_t, double>> successes;  // (ms, us)
    uint64_t protocol_errors = 0;
  };
  std::vector<ConnResult> results(n_conns);
  std::vector<std::thread> threads;
  threads.reserve(n_conns);
  const int64_t start_ms = now_ms();
  for (size_t c = 0; c < n_conns; ++c) {
    threads.emplace_back([&, c] {
      ResilientClientOptions options = base;
      options.jitter_seed = seed * 1000003ull + c;
      ResilientClient client(options);
      Rng rng(seed + 77ull * c);
      ZipfDistribution zipf(nodes, zipf_s);
      ConnResult& out = results[c];
      while (now_ms() - start_ms < duration_ms) {
        std::string line;
        const double which = rng.NextDouble();
        if (which < subs_frac) {
          line = "subs " + std::to_string(zipf.Sample(&rng)) + " " +
                 std::to_string(top_j);
        } else if (which < subs_frac + covered_frac) {
          line = "covered " + std::to_string(zipf.Sample(&rng));
        } else {
          line = "coverk " + std::to_string(rng.NextBounded(nodes + 1));
        }
        const int64_t sent = now_ms();
        auto response = client.Call(line);
        if (response.ok()) {
          if (response->rfind("OK", 0) != 0 &&
              response->rfind("ERR", 0) != 0) {
            ++out.protocol_errors;
          }
          const int64_t done = now_ms();
          out.successes.emplace_back(
              done, static_cast<double>(done - sent) * 1000.0);
        } else if (client.breaker_open()) {
          // Fast-fail window; let the cooldown elapse instead of
          // spinning on FailedPrecondition.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
      out.counters = client.counters();
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed_s =
      static_cast<double>(now_ms() - start_ms) / 1e3;

  ClientCounters total;
  uint64_t protocol_errors = 0;
  std::vector<std::pair<int64_t, double>> successes;
  for (const auto& r : results) {
    total.requests += r.counters.requests;
    total.attempts += r.counters.attempts;
    total.retries += r.counters.retries;
    total.reconnects += r.counters.reconnects;
    total.timeouts += r.counters.timeouts;
    total.failures += r.counters.failures;
    total.breaker_opens += r.counters.breaker_opens;
    total.breaker_probes += r.counters.breaker_probes;
    protocol_errors += r.protocol_errors;
    successes.insert(successes.end(), r.successes.begin(),
                     r.successes.end());
  }
  std::sort(successes.begin(), successes.end());
  // The longest dark stretch of the whole stream: across an induced
  // server restart this is the client-observed time to recovery.
  double recovery_ms = 0.0;
  for (size_t i = 1; i < successes.size(); ++i) {
    recovery_ms = std::max(
        recovery_ms,
        static_cast<double>(successes[i].first - successes[i - 1].first));
  }
  QuantileSketch latency_us;
  latency_us.Reserve(successes.size());
  for (const auto& s : successes) latency_us.Add(s.second);
  const double error_rate =
      total.requests == 0
          ? 0.0
          : static_cast<double>(total.failures) /
                static_cast<double>(total.requests);

  std::printf(
      "{\"mode\": \"tcp\", \"requests\": %" PRIu64 ", \"ok\": %zu"
      ", \"failures\": %" PRIu64 ", \"protocol_errors\": %" PRIu64
      ", \"attempts\": %" PRIu64 ", \"retries\": %" PRIu64
      ", \"timeouts\": %" PRIu64 ", \"reconnects\": %" PRIu64
      ", \"breaker_opens\": %" PRIu64 ", \"error_rate\": %.4f"
      ", \"elapsed_s\": %.3f, \"qps\": %.0f"
      ", \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f"
      ", \"time_to_recovery_ms\": %.0f}\n",
      total.requests, successes.size(), total.failures, protocol_errors,
      total.attempts, total.retries, total.timeouts, total.reconnects,
      total.breaker_opens, error_rate, elapsed_s,
      elapsed_s > 0 ? static_cast<double>(successes.size()) / elapsed_s
                    : 0.0,
      latency_us.Quantile(0.50), latency_us.Quantile(0.95),
      latency_us.Quantile(0.99), recovery_ms);

  bool failed = false;
  if (protocol_errors > 0) {
    std::fprintf(stderr, "FAIL: %" PRIu64 " protocol errors\n",
                 protocol_errors);
    failed = true;
  }
  const double max_error_rate = flags.GetDouble("assert_max_error_rate");
  if (max_error_rate >= 0.0 && error_rate > max_error_rate) {
    std::fprintf(stderr, "FAIL: error rate %.4f above bound %.4f\n",
                 error_rate, max_error_rate);
    failed = true;
  }
  if (successes.empty()) {
    std::fprintf(stderr, "FAIL: no request ever succeeded\n");
    failed = true;
  }
  return failed ? 1 : 0;
}

#endif  // __unix__ || __APPLE__

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "Replays a Zipf-distributed query stream against a ServingIndex "
      "and reports p50/p95/p99 latency, throughput and cache hit-rate.");
  flags.AddString("index", "",
                  "PCSIDX01 index file to serve (or --synth_tier)")
      .AddString("synth_tier", "",
                 "serve a generated scale-tier graph instead of --index: "
                 "S|M|L (top-k-by-weight selection, in-process)")
      .AddInt("synth_k", 0,
              "retained items for --synth_tier; 0 = 1% of the catalog")
      .AddInt("synth_seed", 42, "graph seed for --synth_tier")
      .AddDouble("duration_s", 2.0, "wall-clock run length")
      .AddInt("qps", 0, "target queries/s; 0 = open throttle")
      .AddDouble("zipf_s", 1.0, "Zipf skew of item popularity")
      .AddInt("top_j", 4, "substitutes requested per subs query")
      .AddDouble("subs_frac", 0.80, "fraction of subs queries")
      .AddDouble("covered_frac", 0.15,
                 "fraction of covered queries (rest is coverk)")
      .AddInt("batch", 64, "engine batch limit")
      .AddInt("batch_window_us", 100, "engine batch fill window")
      .AddInt("cache_capacity", 65536, "engine cache entries; 0 disables")
      .AddInt("max_queue", 8192, "engine admission bound")
      .AddInt("deadline_us", 0, "per-request deadline; 0 = none")
      .AddInt("threads", 0, "worker pool threads; 0 = dispatcher only")
      .AddInt("outstanding", 1024, "max in-flight requests")
      .AddInt("seed", 7, "traffic stream seed")
      .AddInt("p99_budget_us", 0, "fail if p99 exceeds this; 0 = off")
      .AddInt("min_qps", 0, "fail if achieved qps is below this")
      .AddDouble("min_hit_rate", 0.0,
                 "fail if cache hit-rate is below this")
      .AddInt("metrics_poll_ms", 0,
              "scrape the live Prometheus exposition at this interval "
              "during the run and assert the scraped series (0 = off)")
      .AddDouble("live_p99_tolerance", 0.20,
                 "allowed relative slack between the scraped engine p99 "
                 "and the client-observed p99 (on top of the owning "
                 "bucket's resolution)")
      .AddString("connect", "",
                 "host:port of a live `prefcover serve --port` process; "
                 "drives it over TCP through the resilient client "
                 "instead of an in-process engine")
      .AddInt("connections", 4, "client threads for --connect")
      .AddInt("connect_nodes", 512,
              "node-id range the --connect stream draws from")
      .AddInt("request_timeout_ms", 2000,
              "per-request timeout for --connect")
      .AddInt("max_attempts", 4,
              "attempts per request for --connect (idempotent only)")
      .AddInt("breaker_threshold", 8,
              "client circuit-breaker threshold for --connect")
      .AddDouble("assert_max_error_rate", -1.0,
                 "fail when the --connect failure rate exceeds this "
                 "(negative = off)");
  Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    return parse_status.code() == StatusCode::kOutOfRange ? 0 : 2;
  }
  if (!flags.GetString("connect").empty()) {
#if defined(__unix__) || defined(__APPLE__)
    return RunTcpLoadgen(flags);
#else
    std::fprintf(stderr, "--connect requires a POSIX host\n");
    return 2;
#endif
  }
  if (flags.GetString("index").empty() ==
      flags.GetString("synth_tier").empty()) {
    std::fprintf(stderr, "exactly one of --index/--synth_tier required\n%s",
                 flags.UsageString().c_str());
    return 2;
  }

  std::shared_ptr<const ServingIndex> index;
  if (!flags.GetString("index").empty()) {
    auto loaded = ServingIndex::Load(flags.GetString("index"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load index: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    index =
        std::make_shared<const ServingIndex>(std::move(loaded).value());
  } else {
    // Self-contained mode for perf work: tier graph + top-k-by-weight
    // selection (selection quality is irrelevant to serving load).
    auto tier =
        prefcover::ParseScaleTierName(flags.GetString("synth_tier"));
    if (!tier.ok()) {
      std::fprintf(stderr, "%s\n", tier.status().ToString().c_str());
      return 2;
    }
    auto graph = prefcover::GenerateScaleTierGraph(
        *tier, static_cast<uint64_t>(flags.GetInt("synth_seed")));
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 2;
    }
    size_t k = static_cast<size_t>(flags.GetInt("synth_k"));
    if (k == 0) k = std::max<size_t>(1, graph->NumNodes() / 100);
    auto solution = prefcover::SolveTopKWeight(
        *graph, k, prefcover::Variant::kIndependent);
    if (!solution.ok()) {
      std::fprintf(stderr, "%s\n",
                   solution.status().ToString().c_str());
      return 2;
    }
    auto built = ServingIndex::Build(*graph, *solution);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 2;
    }
    index = std::make_shared<const ServingIndex>(std::move(built).value());
  }
  const uint32_t n = static_cast<uint32_t>(index->NumNodes());
  const uint64_t num_retained = index->NumRetained();
  std::fprintf(stderr, "index: %" PRIu32 " nodes, %" PRIu64
                       " retained, top_m=%zu\n",
               n, num_retained, index->top_m());

  QueryEngineOptions options;
  options.batch_limit = static_cast<size_t>(flags.GetInt("batch"));
  options.batch_window_us = flags.GetInt("batch_window_us");
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache_capacity"));
  options.max_queue = static_cast<size_t>(flags.GetInt("max_queue"));
  options.default_deadline_us = flags.GetInt("deadline_us");
  std::unique_ptr<prefcover::ThreadPool> pool;
  if (flags.GetInt("threads") > 0) {
    pool = std::make_unique<prefcover::ThreadPool>(
        static_cast<size_t>(flags.GetInt("threads")));
    options.pool = pool.get();
  }
  QueryEngine engine(index, options);

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  ZipfDistribution zipf(n, flags.GetDouble("zipf_s"));
  const double subs_frac = flags.GetDouble("subs_frac");
  const double covered_frac = flags.GetDouble("covered_frac");
  const uint32_t top_j = static_cast<uint32_t>(flags.GetInt("top_j"));

  const int64_t duration_ns =
      static_cast<int64_t>(flags.GetDouble("duration_s") * 1e9);
  const int64_t target_qps = flags.GetInt("qps");
  const int64_t interarrival_ns =
      target_qps > 0 ? 1000000000 / target_qps : 0;
  const size_t max_outstanding =
      static_cast<size_t>(flags.GetInt("outstanding"));

  // Live scraping: a background sampler snapshots the global registry on
  // the poll interval and each sample goes through the full exposition
  // render + lint + parse path — exactly what an external scraper of the
  // serve `metrics` verb would exercise.
  LiveScrape scrape;
  std::unique_ptr<obs::MetricsSampler> sampler;
  const int64_t poll_ms = flags.GetInt("metrics_poll_ms");
  if (poll_ms > 0) {
    obs::TimeseriesOptions sampler_options;
    sampler_options.interval_s = static_cast<double>(poll_ms) / 1000.0;
    sampler_options.on_sample = [&scrape](
                                    const obs::MetricsSample& current,
                                    const obs::MetricsSample*) {
      const std::string text = obs::RenderPrometheusText(current.snapshot);
      obs::LintResult lint = obs::LintPrometheusText(text);
      if (!lint.ok) {
        if (scrape.first_error.empty()) scrape.first_error = lint.message;
        return;
      }
      double requests = 0.0;
      if (!obs::FindPrometheusValue(text, "serve_requests", &requests)) {
        if (scrape.first_error.empty()) {
          scrape.first_error = "serve_requests missing from exposition";
        }
        return;
      }
      scrape.requests.push_back(requests);
    };
    sampler = std::make_unique<obs::MetricsSampler>(
        &obs::MetricsRegistry::Global(), sampler_options);
    sampler->Start();
  }

  Tally tally;
  tally.latency_us.Reserve(1 << 20);
  std::deque<InFlight> in_flight;
  uint64_t submitted = 0;

  const int64_t start_ns = SteadyNowNanos();
  int64_t next_send_ns = start_ns;
  while (true) {
    const int64_t now_ns = SteadyNowNanos();
    if (now_ns - start_ns >= duration_ns) break;
    if (interarrival_ns > 0) {
      if (now_ns < next_send_ns) {
        // Sub-10us gaps: spin instead of sleeping, the OS timer would
        // blow the pacing budget.
        continue;
      }
      next_send_ns += interarrival_ns;
    }

    Request request;
    const double which = rng.NextDouble();
    if (which < subs_frac) {
      request.type = QueryType::kSubstitutes;
      request.v = static_cast<NodeId>(zipf.Sample(&rng));
      request.top_j = top_j;
    } else if (which < subs_frac + covered_frac) {
      request.type = QueryType::kCovered;
      request.v = static_cast<NodeId>(zipf.Sample(&rng));
    } else {
      request.type = QueryType::kCoverageAtK;
      request.coverage_k = rng.NextBounded(num_retained + 1);
    }

    InFlight entry;
    entry.submit_ns = SteadyNowNanos();
    entry.future = engine.Submit(std::move(request));
    in_flight.push_back(std::move(entry));
    ++submitted;

    while (in_flight.size() >= max_outstanding) {
      InFlight done = std::move(in_flight.front());
      in_flight.pop_front();
      tally.Absorb(done.future.get(), done.submit_ns);
    }
  }
  for (InFlight& entry : in_flight) {
    tally.Absorb(entry.future.get(), entry.submit_ns);
  }
  const int64_t end_ns = SteadyNowNanos();
  // Stop takes a final sample, so the scraped series always covers the
  // complete run even when the poll interval exceeds the duration.
  if (sampler != nullptr) sampler->Stop();

  const double elapsed_s = static_cast<double>(end_ns - start_ns) / 1e9;
  const double achieved_qps =
      elapsed_s > 0 ? static_cast<double>(tally.ok) / elapsed_s : 0.0;
  const auto stats = engine.Stats();
  const uint64_t lookups = stats.cache_hits + stats.cache_misses;
  const double hit_rate =
      lookups > 0
          ? static_cast<double>(stats.cache_hits) /
                static_cast<double>(lookups)
          : 0.0;
  const double p50 = tally.latency_us.Quantile(0.50);
  const double p95 = tally.latency_us.Quantile(0.95);
  const double p99 = tally.latency_us.Quantile(0.99);

  // Engine-side view from the final scraped sample: request total and
  // the bucket-interpolated p99 of serve.latency_us.
  double live_p99_us = 0.0;
  const prefcover::obs::MetricsSnapshot::HistogramValue* live_hist =
      nullptr;
  std::vector<prefcover::obs::MetricsSample> live_series;
  if (sampler != nullptr) {
    live_series = sampler->Series();
    if (!live_series.empty()) {
      for (const auto& h : live_series.back().snapshot.histograms) {
        if (h.name == "serve.latency_us") {
          live_hist = &h;
          live_p99_us = obs::HistogramQuantile(h, 0.99);
          break;
        }
      }
    }
  }
  char live_fields[160] = "";
  if (sampler != nullptr) {
    std::snprintf(live_fields, sizeof(live_fields),
                  ", \"live_samples\": %zu, \"live_requests\": %.0f"
                  ", \"live_p99_us\": %.1f",
                  scrape.requests.size(),
                  scrape.requests.empty() ? 0.0 : scrape.requests.back(),
                  live_p99_us);
  }

  std::printf("{\"submitted\": %" PRIu64 ", \"ok\": %" PRIu64
              ", \"deadline_cancelled\": %" PRIu64 ", \"shed\": %" PRIu64
              ", \"protocol_errors\": %" PRIu64
              ", \"elapsed_s\": %.3f, \"qps\": %.0f"
              ", \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f"
              ", \"batches\": %" PRIu64
              ", \"cache_hit_rate\": %.4f%s}\n",
              submitted, tally.ok, tally.deadline_cancelled, tally.shed,
              tally.protocol_errors, elapsed_s, achieved_qps, p50, p95,
              p99, stats.batches, hit_rate, live_fields);

  bool failed = false;
  if (tally.protocol_errors > 0) {
    std::fprintf(stderr, "FAIL: %" PRIu64 " protocol errors\n",
                 tally.protocol_errors);
    failed = true;
  }
  if (flags.GetInt("p99_budget_us") > 0 &&
      p99 > static_cast<double>(flags.GetInt("p99_budget_us"))) {
    std::fprintf(stderr, "FAIL: p99 %.1fus exceeds budget %" PRId64
                         "us\n",
                 p99, flags.GetInt("p99_budget_us"));
    failed = true;
  }
  if (flags.GetInt("min_qps") > 0 &&
      achieved_qps < static_cast<double>(flags.GetInt("min_qps"))) {
    std::fprintf(stderr, "FAIL: qps %.0f below floor %" PRId64 "\n",
                 achieved_qps, flags.GetInt("min_qps"));
    failed = true;
  }
  if (flags.GetDouble("min_hit_rate") > 0.0 &&
      hit_rate < flags.GetDouble("min_hit_rate")) {
    std::fprintf(stderr, "FAIL: cache hit-rate %.4f below floor %.4f\n",
                 hit_rate, flags.GetDouble("min_hit_rate"));
    failed = true;
  }
  if (sampler != nullptr) {
    // Live-series SLOs, from the scraped exposition rather than the
    // in-process stats struct: the scrape path itself is under test.
    if (!scrape.first_error.empty()) {
      std::fprintf(stderr, "FAIL: exposition scrape: %s\n",
                   scrape.first_error.c_str());
      failed = true;
    }
    for (size_t i = 1; i < scrape.requests.size(); ++i) {
      if (scrape.requests[i] < scrape.requests[i - 1]) {
        std::fprintf(stderr,
                     "FAIL: serve_requests went backwards (%.0f -> %.0f)\n",
                     scrape.requests[i - 1], scrape.requests[i]);
        failed = true;
        break;
      }
    }
    if (scrape.requests.empty() || scrape.requests.back() <= 0.0) {
      std::fprintf(stderr,
                   "FAIL: scraped serve_requests never advanced\n");
      failed = true;
    }
    // p99 consistency: the engine histogram can only resolve latency to
    // its owning 1-2-5 bucket, so the check allows the client p99's
    // bucket range widened by --live_p99_tolerance.
    if (live_hist != nullptr && tally.ok > 0) {
      const double tol = flags.GetDouble("live_p99_tolerance");
      double bucket_lo = 0.0;
      double bucket_hi = std::numeric_limits<double>::infinity();
      for (size_t b = 0; b < live_hist->bounds.size(); ++b) {
        if (live_hist->bounds[b] >= p99) {
          bucket_hi = live_hist->bounds[b];
          bucket_lo = b > 0 ? live_hist->bounds[b - 1] : 0.0;
          break;
        }
        bucket_lo = live_hist->bounds[b];
      }
      if (live_p99_us < bucket_lo * (1.0 - tol) ||
          live_p99_us > bucket_hi * (1.0 + tol)) {
        std::fprintf(stderr,
                     "FAIL: live p99 %.1fus inconsistent with client p99 "
                     "%.1fus (bucket [%.0f, %.0f], tolerance %.0f%%)\n",
                     live_p99_us, p99, bucket_lo, bucket_hi, tol * 100.0);
        failed = true;
      }
    }
  }
  return failed ? 1 : 0;
}
