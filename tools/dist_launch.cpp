// dist_launch — one-command harness for the distributed sharded greedy
// solve: forks N `prefcover dist-worker` processes on ephemeral ports,
// coordinates a solve across them, optionally byte-compares the result
// against the single-process lazy solve, and tears the fleet down.
//
// Chaos seam: --kill_worker_round=R SIGKILLs one worker the moment the
// coordinator starts selection round R, which exercises the worker-loss
// detection + shard-rebalance path end to end (the final solution must
// still be byte-identical — asserted when --compare_single is on).
// --failpoints exports a PREFCOVER_FAILPOINTS spec to the workers, so
// net.* injection runs against real processes, not just socketpairs.
//
//   dist_launch --cli=build/tools/prefcover --graph=g.pcg --k=500
//       --workers=4 --compare_single
//   dist_launch ... --workers=4 --kill_worker_round=3 --compare_single
//       --failpoints='net.read=error_once'

#if !defined(__unix__) && !defined(__APPLE__)
#include <cstdio>
int main() {
  std::fprintf(stderr, "dist_launch requires a POSIX platform\n");
  return 2;
}
#else

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/greedy_solver.h"
#include "dist/distributed_solver.h"
#include "graph/graph_io.h"
#include "serve/transport.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

using namespace prefcover;

namespace {

struct WorkerProc {
  pid_t pid = -1;
  uint16_t port = 0;
  bool killed = false;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Forks one worker with stdout on a pipe and parses the
/// DIST_WORKER_PORT=<port> line it prints once listening.
Result<WorkerProc> SpawnWorker(const std::string& cli,
                               const std::string& graph,
                               const std::string& failpoints) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::IOError("fork: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    if (!failpoints.empty()) {
      ::setenv("PREFCOVER_FAILPOINTS", failpoints.c_str(), 1);
    }
    const std::string graph_flag = "--graph=" + graph;
    ::execl(cli.c_str(), cli.c_str(), "dist-worker", graph_flag.c_str(),
            "--port=0", static_cast<char*>(nullptr));
    std::fprintf(stderr, "exec %s failed\n", cli.c_str());
    ::_exit(127);
  }
  ::close(pipe_fds[1]);

  // The worker prints the port line right after binding; read until the
  // first newline.
  std::string line;
  char ch;
  while (line.size() < 256) {
    const ssize_t got = ::read(pipe_fds[0], &ch, 1);
    if (got <= 0) break;
    if (ch == '\n') break;
    line.push_back(ch);
  }
  ::close(pipe_fds[0]);
  WorkerProc worker;
  worker.pid = pid;
  if (line.rfind("DIST_WORKER_PORT=", 0) != 0) {
    ::kill(pid, SIGKILL);
    return Status::Internal("worker did not announce a port (got '" +
                            line + "')");
  }
  auto port = ParseUint32(line.substr(std::strlen("DIST_WORKER_PORT=")));
  if (!port.ok() || *port == 0 || *port > 65535) {
    ::kill(pid, SIGKILL);
    return Status::Internal("bad worker port line '" + line + "'");
  }
  worker.port = static_cast<uint16_t>(*port);
  return worker;
}

void SendShutdown(uint16_t port) {
  auto fd = serve::ConnectTcp("127.0.0.1", port, 500);
  if (!fd.ok()) return;
  static const char kShutdown[] = "shutdown\n";
  (void)serve::WriteFully(*fd, kShutdown, sizeof(kShutdown) - 1);
  char buffer[64];
  (void)serve::ReadSome(*fd, buffer, sizeof(buffer));
  ::close(*fd);
}

void Reap(std::vector<WorkerProc>* workers) {
  for (WorkerProc& worker : *workers) {
    if (worker.pid <= 0) continue;
    if (!worker.killed) SendShutdown(worker.port);
    // Escalate if the process lingers.
    for (int i = 0; i < 50; ++i) {
      if (::waitpid(worker.pid, nullptr, WNOHANG) == worker.pid) {
        worker.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (worker.pid > 0) {
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, nullptr, 0);
      worker.pid = -1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "dist_launch: spawn dist-worker processes, run a coordinated "
      "sharded greedy solve, optionally byte-compare against the "
      "single-process lazy solve, and shut the fleet down");
  flags.AddString("cli", "",
                  "path to the prefcover binary (required; workers run "
                  "`<cli> dist-worker`)");
  flags.AddString("graph", "graph.pcg", "graph path");
  flags.AddInt("k", 100, "number of items to retain");
  flags.AddString("variant", "independent", "independent|normalized");
  flags.AddInt("workers", 2, "worker processes to spawn (>= 1)");
  flags.AddString("simd", "",
                  "worker kernel tier scalar|word|avx2 (empty = default)");
  flags.AddInt("threads", 0, "coordinator fan-out pool (0 = serial)");
  flags.AddBool("compare_single", false,
                "also run the in-process lazy solve and fail unless "
                "items, cover curve and I[] are byte-identical");
  flags.AddInt("kill_worker_round", -1,
               "SIGKILL the last worker when this selection round starts "
               "(-1 = never); exercises rebalance");
  flags.AddString("failpoints", "",
                  "PREFCOVER_FAILPOINTS spec exported to the workers "
                  "(e.g. 'net.read=error_once')");
  flags.AddInt("request_timeout_ms", 5000, "per-request client budget");
  flags.AddInt("max_attempts", 5, "client attempts per request");
  Status parse_st = flags.Parse(argc, argv);
  if (parse_st.IsOutOfRange()) return 0;  // --help
  if (!parse_st.ok()) return Fail(parse_st);
  if (flags.GetString("cli").empty()) {
    return Fail(Status::InvalidArgument("--cli is required"));
  }
  const int64_t num_workers = flags.GetInt("workers");
  if (num_workers < 1) {
    return Fail(Status::InvalidArgument("--workers must be >= 1"));
  }

  auto graph = ReadGraphBinaryFile(flags.GetString("graph"));
  if (!graph.ok()) return Fail(graph.status());
  auto variant = ParseVariant(flags.GetString("variant"));
  if (!variant.ok()) return Fail(variant.status());
  size_t k = static_cast<size_t>(flags.GetInt("k"));
  if (k > graph->NumNodes()) k = graph->NumNodes();

  std::vector<WorkerProc> workers;
  for (int64_t i = 0; i < num_workers; ++i) {
    auto worker = SpawnWorker(flags.GetString("cli"),
                              flags.GetString("graph"),
                              flags.GetString("failpoints"));
    if (!worker.ok()) {
      Reap(&workers);
      return Fail(worker.status());
    }
    std::printf("worker %lld: pid %d port %u\n",
                static_cast<long long>(i),
                static_cast<int>(worker->pid),
                static_cast<unsigned>(worker->port));
    workers.push_back(*worker);
  }

  GreedyOptions options;
  options.variant = *variant;

  dist::DistSolveOptions dist_options;
  for (const WorkerProc& worker : workers) {
    dist::DistWorkerEndpoint endpoint;
    endpoint.port = worker.port;
    dist_options.workers.push_back(endpoint);
  }
  dist_options.simd_level = flags.GetString("simd");
  dist_options.client.request_timeout_ms =
      static_cast<int>(flags.GetInt("request_timeout_ms"));
  dist_options.client.max_attempts =
      static_cast<int>(flags.GetInt("max_attempts"));
  std::unique_ptr<ThreadPool> pool;
  if (flags.GetInt("threads") > 0) {
    pool = std::make_unique<ThreadPool>(
        static_cast<size_t>(flags.GetInt("threads")));
    dist_options.pool = pool.get();
  }
  const int64_t kill_round = flags.GetInt("kill_worker_round");
  if (kill_round >= 0) {
    WorkerProc* victim = &workers.back();
    dist_options.on_round = [kill_round, victim](size_t committed) {
      if (!victim->killed &&
          committed == static_cast<size_t>(kill_round)) {
        std::printf("chaos: SIGKILL worker pid %d at round %zu\n",
                    static_cast<int>(victim->pid), committed);
        ::kill(victim->pid, SIGKILL);
        ::waitpid(victim->pid, nullptr, 0);
        victim->pid = -1;
        victim->killed = true;
      }
    };
  }

  auto dist_solution =
      dist::SolveGreedyDistributed(*graph, k, options, dist_options);
  Reap(&workers);
  if (!dist_solution.ok()) return Fail(dist_solution.status());
  std::printf("dist solve: retained %zu of %zu items, cover %.6f%%\n",
              dist_solution->items.size(), graph->NumNodes(),
              dist_solution->cover * 100.0);

  if (flags.GetBool("compare_single")) {
    auto lazy_solution = SolveGreedyLazy(*graph, k, options);
    if (!lazy_solution.ok()) return Fail(lazy_solution.status());
    if (dist_solution->items != lazy_solution->items) {
      std::fprintf(stderr, "MISMATCH: selected items differ\n");
      return 1;
    }
    if (std::memcmp(&dist_solution->cover, &lazy_solution->cover,
                    sizeof(double)) != 0 ||
        dist_solution->cover_after_prefix.size() !=
            lazy_solution->cover_after_prefix.size() ||
        std::memcmp(dist_solution->cover_after_prefix.data(),
                    lazy_solution->cover_after_prefix.data(),
                    dist_solution->cover_after_prefix.size() *
                        sizeof(double)) != 0) {
      std::fprintf(stderr, "MISMATCH: cover curve differs\n");
      return 1;
    }
    if (dist_solution->item_contributions.size() !=
            lazy_solution->item_contributions.size() ||
        std::memcmp(dist_solution->item_contributions.data(),
                    lazy_solution->item_contributions.data(),
                    dist_solution->item_contributions.size() *
                        sizeof(double)) != 0) {
      std::fprintf(stderr, "MISMATCH: item contributions differ\n");
      return 1;
    }
    std::printf("BYTE_IDENTICAL to single-process lazy solve\n");
  }
  return 0;
}

#endif  // POSIX
