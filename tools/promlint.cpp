// promlint — structural linter for the Prometheus text exposition served
// by `prefcover serve`'s `metrics` verb, built on obs::LintPrometheusText.
//
// The CI serve-smoke job scrapes the verb over nc, so its input is a mix
// of single-line protocol responses and the exposition block. --extract
// isolates the block first: it starts at the first `# TYPE` line and ends
// at the first `# EOF` line (inclusive); everything around it is dropped.
//
// Beyond the format check, --require_counter=name[,name...] asserts that
// each named sample exists with value >= --min — the "did the server
// actually count our load?" check.
//
// Exit codes: 0 = well-formed (and all required counters present),
// 1 = lint/assert failure, 2 = usage/IO error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/exposition.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace prefcover;

namespace {

int Usage(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 2;
}

// Cuts [first "# TYPE" line, first "# EOF" line] out of mixed input.
// Returns false when no such block exists.
bool ExtractExposition(const std::string& input, std::string* out) {
  std::istringstream in(input);
  std::string line;
  bool started = false;
  out->clear();
  while (std::getline(in, line)) {
    if (!started) {
      if (line.rfind("# TYPE ", 0) != 0) continue;
      started = true;
    }
    out->append(line);
    out->push_back('\n');
    if (line == "# EOF") return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "promlint: check a Prometheus text exposition\n"
      "usage: promlint --input=metrics.txt [flags] (--input=- reads "
      "stdin)");
  flags.AddString("input", "-", "exposition path; '-' = stdin");
  flags.AddBool("extract", false,
                "isolate the exposition block (first '# TYPE' through "
                "'# EOF') from mixed input before linting");
  flags.AddString("require_counter", "",
                  "comma-separated sample names that must be present "
                  "with value >= --min");
  flags.AddInt("min", 1, "minimum value for required samples");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;  // --help
  if (!st.ok()) return Usage(st.ToString());

  std::string text;
  if (flags.GetString("input") == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(flags.GetString("input"));
    if (!in) return Usage("cannot open " + flags.GetString("input"));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  if (flags.GetBool("extract")) {
    std::string block;
    if (!ExtractExposition(text, &block)) {
      std::fprintf(stderr,
                   "lint: no exposition block (# TYPE ... # EOF) found\n");
      return 1;
    }
    text = std::move(block);
  }

  obs::LintResult lint = obs::LintPrometheusText(text);
  if (!lint.ok) {
    std::fprintf(stderr, "lint: %s\n", lint.message.c_str());
    return 1;
  }

  const double min = static_cast<double>(flags.GetInt("min"));
  for (const std::string& name :
       SplitString(flags.GetString("require_counter"), ',')) {
    if (name.empty()) continue;
    double value = 0.0;
    if (!obs::FindPrometheusValue(text, name, &value)) {
      std::fprintf(stderr, "lint: required sample '%s' is absent\n",
                   name.c_str());
      return 1;
    }
    if (value < min) {
      std::fprintf(stderr, "lint: sample '%s' = %g below --min=%g\n",
                   name.c_str(), value, min);
      return 1;
    }
  }

  std::printf("ok\n");
  return 0;
}
