// bench_compare: diffs two BENCH_core.json documents.
//
// Perf mode (default):
//   bench_compare [--threshold=0.20] [--min_effect_ms=0.05] old.json new.json
// fails (exit 1) when any case's current p50 wall time regresses past the
// threshold, or a baseline case disappeared.
//
// Determinism / golden mode:
//   bench_compare --determinism [--tolerance=1e-9] a.json b.json
// fails (exit 1) when any non-timing, non-env field differs between the
// two documents beyond the tolerance. Timing subtrees and env values must
// still match the schema exactly.
//
// Exit codes: 0 pass, 1 comparison failure, 2 usage / IO / parse error,
// 124 timeout (--timeout_s exceeded).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "bench/compare.h"
#include "bench/json.h"
#include "util/flags.h"

namespace prefcover {
namespace {

Result<JsonValue> LoadBenchFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed for '" + path + "'");
  }
  PREFCOVER_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(buffer.str()));
  return doc;
}

int Main(int argc, char** argv) {
  FlagParser flags(
      "bench_compare: diff two BENCH_core.json perf-trajectory files");
  flags.AddDouble("threshold", 0.20,
                  "fail when current p50 exceeds baseline p50 by more than "
                  "this fraction (perf mode)");
  flags.AddDouble("min_effect_ms", 0.05,
                  "ignore p50 regressions smaller than this absolute delta "
                  "(perf mode)");
  flags.AddBool("determinism", false,
                "compare non-timing fields for equality instead of timings");
  flags.AddDouble("tolerance", 0.0,
                  "numeric tolerance in determinism mode (golden files use "
                  "1e-9)");
  flags.AddString("ratio_case", "",
                  "ratio mode: gate this case's p50 against "
                  "--ratio_baseline within the SAME document (one "
                  "positional file)");
  flags.AddString("ratio_baseline", "",
                  "ratio mode: the sibling case to divide by");
  flags.AddDouble("max_ratio", 1.05,
                  "ratio mode: fail when case p50 / baseline p50 exceeds "
                  "this bound");
  flags.AddDouble("timeout_s", 0.0,
                  "abort with exit code 124 if the comparison has not "
                  "finished within this many seconds (0 = no timeout); a "
                  "hung or pathologically slow run then fails CI crisply "
                  "instead of eating the job time limit");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.UsageString().c_str());
    return 2;
  }
  const double timeout_s = flags.GetDouble("timeout_s");
  if (timeout_s < 0.0) {
    std::fprintf(stderr, "--timeout_s must be >= 0\n");
    return 2;
  }
  if (timeout_s > 0.0) {
    // Detached watchdog: if the comparison wedges (e.g. a failpoint-driven
    // delay in a file read, or a pathological input), the process dies
    // with the conventional timeout code instead of hanging CI. _exit()
    // on purpose — a wedged process cannot be trusted to unwind cleanly.
    std::thread([timeout_s] {
      std::this_thread::sleep_for(std::chrono::duration<double>(timeout_s));
      std::fprintf(stderr, "bench_compare: timed out after %.3fs\n",
                   timeout_s);
      std::fflush(stderr);
      ::_exit(124);
    }).detach();
  }
  // Ratio mode: one document, two sibling cases.
  if (!flags.GetString("ratio_case").empty() ||
      !flags.GetString("ratio_baseline").empty()) {
    if (flags.GetString("ratio_case").empty() ||
        flags.GetString("ratio_baseline").empty()) {
      std::fprintf(stderr,
                   "--ratio_case and --ratio_baseline must be given "
                   "together\n");
      return 2;
    }
    if (flags.positional().size() != 1) {
      std::fprintf(stderr,
                   "ratio mode expects exactly one positional argument: "
                   "bench.json\n%s",
                   flags.UsageString().c_str());
      return 2;
    }
    auto doc = LoadBenchFile(flags.positional()[0]);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 2;
    }
    auto ratio = CompareCaseRatio(*doc, flags.GetString("ratio_case"),
                                  flags.GetString("ratio_baseline"),
                                  flags.GetDouble("max_ratio"));
    if (!ratio.ok()) {
      std::fprintf(stderr, "%s\n", ratio.status().ToString().c_str());
      return 2;
    }
    std::printf("%s  %.3f ms  /  %s  %.3f ms  =  %.3fx (bound %.3fx)\n",
                flags.GetString("ratio_case").c_str(), ratio->case_p50_ms,
                flags.GetString("ratio_baseline").c_str(),
                ratio->baseline_p50_ms, ratio->ratio,
                flags.GetDouble("max_ratio"));
    if (!ratio->within_bound) {
      std::fprintf(stderr, "FAIL: case ratio %.3fx exceeds %.3fx\n",
                   ratio->ratio, flags.GetDouble("max_ratio"));
      return 1;
    }
    std::printf("OK: case ratio within bound\n");
    return 0;
  }

  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "expected exactly two positional arguments: "
                 "baseline.json current.json\n%s",
                 flags.UsageString().c_str());
    return 2;
  }

  auto baseline = LoadBenchFile(flags.positional()[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto current = LoadBenchFile(flags.positional()[1]);
  if (!current.ok()) {
    std::fprintf(stderr, "current: %s\n",
                 current.status().ToString().c_str());
    return 2;
  }

  BenchCompareOptions options;
  options.p50_regression_threshold = flags.GetDouble("threshold");
  options.min_effect_ms = flags.GetDouble("min_effect_ms");
  options.determinism = flags.GetBool("determinism");
  options.tolerance = flags.GetDouble("tolerance");

  auto report = CompareBenchDocuments(*baseline, *current, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }

  for (const CaseComparison& c : report->cases) {
    std::printf("%-48s  %10.3f ms -> %10.3f ms  (%+.1f%%)%s\n",
                c.name.c_str(), c.baseline_p50_ms, c.current_p50_ms,
                (c.ratio - 1.0) * 100.0, c.regressed ? "  REGRESSED" : "");
  }
  for (const std::string& name : report->new_cases) {
    std::printf("%-48s  (new case, no baseline)\n", name.c_str());
  }
  if (!report->ok()) {
    for (const std::string& problem : report->problems) {
      std::fprintf(stderr, "FAIL: %s\n", problem.c_str());
    }
    return 1;
  }
  std::printf("OK: %s\n", options.determinism
                              ? "documents match on all non-timing fields"
                              : "no p50 regressions past threshold");
  return 0;
}

}  // namespace
}  // namespace prefcover

int main(int argc, char** argv) { return prefcover::Main(argc, argv); }
